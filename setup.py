"""Legacy shim: the sandbox lacks the `wheel` package, so editable
installs fall back to `setup.py develop` (pip --no-use-pep517)."""

from setuptools import setup

setup()
