"""Figure 1: on-chip memory components across NVIDIA generations."""

from conftest import run_once

from repro.experiments.figures import fig1_onchip_memory


def test_fig1_onchip_memory(benchmark, save_report):
    result = run_once(benchmark, fig1_onchip_memory)
    save_report("fig01_onchip_memory", result.format())
    # Paper: Pascal's 14 MB register file is ~63% of on-chip storage.
    assert result.sizes_mb["PASCAL (2016)"]["register_file"] == 14.0
    assert result.rf_fraction("PASCAL (2016)") > 0.55
    sizes = [row["register_file"] for row in result.sizes_mb.values()]
    assert sizes == sorted(sizes)
