"""Hot-loop micro-benchmark: raw engine throughput per design.

Unlike the figure benches (which time whole experiment drivers, caches
included), this bench pins the cost of one uncached ``SMEngine.run`` on
the QUICK-scale SAD trace for each provider family: the baseline OCU
pool, BOW write-through, hinted BOW-WR, and the RFC comparison point.
``cycles_per_sec`` in ``extra_info`` is the figure of merit — compare
it across commits to catch timing-model slowdowns before they multiply
across a sweep grid.

The trace is built once outside the timed region (trace generation is
memoized elsewhere and is not what this bench guards).
"""

from __future__ import annotations

import pytest

from repro.core.bow_sm import simulate_design
from repro.experiments.runner import QUICK, benchmark_trace, design_spec

#: The register-hungry Parboil kernel — the paper's stress case, and
#: the slowest QUICK-scale point, so regressions show up loudest here.
BENCH = "SAD"
WINDOW = 3

DESIGNS = ("baseline", "bow", "bow-wr", "rfc")


@pytest.mark.parametrize("design", DESIGNS)
def test_engine_throughput(benchmark, design):
    spec = design_spec(design)
    trace = benchmark_trace(
        BENCH, QUICK, window_size=WINDOW if spec.hinted else None
    )

    def run():
        return simulate_design(
            design, trace, window_size=WINDOW,
            memory_seed=QUICK.memory_seed,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    cycles = result.counters.cycles
    assert cycles > 0
    benchmark.extra_info["design"] = design
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["cycles_per_sec"] = round(
        cycles / benchmark.stats.stats.min
    )
