"""Hot-loop micro-benchmark: raw engine throughput per design.

Unlike the figure benches (which time whole experiment drivers, caches
included), this bench pins the cost of one uncached ``SMEngine.run``:

* ``test_engine_throughput`` times the QUICK-scale SAD trace for each
  provider family (baseline OCU pool, BOW write-through, hinted BOW-WR,
  RFC) — the register-hungry stress case where busy cycles dominate;
* ``test_engine_throughput_membound`` times a DRAM-bound VectorAdd —
  the streaming case where most cycles are memory stalls, which is
  where the event-horizon fast-forward pays off hardest.

``cycles_per_sec`` in ``extra_info`` is the figure of merit — compare
it across commits to catch timing-model slowdowns before they multiply
across a sweep grid.  ``fast_forwarded_cycles`` records how many of
those cycles were jumped rather than ticked, so a throughput change can
be attributed to per-tick cost vs. fast-forward coverage.

The trace is built once outside the timed region (trace generation is
memoized elsewhere and is not what this bench guards).
"""

from __future__ import annotations

import gc

import pytest

from repro.config import GPUConfig
from repro.core.bow_sm import simulate_design
from repro.experiments.runner import QUICK, RunScale, benchmark_trace, design_spec

#: The register-hungry Parboil kernel — the paper's stress case, and
#: the slowest QUICK-scale point, so regressions show up loudest here.
BENCH = "SAD"
WINDOW = 3

DESIGNS = ("baseline", "bow", "bow-wr", "rfc")

#: The memory-heavy point: the streaming CUDA SDK kernel with a
#: DRAM-bound access mix (streaming kernels have near-zero reuse, so
#: the default cache-friendly mix undersells their stall time).  Eight
#: warps keep the memory pipe busy without hiding the latency.
MEM_BENCH = "VECTORADD"
MEM_SCALE = RunScale(num_warps=8, trace_scale=0.25)
MEM_CONFIG = GPUConfig(mem_l1_hit_rate=0.0, mem_l2_hit_rate=0.15)
MEM_DESIGNS = ("baseline", "bow")


def _time_design(benchmark, design, trace, bench=BENCH, config=None,
                 memory_seed=None):
    seed = QUICK.memory_seed if memory_seed is None else memory_seed

    def run():
        # Collector pauses belong to the allocator, not the engine;
        # keep them out of the timed region (standard bench hygiene).
        gc.disable()
        try:
            return simulate_design(
                design, trace, window_size=WINDOW, config=config,
                memory_seed=seed,
            )
        finally:
            gc.enable()

    # min-over-5 rounds: the figure of merit is best-case throughput,
    # and on shared hosts three rounds routinely miss it by 5-10%.
    result = benchmark.pedantic(run, rounds=5, iterations=1,
                                warmup_rounds=1)
    cycles = result.counters.cycles
    assert cycles > 0
    benchmark.extra_info["bench"] = bench
    benchmark.extra_info["design"] = design
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["fast_forwarded_cycles"] = (
        result.counters.fast_forwarded_cycles
    )
    benchmark.extra_info["cycles_per_sec"] = round(
        cycles / benchmark.stats.stats.min
    )


@pytest.mark.parametrize("design", DESIGNS)
def test_engine_throughput(benchmark, design):
    spec = design_spec(design)
    trace = benchmark_trace(
        BENCH, QUICK, window_size=WINDOW if spec.hinted else None
    )
    _time_design(benchmark, design, trace)


@pytest.mark.parametrize("design", MEM_DESIGNS)
def test_engine_throughput_membound(benchmark, design):
    spec = design_spec(design)
    trace = benchmark_trace(
        MEM_BENCH, MEM_SCALE, window_size=WINDOW if spec.hinted else None
    )
    _time_design(benchmark, design, trace, bench=f"{MEM_BENCH}-mem",
                 config=MEM_CONFIG, memory_seed=MEM_SCALE.memory_seed)
