"""Figure 13: normalized RF dynamic energy (BOW and BOW-WR)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig13_energy


def test_fig13_energy(benchmark, save_report):
    bow, bow_wr = run_once(benchmark, lambda: fig13_energy(scale=BENCH_SCALE))
    save_report("fig13_energy", bow.format() + "\n\n" + bow_wr.format())

    # Paper headline: BOW saves 36% of RF dynamic energy (3% overhead),
    # BOW-WR saves 55% (1.8% overhead).
    assert abs(bow.average_savings() - 0.36) < 0.08
    assert abs(bow_wr.average_savings() - 0.55) < 0.08
    assert bow_wr.average_savings() > bow.average_savings()

    # Overheads are small, and BOW-WR's is no larger than BOW's
    # (eliminated writes skip the added structures too).
    assert bow.average_overhead() < 0.05
    assert bow_wr.average_overhead() <= bow.average_overhead() + 0.005

    # Savings are consistent across benchmarks (paper SS V-A).
    for bench in bow_wr.rf_fraction:
        assert bow_wr.total(bench) < 0.80, bench
