"""Figure 11: IPC improvement with the 6-entry (half-size) BOC."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig10_ipc_improvement, fig11_halfsize_ipc


def test_fig11_halfsize_ipc(benchmark, save_report):
    half = run_once(benchmark, lambda: fig11_halfsize_ipc(scale=BENCH_SCALE))
    save_report("fig11_halfsize_ipc", half.format())

    _, full = fig10_ipc_improvement(windows=(3,), scale=BENCH_SCALE)

    # Paper: halving the storage costs ~2% IPC; ~11% gain remains.
    assert half.average(3) > 0.04
    assert full.average(3) - half.average(3) < 0.04

    # Still an improvement for every benchmark.
    for bench, per_iw in half.improvement.items():
        assert per_iw[3] > -0.02, bench
