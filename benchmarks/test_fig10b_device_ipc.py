"""Figure 10 at device scale: IPC improvement with multi-SM launches.

The paper's Figure 10 numbers come from whole-device runs (every SM of
a TITAN X executing its share of the launch); the single-SM harness
reproduces the trend, and this bench closes the gap by regenerating the
comparison through :mod:`repro.gpu.device` — each grid point
partitioned over :data:`DEVICE_SMS` SMs, IPC measured as *device* IPC
(total instructions over the slowest SM's finish time).
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig10_device_ipc

#: SMs per device point: 16 QUICK-scale warps = 4 CTAs of 4 warps, one
#: CTA per SM — every SM occupied, none oversubscribed.
DEVICE_SMS = 4


def test_fig10b_device_ipc(benchmark, save_report):
    bow, bow_wr = run_once(
        benchmark,
        lambda: fig10_device_ipc(num_sms=DEVICE_SMS, scale=BENCH_SCALE),
    )
    save_report("fig10b_device_ipc",
                bow.format() + "\n\n" + bow_wr.format())

    # Device-scale averages land where the paper's Figure 10 does
    # (~11-13% at IW=3); the partition changes per-SM contention, not
    # the story.
    assert 0.05 <= bow.average(3) <= 0.25
    assert 0.05 <= bow_wr.average(3) <= 0.25

    # Bypassing still helps every benchmark at device scale.
    for bench, per_iw in bow.improvement.items():
        assert per_iw[3] > 0.0, bench

    # The single-SM ordering survives aggregation: register-hungry SAD
    # gains far more than low-reuse WP (SS V-A).
    assert bow.improvement["SAD"][3] > bow.improvement["WP"][3]
