"""Table I: RF writes for the Figure 6 BTREE snippet under each design."""

from conftest import run_once

from repro.experiments.tables import table1_btree


def test_table1_btree_writes(benchmark, save_report):
    result = run_once(benchmark, table1_btree)
    save_report("table1_btree_writes", result.format())

    # The compiler column reproduces the paper exactly: 2 RF writes
    # ($r1 once, $r3 once).
    assert result.counts["compiler"] == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
    assert result.total("compiler") == 2

    # Per-register write-through/write-back counts match the paper for
    # $r0, $r1, $r3 (the paper's own Figure 6/Table I disagree on $r2
    # and omit $r4 — see EXPERIMENTS.md).
    for reg, expected in ((0, 3), (1, 4), (3, 1)):
        assert result.counts["write-through"][reg] == expected
    for reg, expected in ((0, 1), (1, 2), (3, 1)):
        assert result.counts["write-back"][reg] == expected

    # The designs strictly reduce write traffic.
    assert (result.total("write-through") > result.total("write-back")
            > result.total("compiler"))
