"""Figure 3: eliminated read/write requests vs instruction-window size."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig3_bypass_opportunity


def test_fig3_bypass_opportunity(benchmark, save_report):
    result = run_once(
        benchmark, lambda: fig3_bypass_opportunity(scale=BENCH_SCALE)
    )
    save_report("fig03_bypass_opportunity", result.format())

    # Paper headline: IW=2 bypasses 45% of reads / 35% of writes;
    # IW=3 bypasses 59% / 52%; reads exceed 70% by IW=7.
    assert abs(result.average_reads(2) - 0.45) < 0.12
    assert abs(result.average_reads(3) - 0.59) < 0.10
    assert abs(result.average_writes(3) - 0.52) < 0.15
    assert result.average_reads(7) > 0.60

    # Diminishing returns beyond IW=3 (the paper's design argument).
    gain_2_to_3 = result.average_reads(3) - result.average_reads(2)
    gain_3_to_7 = result.average_reads(7) - result.average_reads(3)
    assert gain_3_to_7 < gain_2_to_3 * 4
