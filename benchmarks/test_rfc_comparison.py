"""SS V-A comparison against Register File Caching (RFC)."""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import rfc_comparison


def test_rfc_comparison(benchmark, save_report):
    result = run_once(benchmark, lambda: rfc_comparison(scale=BENCH_SCALE))
    save_report("rfc_comparison", result.format())

    # Paper: RFC yields <2% IPC improvement (it does not fix port
    # contention); BOW-WR is far ahead.
    assert result.average_rfc_gain() < 0.06
    assert result.average_bow_wr_gain() > result.average_rfc_gain() + 0.04

    # BOW-WR saves more energy than RFC.
    assert result.bow_wr_energy_savings > result.rfc_energy_savings

    # RFC's 24 KB overhead is double BOW-WR's space-optimized 12 KB.
    assert result.rfc_storage_kb == pytest.approx(24.0)
    assert result.bow_wr_half_storage_kb == pytest.approx(12.0)
