"""Figure 12: cycles in the OC stage, normalized to the baseline."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig12_oc_residency


def test_fig12_oc_residency(benchmark, save_report):
    result = run_once(benchmark, lambda: fig12_oc_residency(scale=BENCH_SCALE))
    save_report("fig12_oc_residency", result.format())

    # Paper: OC residency drops by ~60% at IW=3, with little further
    # benefit from larger windows.
    assert result.average(3) < 0.70
    assert result.average(2) > result.average(3)
    assert abs(result.average(4) - result.average(3)) < 0.08

    # Residency falls for every benchmark.
    for bench, per_iw in result.residency.items():
        assert per_iw[3] < 1.0, bench
