"""The headline scorecard: every abstract-level claim, one bench."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.summary import headline_summary


def test_headline_scorecard(benchmark, save_report):
    result = run_once(benchmark, lambda: headline_summary(scale=BENCH_SCALE))
    save_report("summary_scorecard", result.format())
    failing = [claim.name for claim in result.claims if not claim.holds]
    assert result.all_hold, f"claims out of band: {failing}"
    assert len(result.claims) == 11
