"""Figure 7: distribution of write destinations under BOW-WR."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig7_write_destinations


def test_fig7_write_destinations(benchmark, save_report):
    result = run_once(
        benchmark, lambda: fig7_write_destinations(scale=BENCH_SCALE)
    )
    save_report("fig07_write_destinations", result.format())

    rf_only, both, oc_only = result.averages()
    # Paper: 21% RF-only / 27% OC-then-RF / 52% transient at IW=3.
    assert abs(rf_only - 0.21) < 0.12
    assert abs(both - 0.27) < 0.15
    assert abs(oc_only - 0.52) < 0.12
    # Transient values dominate — the basis of the effective-RF-size claim.
    assert oc_only > rf_only
    assert oc_only > both
