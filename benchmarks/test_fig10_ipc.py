"""Figure 10: IPC improvement of BOW (a) and BOW-WR (b) vs window size."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig10_ipc_improvement


def test_fig10_ipc_improvement(benchmark, save_report):
    bow, bow_wr = run_once(
        benchmark, lambda: fig10_ipc_improvement(scale=BENCH_SCALE)
    )
    save_report("fig10_ipc_improvement",
                bow.format() + "\n\n" + bow_wr.format())

    # Paper headline: ~11% (BOW) / ~13% (BOW-WR) average at IW=3.
    assert 0.05 <= bow.average(3) <= 0.20
    assert 0.05 <= bow_wr.average(3) <= 0.20

    # Every benchmark improves (paper: "IPC improvement across all
    # benchmarks").
    for bench, per_iw in bow.improvement.items():
        assert per_iw[3] > 0.0, bench

    # Diminishing returns past IW=3.
    assert bow.average(4) - bow.average(3) < bow.average(3) - bow.average(2)

    # Register-hungry SAD gains far more than low-reuse WP (SS V-A).
    assert bow.improvement["SAD"][3] > bow.improvement["WP"][3]
