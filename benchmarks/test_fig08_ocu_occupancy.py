"""Figure 8: OCU occupancy (register source operands per instruction)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig8_ocu_occupancy


def test_fig8_ocu_occupancy(benchmark, save_report):
    result = run_once(benchmark, lambda: fig8_ocu_occupancy(scale=BENCH_SCALE))
    save_report("fig08_ocu_occupancy", result.format())

    # Paper: on average only ~2% of instructions need all three entries.
    assert result.average(3) < 0.05

    # BFS, BTREE and LPS use no 3-source instructions at all.
    for bench in ("BFS", "BTREE", "LPS"):
        assert result.histograms[bench][3] == 0.0

    # Every distribution is a distribution.
    for bench, histogram in result.histograms.items():
        assert abs(sum(histogram.values()) - 1.0) < 1e-9, bench
