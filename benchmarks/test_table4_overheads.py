"""Table IV + SS IV-C/V-A: BOC overheads, storage and area arithmetic."""

import pytest
from conftest import run_once

from repro.experiments.tables import table4_overheads


def test_table4_overheads(benchmark, save_report):
    result = run_once(benchmark, table4_overheads)
    save_report("table4_overheads", result.format())

    # Table IV: 1.5 KB BOC vs 64 KB bank billing unit (~2%).
    assert result.boc_size_bytes == 1536
    assert result.bank_size_bytes == 64 * 1024

    # Access energy 2.72 pJ vs 185.26 pJ (~1.4%); leakage ~0.9%.
    assert result.access_energy_ratio == pytest.approx(0.0147, abs=0.002)
    assert result.leakage_ratio == pytest.approx(0.0099, abs=0.002)

    # SS IV-C storage story: 36 KB conservative, 12 KB half-size (~4% of RF).
    assert result.full_added_storage_kb == pytest.approx(36.0)
    assert result.half_added_storage_kb == pytest.approx(12.0)
    assert result.half_fraction_of_rf == pytest.approx(0.047, abs=0.01)

    # SS V-A area: network < 3% of a bank; total well under 1% of chip.
    assert result.area.network_fraction_of_bank < 0.03
    assert result.area.fraction_of_chip < 0.01
