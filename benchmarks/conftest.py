"""Shared infrastructure for the paper-reproduction benchmark harness.

Every ``test_*`` here regenerates one table or figure of the paper:
it runs the experiment driver once (timing runs are memoized across
benches in :mod:`repro.experiments.runner`), saves the rendered report
under ``benchmarks/reports/``, asserts the paper's headline claim for
that artifact, and registers the wall-clock cost with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

The reports directory then contains the full reproduction of the
paper's evaluation section.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import QUICK, RunScale

#: Scale used by the harness: 16 warps, quarter-length traces.
BENCH_SCALE: RunScale = QUICK

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def save_report(reports_dir):
    """Write one experiment's rendered report to disk."""

    def _save(name: str, text: str) -> None:
        (reports_dir / f"{name}.txt").write_text(text + "\n")

    return _save


def run_once(benchmark, func):
    """Register ``func`` with pytest-benchmark, executing exactly once.

    The experiment drivers are deterministic and internally memoized, so
    repeated timing rounds would only measure the cache; a single round
    reports the honest cost of regenerating the artifact.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
