"""Table III: the benchmark suite listing."""

from conftest import run_once

from repro.experiments.tables import table3_benchmarks


def test_table3_suite(benchmark, save_report):
    result = run_once(benchmark, table3_benchmarks)
    save_report("table3_suite", result.format())
    assert len(result.rows) == 15
    suites = {row[1] for row in result.rows}
    assert suites == {"ISPASS", "Rodinia", "Tango", "CUDA SDK", "Parboil"}
