"""Figure 4: time spent in the operand-collection stage (baseline GPU)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig4_oc_latency


def test_fig4_oc_latency(benchmark, save_report):
    result = run_once(benchmark, lambda: fig4_oc_latency(scale=BENCH_SCALE))
    save_report("fig04_oc_latency", result.format())

    # Paper: about a quarter of execution time sits in the OC stage.
    assert 0.10 <= result.average_overall() <= 0.45

    # Memory instructions' long latencies dwarf their collection time.
    for bench in result.memory:
        assert result.memory[bench] < result.non_memory[bench]

    # STO is among the most collection-bound benchmarks (paper: 47%).
    ranked = sorted(result.overall, key=result.overall.get, reverse=True)
    assert "STO" in ranked[:4]
