"""Extension benches: ablations of the design choices the paper fixes.

Not figures from the paper — these regenerate the studies DESIGN.md SS6
calls out: scheduler sensitivity, eviction policy, capacity and window
sweeps, and the effective-RF-size claim of SS IV-B.2a.
"""

import pytest
from conftest import run_once

from repro.experiments.ablations import (
    capacity_sweep,
    effective_rf_study,
    eviction_ablation,
    scheduler_ablation,
    window_sweep,
)
from repro.experiments.runner import RunScale

#: Ablations run a reduced matrix: a register-hungry and a low-reuse
#: benchmark at a medium scale.
ABLATION_SCALE = RunScale(num_warps=12, trace_scale=0.15)
PAIR = ("SAD", "WP")


def test_scheduler_ablation(benchmark, save_report):
    result = run_once(
        benchmark,
        lambda: scheduler_ablation(benchmarks=PAIR, scale=ABLATION_SCALE),
    )
    save_report("ablation_scheduler", result.format())
    # BOW's benefit is not a GTO artifact: it survives LRR scheduling.
    assert result.average("gto") > 0.0
    assert result.average("lrr") > 0.0


def test_eviction_ablation(benchmark, save_report):
    result = run_once(
        benchmark,
        lambda: eviction_ablation(benchmarks=PAIR, capacity=3,
                                  scale=ABLATION_SCALE),
    )
    save_report("ablation_eviction", result.format())
    # FIFO (the paper's pick) is within a whisker of LRU: the extended
    # window already tracks recency.
    for bench in PAIR:
        fifo = result.ipc[bench]["fifo"]
        lru = result.ipc[bench]["lru"]
        assert fifo == pytest.approx(lru, rel=0.10)


def test_capacity_sweep(benchmark, save_report):
    result = run_once(
        benchmark, lambda: capacity_sweep("SAD", scale=ABLATION_SCALE)
    )
    save_report("ablation_capacity", result.format())
    evictions = [point[2] for point in result.points]
    gains = [point[1] for point in result.points]
    assert evictions == sorted(evictions, reverse=True)
    # Even a starved 2-entry BOC retains most of the benefit, which is
    # why the paper's halving is safe.
    assert min(gains) > max(gains) - 0.06


def test_window_sweep(benchmark, save_report):
    result = run_once(
        benchmark, lambda: window_sweep("SAD", scale=ABLATION_SCALE)
    )
    save_report("ablation_window", result.format())
    rates = [point[1] for point in result.points]
    assert rates == sorted(rates)
    # Past IW=3, another *nine* instructions of window buy almost
    # nothing — the paper's diminishing-returns argument, extended.
    by_window = {iw: rate for iw, rate, _ in result.points}
    assert by_window[12] - by_window[3] < by_window[3] - by_window[2]


def test_effective_rf_study(benchmark, save_report):
    result = run_once(benchmark, effective_rf_study)
    save_report("ablation_effective_rf", result.format())
    # Paper SS IV-B.2a: ~52% of operands are transient at IW=3.
    assert result.average_transient_fraction() == pytest.approx(0.52,
                                                                abs=0.15)
