"""Figure 9: BOC entry occupancy at IW=3 (the case for half-size BOCs)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.figures import fig9_boc_occupancy


def test_fig9_boc_occupancy(benchmark, save_report):
    result = run_once(benchmark, lambda: fig9_boc_occupancy(scale=BENCH_SCALE))
    save_report("fig09_boc_occupancy", result.format())

    # Paper: the worst case (all 12 entries) never occurred, and only
    # ~3% of cycles need more than half the entries.
    assert result.max_observed() < 12
    assert result.average_above_half() < 0.10
