"""Extension benches: studies beyond the paper (DESIGN.md SS6)."""

from conftest import run_once


from repro.experiments.ablations import reorder_study, warp_scaling
from repro.experiments.simt_study import simt_suite_study


def test_reorder_study(benchmark, save_report):
    """The paper's footnote-1 future work: reordering for bypassing."""
    result = run_once(benchmark, reorder_study)
    save_report("extension_reorder", result.format())
    # The guarded pass never loses on average and helps the low-reuse
    # benchmarks (WP, BTREE) where headroom exists.
    assert result.average_gain() >= 0.0
    by_bench = {bench: after - before
                for bench, _, before, after in result.rows}
    assert by_bench["WP"] > 0.02
    assert by_bench["BTREE"] > 0.02


def test_warp_scaling(benchmark, save_report):
    result = run_once(
        benchmark, lambda: warp_scaling("SAD", warp_counts=(4, 8, 16))
    )
    save_report("extension_warp_scaling", result.format())
    for warps, _, _, gain in result.points:
        assert gain > 0.05, warps


def test_dce_study(benchmark, save_report):
    """Dead code vs transience: the Figure 3 write-gap decomposition."""
    from repro.experiments.ablations import dce_study

    result = run_once(benchmark, dce_study)
    save_report("extension_dce", result.format())
    # Some of the suite's write-bypass surplus is dead code; removing it
    # moves the average toward the paper's 52%.
    before = sum(r[2] for r in result.rows) / len(result.rows)
    after = sum(r[3] for r in result.rows) / len(result.rows)
    assert after <= before


def test_simt_suite_study(benchmark, save_report):
    result = run_once(benchmark, lambda: simt_suite_study(warps=2))
    save_report("extension_simt_study", result.format())
    # Divergent loops with per-lane trip counts devastate SIMD
    # efficiency; coalescing varies with each benchmark's access mix.
    assert result.average_efficiency() < 0.9
    for bench in result.avg_transactions:
        assert result.avg_transactions[bench] >= 1.0
