"""Service throughput/latency bench: the single-flight dedup claim.

Starts an in-process sweep server, points 8 concurrent load-generator
clients at an identical grid, and measures both passes the service is
designed around: the **cold** pass (the single-flight registry must
collapse 8 identical jobs into one simulation per unique point) and
the **warm** pass (every point a dict hit, so throughput is bounded by
the wire, not the simulator).  The combined report — points/sec and
latency percentiles per pass plus the service's counter deltas — is
written to ``benchmarks/BENCH_service.json``, the artifact CI's
``service-smoke`` job regenerates and uploads.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path

from conftest import run_once

from repro.experiments.runner import (
    RunScale,
    clear_cache,
    reset_simulations_counter,
    set_cache,
    simulations_run,
)
from repro.service import SweepServer, SweepService, run_loadgen

BENCH_PATH = Path(__file__).parent / "BENCH_service.json"

#: Loadgen shape: 8 clients x (2 benchmarks x 2 designs) at one IW.
CLIENTS = 8
BENCHMARKS = ("BFS", "NW")
DESIGNS = ("baseline", "bow")
SCALE = RunScale(num_warps=4, trace_scale=0.1)


class _ServerThread:
    """A sweep server on a daemon thread with its own event loop."""

    def __init__(self):
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._thread.join(timeout=60.0)
        assert not self._thread.is_alive(), "server did not shut down"

    def _run(self):
        async def body():
            server = SweepServer(SweepService(cache=None))
            await server.start()
            self.port = server.port
            self._ready.set()
            try:
                await server.serve_until_shutdown()
            finally:
                await server.close()

        asyncio.run(body())


def _drive() -> dict:
    clear_cache()
    previous = set_cache(None)
    reset_simulations_counter()
    try:
        with _ServerThread() as running:
            return run_loadgen(
                port=running.port, clients=CLIENTS,
                benchmarks=BENCHMARKS, designs=DESIGNS, windows=(3,),
                scale=SCALE, shutdown=True,
                report_path=str(BENCH_PATH))
    finally:
        set_cache(previous)
        clear_cache()


def test_service_single_flight_throughput(benchmark, save_report):
    report = run_once(benchmark, _drive)

    from repro.service import format_report

    save_report("service_throughput", format_report(report))

    unique = report["unique_points"]
    assert unique == len(BENCHMARKS) * len(DESIGNS)

    # The headline claim: 8 concurrent clients requesting an identical
    # grid cost exactly one simulation per unique point, total.
    flight = report["single_flight"]
    assert flight["dedup_ok"], flight
    assert flight["cold_simulated"] == unique
    assert simulations_run() == unique

    # Warm pass: nothing simulates, every request is a warm dict hit.
    assert flight["warm_simulated"] == 0
    assert flight["warm_hits"] == CLIENTS * unique

    # The report records throughput for both passes, and the warm pass
    # (pure lookups) is not slower than the cold pass (simulations).
    cold = report["passes"]["cold"]
    warm = report["passes"]["warm"]
    for data in (cold, warm):
        assert data["points_served"] == CLIENTS * unique
        assert data["points_per_sec"] > 0
    assert warm["wall_seconds"] <= cold["wall_seconds"]

    written = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert written["passes"]["cold"]["points_per_sec"] > 0
    assert written["passes"]["warm"]["points_per_sec"] > 0
