"""Test support for the sweep engine.

:mod:`repro.testing.faults` is a deterministic, seed-driven fault
injector: it monkeypatches ``runner.execute_run`` and the
``RunCache`` I/O seams to simulate worker crashes, hangs, deadlocks,
torn cache writes, and OS-level cache errors (ENOSPC/EACCES), with
firing decisions derived purely from a seed and a shared on-disk state
directory — the same faults fire at ``jobs=1`` and ``jobs=8``.

:mod:`repro.testing.chaos` is the CI chaos-smoke driver
(``python -m repro.testing.chaos``): a QUICK sweep under injected
faults that asserts graceful degradation end to end.

:mod:`repro.testing.chaos_service` is the service-layer drill
(``repro chaos-serve``): real ``repro serve`` processes hard-killed
mid-batch, restarted over the same cache/journal, and asserted to
recover with zero duplicated simulations, plus overload-shedding and
graceful-drain checks.  The fault injector gains service seams for it
(:data:`repro.testing.faults.SERVICE_KINDS`): ``kill-server``,
``journal-corrupt`` / ``journal-error``, ``conn-drop``, and
``slow-write``.

Nothing in :mod:`repro` proper imports this package; it exists for the
test suite, the chaos CI jobs, and anyone hardening a deployment.
"""

from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    WorkerCrashError,
    injected_faults,
    install,
    uninstall,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "WorkerCrashError",
    "injected_faults",
    "install",
    "uninstall",
]
