"""Test support for the sweep engine.

:mod:`repro.testing.faults` is a deterministic, seed-driven fault
injector: it monkeypatches ``runner.execute_run`` and the
``RunCache`` I/O seams to simulate worker crashes, hangs, deadlocks,
torn cache writes, and OS-level cache errors (ENOSPC/EACCES), with
firing decisions derived purely from a seed and a shared on-disk state
directory — the same faults fire at ``jobs=1`` and ``jobs=8``.

:mod:`repro.testing.chaos` is the CI chaos-smoke driver
(``python -m repro.testing.chaos``): a QUICK sweep under injected
faults that asserts graceful degradation end to end.

Nothing in :mod:`repro` proper imports this package; it exists for the
test suite, the chaos-smoke CI job, and anyone hardening a deployment.
"""

from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    WorkerCrashError,
    injected_faults,
    install,
    uninstall,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "WorkerCrashError",
    "injected_faults",
    "install",
    "uninstall",
]
