"""Deterministic, seed-driven fault injection for the sweep engine.

The resilience layer (:mod:`repro.experiments.resilience`) claims a
sweep survives worker crashes, hangs, and a failing cache.  This
module makes those events reproducible on demand so tests and the CI
chaos-smoke job can prove it:

* a :class:`FaultPlan` holds :class:`FaultSpec` entries — *what* to
  inject (a crash, a hang, a deadlock, a torn cache write, ENOSPC,
  EACCES), *where* (a substring match on the point label or cache
  key), *how often* (a deterministic per-token probability), and *how
  many times* before the fault heals;
* :func:`install` monkeypatches the seams the engine already exposes —
  ``runner.execute_run`` (every simulator invocation funnels through
  it), the ``RunCache._read_text``/``_write_entry`` I/O methods, the
  sweep service's ``Journal._write_line`` durability seam and
  ``SweepServer._send`` wire seam — and registers a pool-worker
  initializer on the grid so the hooks are active inside workers even
  under spawn-based multiprocessing (fork inherits them
  automatically).

Service faults (:data:`SERVICE_KINDS`) extend the drill to the layer
real traffic hits: ``kill-server`` hard-exits the serving *process*
mid-batch (the SIGKILL stand-in the chaos-serve recovery drill builds
on), ``journal-corrupt`` / ``journal-error`` tear or fail journal
lines, and ``conn-drop`` / ``slow-write`` abort or stall wire
responses mid-send.

**Determinism.**  Whether a fault fires depends only on the plan's
seed, the spec, and the token (point label / cache key) — never on
worker identity, wall-clock time, or completion order.  Firing *counts*
(``times``) are coordinated across processes through exclusive-create
marker files in ``state_dir``, so "crash twice, then heal" means
exactly twice no matter how many workers race: the same fault seed
produces the same failure records at ``jobs=1`` and ``jobs=8``.
"""

from __future__ import annotations

import errno
import hashlib
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..errors import DeadlockError, ExperimentError, SimulationError
from ..experiments import grid, runner
from ..experiments.cache import RunCache

#: Exit status of a worker killed by a ``kill`` fault (any non-zero
#: status breaks the pool; this one is recognizable in core dumps).
KILL_EXIT_CODE = 87

#: Fault kinds hooked into ``runner.execute_run``.
RUN_KINDS = frozenset({"raise", "oserror", "kill", "hang", "deadlock"})

#: Fault kinds hooked into the ``RunCache`` I/O seams.
CACHE_KINDS = frozenset({"cache-corrupt", "cache-enospc", "cache-eacces"})

#: Fault kinds hooked into the sweep-service seams: ``kill-server``
#: (hard process exit mid-batch, fired from the run seam),
#: ``journal-corrupt`` / ``journal-error`` (torn or failing journal
#: lines), ``conn-drop`` (abort the transport mid-response) and
#: ``slow-write`` (half the response, a ``duration`` stall, the rest).
SERVICE_KINDS = frozenset({"kill-server", "journal-corrupt",
                           "journal-error", "conn-drop", "slow-write"})


class InjectedFaultError(SimulationError):
    """A deterministic *permanent* failure raised by a ``raise`` spec."""


class WorkerCrashError(OSError):
    """What a ``kill`` spec raises when there is no worker process to
    kill (serial sweeps): the in-process stand-in for the
    ``BrokenProcessPool`` a parent would observe — same ``transient``
    classification, same retry behaviour."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        kind: one of :data:`RUN_KINDS` or :data:`CACHE_KINDS` —
            ``raise`` (permanent simulator error), ``oserror``
            (transient I/O error), ``kill`` (worker death /
            ``BrokenProcessPool``), ``hang`` (stall ``duration``
            seconds, then run normally), ``deadlock``
            (:class:`~repro.errors.DeadlockError`), ``cache-corrupt``
            (torn write: half the payload), ``cache-enospc`` /
            ``cache-eacces`` (OS errors out of cache I/O).
        rate: fraction of matching tokens selected, decided by a
            deterministic hash of (seed, spec index, token).
        times: firings per selected token before the fault heals;
            ``0`` means never heal.
        duration: sleep seconds for ``hang``.
        match: substring filter — on the point label
            (``"SAD/bow IW3"``) for run faults (including
            ``kill-server``), on the cache key for cache faults, on
            the serialized line for journal and wire faults (so
            ``match='point-resolved'`` targets journal resolutions and
            ``match='"op": "sweep"'`` targets sweep responses).  Empty
            matches everything.
    """

    kind: str
    rate: float = 1.0
    times: int = 1
    duration: float = 0.0
    match: str = ""

    def __post_init__(self) -> None:
        known_kinds = RUN_KINDS | CACHE_KINDS | SERVICE_KINDS
        if self.kind not in known_kinds:
            known = ", ".join(sorted(known_kinds))
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; known: {known}")
        if not 0.0 <= self.rate <= 1.0:
            raise ExperimentError("rate must be within [0, 1]")
        if self.times < 0:
            raise ExperimentError("times must be >= 0 (0 = never heal)")
        if self.duration < 0:
            raise ExperimentError("duration must be >= 0")


class FaultPlan:
    """A seeded set of fault specs plus the shared firing state.

    Picklable (plain attributes), so it can ride into spawn-started
    pool workers through the grid's worker initializer.
    """

    def __init__(self, seed: int, state_dir: Union[str, Path],
                 specs: Sequence[FaultSpec]):
        self.seed = int(seed)
        self.state_dir = str(state_dir)
        self.specs = tuple(specs)
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    # -- deterministic selection and firing bookkeeping ---------------

    def _chance(self, index: int, token: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{token}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def selected(self, index: int, token: str) -> bool:
        """Whether spec ``index`` targets ``token`` (ignores ``times``)."""
        spec = self.specs[index]
        if spec.match and spec.match not in token:
            return False
        return spec.rate >= 1.0 or self._chance(index, token) < spec.rate

    def _claim(self, index: int, token: str) -> bool:
        """Atomically claim the next firing of spec ``index`` on
        ``token``; ``False`` once ``times`` firings have happened."""
        if not self.selected(index, token):
            return False
        spec = self.specs[index]
        digest = hashlib.sha256(
            f"{index}:{token}".encode("utf-8")).hexdigest()[:16]
        shot = 0
        while spec.times == 0 or shot < spec.times:
            marker = Path(self.state_dir) / f"{index}-{digest}.{shot}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                shot += 1
                continue
            os.close(fd)
            return True
        return False

    def spec_firings(self, index: int) -> int:
        """Firings spec ``index`` has performed so far (all tokens)."""
        return sum(1 for marker in Path(self.state_dir).iterdir()
                   if marker.name.startswith(f"{index}-"))

    def firings(self) -> int:
        """Total firings across all specs."""
        return sum(1 for _ in Path(self.state_dir).iterdir())

    def reset(self) -> None:
        """Forget every firing (the next sweep starts from scratch)."""
        for marker in Path(self.state_dir).iterdir():
            try:
                marker.unlink()
            except OSError:
                pass

    # -- hook bodies ---------------------------------------------------

    def fire_run_faults(self, benchmark: str, design: str,
                        window_size: int) -> None:
        """Raise/kill/stall per the plan before one simulator run."""
        window = runner.effective_window(design, window_size)
        token = f"{benchmark.upper()}/{design} IW{window}"
        for index, spec in enumerate(self.specs):
            if spec.kind not in RUN_KINDS and spec.kind != "kill-server":
                continue
            if not self._claim(index, token):
                continue
            if spec.kind == "hang":
                time.sleep(spec.duration)
            elif spec.kind == "kill-server":
                # The SIGKILL stand-in: take down the *whole process*
                # (server included) with no cleanup, mid-batch.  The
                # journal's fsync-per-record contract is what makes
                # this recoverable.
                os._exit(KILL_EXIT_CODE)
            elif spec.kind == "kill":
                if multiprocessing.parent_process() is not None:
                    os._exit(KILL_EXIT_CODE)
                raise WorkerCrashError(
                    f"injected worker crash at {token}")
            elif spec.kind == "oserror":
                raise OSError(errno.EIO,
                              f"injected I/O failure at {token}")
            elif spec.kind == "deadlock":
                raise DeadlockError(f"injected deadlock at {token}", 0)
            else:  # "raise"
                raise InjectedFaultError(f"injected failure at {token}")

    def fire_cache_read(self, key: str) -> None:
        """Raise per the plan before one cache entry read."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "cache-eacces":
                continue
            if self._claim(index, key):
                raise PermissionError(
                    errno.EACCES, f"injected EACCES reading {key[:16]}")

    def filter_cache_write(self, key: str, text: str) -> str:
        """Raise or corrupt per the plan before one cache entry write."""
        for index, spec in enumerate(self.specs):
            if spec.kind == "cache-enospc" and self._claim(index, key):
                raise OSError(
                    errno.ENOSPC, f"injected ENOSPC writing {key[:16]}")
            if spec.kind == "cache-corrupt" and self._claim(index, key):
                text = text[: max(1, len(text) // 2)]  # torn write
        return text

    def filter_journal_write(self, text: str) -> str:
        """Raise or tear one journal line per the plan.

        The token is the serialized record, so ``match`` selects by
        record type or any field value.
        """
        for index, spec in enumerate(self.specs):
            if spec.kind == "journal-error" and self._claim(index, text):
                raise OSError(
                    errno.EIO, "injected journal write failure")
            if spec.kind == "journal-corrupt" and self._claim(index, text):
                text = text[: max(1, len(text) // 2)]  # torn line
        return text

    def fire_send(self, text: str) -> Optional[FaultSpec]:
        """The wire fault (if any) claimed for one response line."""
        for index, spec in enumerate(self.specs):
            if spec.kind not in ("conn-drop", "slow-write"):
                continue
            if self._claim(index, text):
                return spec
        return None


# -- installation ------------------------------------------------------

_active: Optional[FaultPlan] = None
_saved: Dict[str, object] = {}


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, if any."""
    return _active


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan``'s hooks process-wide; returns the plan.

    Patches ``runner.execute_run``, the ``RunCache`` I/O seams, the
    service journal's ``_write_line`` seam and the sweep server's
    ``_send`` wire seam, and registers a pool-worker initializer so
    freshly spawned workers install the same plan.  Only one plan can
    be active at a time; :func:`uninstall` (or the
    :func:`injected_faults` context manager) restores the originals.
    """
    global _active
    if _active is not None:
        raise ExperimentError("a fault plan is already installed")
    # Imported here, not at module top: the fault injector must stay
    # importable (and cheap) without dragging in the asyncio service
    # stack, which only exists on the serving side of a chaos drill.
    from ..service.journal import Journal
    from ..service.server import SweepServer

    _active = plan
    _saved["execute_run"] = runner.execute_run
    _saved["_read_text"] = RunCache._read_text
    _saved["_write_entry"] = RunCache._write_entry
    _saved["_pool_initializer"] = grid._pool_initializer
    _saved["_write_line"] = Journal._write_line
    _saved["_send"] = SweepServer.__dict__["_send"]

    original_execute = runner.execute_run
    original_read = RunCache._read_text
    original_write = RunCache._write_entry
    original_write_line = Journal._write_line
    original_send = SweepServer._send

    def execute_run(benchmark, design, window_size=3, scale=runner.QUICK):
        plan.fire_run_faults(benchmark, design, window_size)
        return original_execute(benchmark, design, window_size=window_size,
                                scale=scale)

    def _read_text(self, path):
        plan.fire_cache_read(path.stem)
        return original_read(self, path)

    def _write_entry(self, path, text):
        return original_write(self, path,
                              plan.filter_cache_write(path.stem, text))

    def _write_line(self, text):
        return original_write_line(self, plan.filter_journal_write(text))

    async def _send(writer, payload):
        import asyncio as _asyncio
        import json as _json

        text = _json.dumps(payload)
        spec = plan.fire_send(text)
        if spec is not None and spec.kind == "conn-drop":
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError("injected connection drop")
        if spec is not None and spec.kind == "slow-write":
            data = text.encode("utf-8")
            half = max(1, len(data) // 2)
            writer.write(data[:half])
            await writer.drain()
            await _asyncio.sleep(spec.duration)
            writer.write(data[half:] + b"\n")
            await writer.drain()
            return
        await original_send(writer, payload)

    runner.execute_run = execute_run
    RunCache._read_text = _read_text
    RunCache._write_entry = _write_entry
    Journal._write_line = _write_line
    SweepServer._send = staticmethod(_send)
    grid._pool_initializer = (_install_in_worker, (plan,))
    return plan


def uninstall() -> None:
    """Remove the active plan's hooks (no-op if none is installed)."""
    global _active
    if _active is None:
        return
    from ..service.journal import Journal
    from ..service.server import SweepServer

    runner.execute_run = _saved.pop("execute_run")
    RunCache._read_text = _saved.pop("_read_text")
    RunCache._write_entry = _saved.pop("_write_entry")
    grid._pool_initializer = _saved.pop("_pool_initializer")
    Journal._write_line = _saved.pop("_write_line")
    SweepServer._send = _saved.pop("_send")
    _active = None


def _install_in_worker(plan: FaultPlan) -> None:
    """Pool-worker initializer: activate ``plan`` in a fresh worker.

    Under fork the worker inherits the parent's patches (and
    ``_active``), making this a no-op; under spawn it performs the
    installation from scratch.
    """
    if _active is None:
        install(plan)


@contextmanager
def injected_faults(seed: int, state_dir: Union[str, Path],
                    specs: Sequence[FaultSpec]):
    """Context manager: build, install, and on exit uninstall a plan."""
    plan = install(FaultPlan(seed, state_dir, specs))
    try:
        yield plan
    finally:
        uninstall()
