"""Deliberately broken operand providers: the fuzzer's fault seam.

A differential fuzzer that has never caught anything proves nothing —
the harness could be comparing a design against itself, running zero
instructions, or swallowing mismatches.  This module supplies known
bugs to catch: :class:`CorruptingCollectorPool` is the conventional
baseline pool with one seeded defect in the operand path, registered
as a temporary design via :func:`injected_bug` so the whole fuzz
pipeline (generate -> diff -> shrink -> corpus) exercises end to end
against a guaranteed failure.

The defects are deterministic (a modular counter, no randomness), so a
caught case shrinks reliably and its minimized corpus file replays the
same mismatch forever.  Three kinds cover the three writeback seams:

* ``corrupt-deliver`` — an RF read's data is flipped on the way into
  the collector (models a bypass-network data error);
* ``corrupt-writeback`` — a completed result is perturbed before the
  RF write (models a result-bus error);
* ``drop-writeback`` — a completed result's RF write is silently
  elided (models the exact failure BOW-WR's hint machinery would
  exhibit if it misclassified a live value as dead).

Nothing in :mod:`repro` proper imports this module; it exists for the
fuzz self-tests and the CLI's ``repro fuzz --inject-bug``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from ..core.designs import DesignSpec, temporary_design
from ..errors import SimulationError
from ..gpu.collector import BaselineCollectorPool, InflightInstruction

#: Every injectable defect kind.
BUG_KINDS = ("corrupt-deliver", "corrupt-writeback", "drop-writeback")

#: Fire the defect on every Nth event of its seam: frequent enough
#: that any non-trivial case trips it, sparse enough that shrinking
#: has slack to remove instructions.
_PERIOD = 3

#: XOR mask applied by the corrupting kinds (nonzero, so the value
#: always changes).
_FLIP = 0x5A5A


class CorruptingCollectorPool(BaselineCollectorPool):
    """The baseline OCU pool with one deterministic, seeded defect."""

    def __init__(self, engine, num_units: int, kind: str):
        if kind not in BUG_KINDS:
            raise SimulationError(
                f"unknown bug kind {kind!r}; expected one of {BUG_KINDS}"
            )
        super().__init__(engine, num_units)
        self.kind = kind
        self._deliveries = 0
        self._completions = 0

    def deliver(self, tag: object, value: int) -> None:
        if self.kind == "corrupt-deliver":
            self._deliveries += 1
            if self._deliveries % _PERIOD == 0:
                value ^= _FLIP
        super().deliver(tag, value)

    def on_complete(self, entry: InflightInstruction,
                    value: Optional[int]) -> None:
        if value is not None and entry.dec.rf_dest_id is not None:
            self._completions += 1
            if self._completions % _PERIOD == 0:
                if self.kind == "corrupt-writeback":
                    value = (value ^ _FLIP) & 0xFFFFFFFF
                elif self.kind == "drop-writeback":
                    # Elide the RF write but keep the pipeline legal:
                    # the slot frees and the scoreboard releases exactly
                    # once, as the provider contract requires.
                    self._occupied.pop(entry.key, None)
                    self.engine.release_scoreboard(entry)
                    return
        super().on_complete(entry, value)


def buggy_design_spec(kind: str, name: str = "buggy") -> DesignSpec:
    """A registry spec for the baseline pool broken with ``kind``."""
    def provider(engine, window_size: int) -> CorruptingCollectorPool:
        return CorruptingCollectorPool(
            engine, engine.config.num_operand_collectors, kind)

    return DesignSpec(
        name=name,
        description=f"deliberately broken baseline ({kind})",
        provider=provider,
        windowless=True,
    )


@contextlib.contextmanager
def injected_bug(kind: str, name: str = "buggy") -> Iterator[DesignSpec]:
    """Register the broken design for the duration of a ``with`` block."""
    with temporary_design(buggy_design_spec(kind, name)) as spec:
        yield spec
