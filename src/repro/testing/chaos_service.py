"""Service-layer chaos drill: ``repro chaos-serve``.

Where :mod:`repro.testing.chaos` batters the library sweep engine,
this driver batters the *service* — real ``repro serve`` processes,
real TCP, real SIGKILL — and asserts the robustness guarantees the
hardened service claims:

1. **Kill-and-restart recovery** — a server with ``--journal`` is
   hard-killed (``kill-server`` fault: ``os._exit`` mid-batch, the
   SIGKILL stand-in) while a sweep is executing.  The journal replay
   shows the owed points; a second server started over the same cache
   and journal recovers them with **zero duplicated simulations**
   (everything that finished before the kill comes back from the
   ``RunCache``), and ``loadgen --expect-dedup`` still passes against
   the recovered server.
2. **Overload shedding** — with ``--max-queued`` exceeded, the server
   answers ``overloaded`` (typed, with a ``retry_after_ms`` hint)
   instead of growing without bound; a resilient
   :class:`~repro.service.ServiceClient` retries through the hint and
   eventually succeeds; already-accepted work is unaffected.
3. **Graceful drain** — a drain-mode shutdown finishes all accepted
   in-flight points within ``drain_timeout`` and exits 0; SIGTERM
   triggers the same drain path.

Exit status 0 means every check passed; the first failed check prints
a ``chaos-serve: FAIL`` line and exits 1.  ``--keep`` preserves the
scratch directory (journal, cache, server logs, telemetry) for
post-mortems; CI uploads it as an artifact.

The driver re-invokes itself (``--serve-child``) to start each server
subprocess so the kill-server fault plan is installed *inside* the
serving process before ``repro serve`` takes over.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import ReproError
from ..experiments.cache import RunCache
from ..experiments.runner import RunScale
from ..service import ServiceClient, replay, run_loadgen
from .faults import KILL_EXIT_CODE, FaultPlan, FaultSpec, install

#: The grid the killed sweep requests (distinct scale from the loadgen
#: grid so the two never share cache keys): 2 benchmarks x 2 designs.
SWEEP_BENCHMARKS = ("SAD", "BFS")
SWEEP_DESIGNS = ("baseline", "bow")
SWEEP_SCALE = RunScale(num_warps=2, trace_scale=0.1)

#: The point whose simulation hard-exits the first server.  Submission
#: order makes it late in the batch, so earlier points are already in
#: the run cache when the process dies — exactly the state recovery
#: must not re-simulate.
VICTIM = "BFS/bow IW3"

#: The loadgen grid (served at the loadgen default scale, 4 warps).
LOADGEN_BENCHMARKS = ("SAD",)
LOADGEN_DESIGNS = ("baseline", "bow")

#: Seconds to wait for a server to announce, recover, or exit.
WAIT_SECONDS = 60.0


def _log(message: str) -> None:
    print(f"chaos-serve: {message}", file=sys.stderr)


def _check(ok: bool, message: str) -> None:
    if not ok:
        _log(f"FAIL {message}")
        raise SystemExit(1)
    _log(f"ok   {message}")


def _wait_exit(proc: subprocess.Popen) -> Optional[int]:
    """The process's exit code, or ``None`` if it outlives the wait."""
    try:
        return proc.wait(timeout=WAIT_SECONDS)
    except subprocess.TimeoutExpired:
        return None


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _child_env() -> dict:
    """The server subprocess environment: make ``repro`` importable
    the same way it is for the driver."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (f"{package_root}{os.pathsep}{existing}"
                         if existing else package_root)
    return env


def _wait_for_line(log_path: Path, needle: str,
                   proc: subprocess.Popen) -> None:
    deadline = time.monotonic() + WAIT_SECONDS
    while time.monotonic() < deadline:
        if log_path.exists() and needle in log_path.read_text(
                encoding="utf-8", errors="replace"):
            return
        if proc.poll() is not None:
            raise SystemExit(_fail(
                f"server exited early (rc={proc.returncode}) waiting "
                f"for {needle!r}; log: {log_path}"))
        time.sleep(0.05)
    raise SystemExit(_fail(f"timed out waiting for {needle!r} in "
                           f"{log_path}"))


def _fail(message: str) -> int:
    _log(f"FAIL {message}")
    return 1


def _spawn_server(root: Path, name: str, port: int, *,
                  journal: Path, cache_dir: Path,
                  extra: Sequence[str] = (),
                  kill_match: Optional[str] = None) -> subprocess.Popen:
    """Start one ``repro serve`` subprocess (via ``--serve-child``)."""
    log_path = root / f"{name}.log"
    argv = [sys.executable, "-m", "repro.testing.chaos_service",
            "--serve-child", "--port", str(port),
            "--journal", str(journal), "--cache-dir", str(cache_dir),
            "--fault-state", str(root / f"{name}-faults"),
            "--telemetry-dir", str(root / f"{name}-telemetry")]
    if kill_match:
        argv += ["--kill-match", kill_match]
    if extra:
        argv += ["--", *extra]  # passthrough flags for `repro serve`
    with open(log_path, "w", encoding="utf-8") as log:
        proc = subprocess.Popen(argv, stdout=log,
                                stderr=subprocess.STDOUT,
                                env=_child_env())
    _wait_for_line(log_path, "listening", proc)
    return proc


def _request(port: int, payload: dict,
             connect_seconds: float = 10.0) -> dict:
    """One synchronous request/response against a running server."""

    async def roundtrip() -> dict:
        client = ServiceClient("127.0.0.1", port)
        await client.connect(retry_seconds=connect_seconds)
        try:
            return await client.request(payload)
        finally:
            await client.close()

    return asyncio.run(roundtrip())


def _stats(port: int) -> dict:
    return _request(port, {"op": "stats"})


def _sweep_points() -> List[List]:
    return [[benchmark, design, 3]
            for benchmark in SWEEP_BENCHMARKS
            for design in SWEEP_DESIGNS]


def _scale_payload(scale: RunScale) -> dict:
    return {"num_warps": scale.num_warps,
            "trace_scale": scale.trace_scale,
            "memory_seed": scale.memory_seed,
            "num_sms": scale.num_sms}


def _wait_for_recovery(port: int, expected_points: int) -> dict:
    """Poll ``stats`` until the background recovery job completes."""
    deadline = time.monotonic() + WAIT_SECONDS
    while time.monotonic() < deadline:
        response = _stats(port)
        stats = response["stats"]
        if (stats["recovered_points"] >= expected_points
                and response["active_jobs"] == 0
                and response["inflight_points"] == 0):
            return response
        time.sleep(0.1)
    raise SystemExit(_fail("timed out waiting for journal recovery"))


def _loadgen_dedup(port: int, label: str) -> None:
    report = run_loadgen(
        "127.0.0.1", port, clients=4,
        benchmarks=LOADGEN_BENCHMARKS, designs=LOADGEN_DESIGNS,
        windows=(3,),
    )
    _check(report["single_flight"]["dedup_ok"],
           f"loadgen dedup holds {label} "
           f"(cold resolved {report['single_flight']['cold_resolved_once']}"
           f"/{report['unique_points']} once, warm simulated "
           f"{report['single_flight']['warm_simulated']})")


# -- scenario 1: kill mid-batch, restart, recover ----------------------

def _scenario_recovery(root: Path) -> None:
    journal = root / "journal.jsonl"
    cache_dir = root / "cache"
    unique = len(_sweep_points())

    _log("recovery: starting server 1 with a kill-server fault at "
         f"{VICTIM}")
    port1 = _free_port()
    server1 = _spawn_server(root, "server1", port1, journal=journal,
                            cache_dir=cache_dir, kill_match=VICTIM)
    try:
        _loadgen_dedup(port1, "before the kill")
        entries_before = RunCache(cache_dir).entry_count()

        _log(f"recovery: submitting a {unique}-point sweep; the server "
             f"dies mid-batch")
        try:
            response = _request(port1, {
                "op": "sweep", "points": _sweep_points(),
                "scale": _scale_payload(SWEEP_SCALE)})
        except (ReproError, OSError):
            response = None  # connection died with the server — expected
        _check(response is None,
               "sweep connection died with the server")
        rc = _wait_exit(server1)
        _check(rc == KILL_EXIT_CODE,
               f"server 1 hard-exited mid-batch (rc={rc})")
    finally:
        if server1.poll() is None:
            server1.kill()

    state = replay(journal)
    cached = RunCache(cache_dir).entry_count() - entries_before
    _check(state.needs_recovery
           and len(state.unresolved_points) == unique,
           f"journal shows all {unique} sweep point(s) unresolved")
    _check(len(state.unfinished_jobs) >= 1,
           f"journal shows {len(state.unfinished_jobs)} unfinished "
           f"job(s)")
    _check(1 <= cached < unique,
           f"{cached} point(s) reached the run cache before the kill")

    _log("recovery: restarting over the same cache + journal")
    port2 = _free_port()
    server2 = _spawn_server(root, "server2", port2, journal=journal,
                            cache_dir=cache_dir)
    try:
        response = _wait_for_recovery(port2, unique)
        stats = response["stats"]
        _check(stats["recovered_jobs"] >= 1,
               f"stats report {stats['recovered_jobs']} recovered "
               f"job(s)")
        _check(stats["recovered_points"] == unique,
               f"all {unique} owed point(s) recovered")
        _check(stats["simulated"] == unique - cached,
               f"zero duplicated simulations: {stats['simulated']} "
               f"simulated == {unique} owed - {cached} cached")
        _check(stats["from_cache"] == cached,
               f"{cached} recovered point(s) came from the warm cache")
        _loadgen_dedup(port2, "after recovery")
        response = _request(port2, {"op": "shutdown", "mode": "drain"})
        _check(bool(response.get("ok")) and bool(response.get("drained")),
               "post-recovery drain shutdown completed cleanly")
        rc = _wait_exit(server2)
        _check(rc == 0, f"server 2 exited cleanly (rc={rc})")
    finally:
        if server2.poll() is None:
            server2.kill()


# -- scenario 2: overload shedding + graceful drain --------------------

def _scenario_overload(root: Path) -> None:
    journal = root / "overload-journal.jsonl"
    cache_dir = root / "overload-cache"

    _log("overload: starting a server with --max-queued 2, "
         "--max-batch 1 and a slow batch window")
    port = _free_port()
    server = _spawn_server(
        root, "overload", port, journal=journal, cache_dir=cache_dir,
        extra=["--max-queued", "2", "--max-batch", "1",
               "--batch-window", "0.6", "--drain-timeout", "30"])
    try:
        asyncio.run(_overload_async(port))
        _log("overload: SIGTERM drains the server")
        server.send_signal(signal.SIGTERM)
        rc = _wait_exit(server)
        _check(rc == 0, f"SIGTERM drain exited cleanly (rc={rc})")
        log_text = (root / "overload.log").read_text(encoding="utf-8")
        _check("SIGTERM: draining" in log_text,
               "server announced the SIGTERM drain")
    finally:
        if server.poll() is None:
            server.kill()


async def _overload_async(port: int) -> None:
    from ..experiments.resilience import RetryPolicy

    scale = _scale_payload(SWEEP_SCALE)
    first = [["SAD", "baseline", 3], ["SAD", "bow", 3]]
    second = [["BFS", "baseline", 3], ["BFS", "bow", 3]]

    client_a = ServiceClient("127.0.0.1", port)
    await client_a.connect(retry_seconds=10.0)
    client_b = ServiceClient("127.0.0.1", port)
    await client_b.connect()
    try:
        # Client A fills the queue; the 0.6 s batch window keeps its
        # points queued long enough for B to hit the bound.
        job_a = asyncio.ensure_future(client_a.request(
            {"op": "sweep", "points": first, "scale": scale}))
        await asyncio.sleep(0.2)
        shed = await client_b.request(
            {"op": "sweep", "points": second, "scale": scale})
        _check(not shed.get("ok")
               and shed.get("error_type") == "ServiceOverloadedError",
               "second job shed with a typed overloaded response")
        _check(int(shed.get("retry_after_ms", 0)) > 0,
               f"overloaded response carries retry_after_ms="
               f"{shed.get('retry_after_ms')}")

        # A resilient client retries through the hint and succeeds
        # once A's points drain.
        retry_client = ServiceClient(
            "127.0.0.1", port,
            retry=RetryPolicy(max_attempts=8, backoff_base=0.2))
        await retry_client.connect()
        try:
            retried = await retry_client.sweep(points=second,
                                               scale=SWEEP_SCALE)
        finally:
            await retry_client.close()
        _check(retried.get("ok"),
               "resilient client succeeded after backoff")

        response_a = await job_a
        _check(response_a.get("ok"),
               "already-accepted job finished despite the shed load")
    finally:
        await client_a.close()
        await client_b.close()


# -- the --serve-child entry ------------------------------------------

def _serve_child(args) -> int:
    """Install the fault plan, then become ``repro serve``."""
    from .. import cli

    if args.kill_match:
        install(FaultPlan(args.fault_seed, args.fault_state,
                          [FaultSpec("kill-server", times=1,
                                     match=args.kill_match)]))
    serve_argv = ["serve", "--host", "127.0.0.1",
                  "--port", str(args.port),
                  "--journal", args.journal,
                  "--cache-dir", args.cache_dir,
                  "--telemetry-dir", args.telemetry_dir,
                  *args.serve_args]
    return cli.main(serve_argv)


# -- entry points ------------------------------------------------------

def run(scenario: str = "all", keep: bool = False,
        root: Optional[str] = None) -> int:
    """Run the drill; returns the process exit code.

    ``root`` pins the scratch directory (CI points it at the artifact
    upload path); by default a temp directory is used and removed on
    success.  On failure the directory is always kept for post-mortem.
    """
    if root is None:
        root_path = Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    else:
        root_path = Path(root)
        root_path.mkdir(parents=True, exist_ok=True)
        keep = True
    _log(f"scratch directory: {root_path}")
    failed = False
    try:
        if scenario in ("all", "recovery"):
            _scenario_recovery(root_path)
        if scenario in ("all", "overload"):
            _scenario_overload(root_path)
    except SystemExit as stop:
        failed = True
        return int(stop.code or 1)
    finally:
        if failed or keep:
            _log(f"artifacts in {root_path}")
        else:
            shutil.rmtree(root_path, ignore_errors=True)
    _log("all checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos_service",
        description="service-layer chaos drill (CI)",
    )
    parser.add_argument("--scenario", default="all",
                        choices=["all", "recovery", "overload"])
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="pin the scratch directory (implies --keep; "
                             "CI points this at the artifact path)")
    parser.add_argument("--serve-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--port", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--journal", default="", help=argparse.SUPPRESS)
    parser.add_argument("--cache-dir", default="",
                        help=argparse.SUPPRESS)
    parser.add_argument("--telemetry-dir", default="",
                        help=argparse.SUPPRESS)
    parser.add_argument("--fault-state", default="",
                        help=argparse.SUPPRESS)
    parser.add_argument("--fault-seed", type=int, default=11,
                        help=argparse.SUPPRESS)
    parser.add_argument("--kill-match", default="",
                        help=argparse.SUPPRESS)
    parser.add_argument("serve_args", nargs="*",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.serve_child:
        return _serve_child(args)
    return run(scenario=args.scenario, keep=args.keep, root=args.root)


if __name__ == "__main__":
    raise SystemExit(main())
