"""CI chaos-smoke driver: ``python -m repro.testing.chaos``.

Runs a QUICK sweep under injected faults and asserts the resilience
layer's headline guarantees end to end, the way CI exercises them:

1. **Partial sweep** — with a worker that dies every time it touches
   one grid point and a cache that tears half its writes, a
   ``strict=False`` sweep returns N-1 results plus exactly one
   :class:`~repro.experiments.resilience.PointFailure`; no completed
   result is lost.
2. **Healing** — a subsequent *clean* sweep re-simulates only the
   failed point plus the torn cache entries (``--expect-sims``), and a
   third pass is fully warm (``--expect-warm``).
3. **Exit codes** — ``repro sweep --keep-going`` exits 3 on a partial
   grid and the strict default aborts with a nonzero status.
4. **Determinism** — the same fault seed produces the same failure
   records at ``jobs=1`` and ``jobs=N``.

Exit status 0 means every check passed; the first failed check prints
a ``chaos: FAIL`` line and exits 1.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from typing import List, Optional

from .. import cli
from ..experiments import runner
from ..experiments.cache import RunCache
from ..experiments.grid import run_grid
from ..experiments.resilience import RetryPolicy
from .faults import FaultSpec, injected_faults

#: The grid under test: 2 benchmarks x 3 designs x 1 window = 6 points.
BENCHMARKS = ("SAD", "BFS")
DESIGNS = ("baseline", "bow", "bow-wr")
WINDOWS = (3,)

#: The point the injected worker crash targets.
VICTIM = "SAD/bow IW3"

#: Zero backoff keeps the smoke fast; three attempts per point.
POLICY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def _log(message: str) -> None:
    print(f"chaos: {message}", file=sys.stderr)


def _check(ok: bool, message: str) -> None:
    if not ok:
        _log(f"FAIL {message}")
        raise SystemExit(1)
    _log(f"ok   {message}")


def _sweep_argv(cache_dir: str, jobs: int, *extra: str) -> List[str]:
    return ["sweep", *BENCHMARKS, "--jobs", str(jobs),
            "--cache-dir", cache_dir, *extra]


def _faulted_grid(seed: int, state_dir: str, cache_dir: str, jobs: int,
                  specs: List[FaultSpec]):
    """One strict=False sweep with ``specs`` installed; returns
    ``(grid, plan)`` with the plan already uninstalled."""
    runner.clear_cache()
    with injected_faults(seed, state_dir, specs) as plan:
        grid = run_grid(
            BENCHMARKS, DESIGNS, WINDOWS, scale=runner.QUICK, jobs=jobs,
            retry=POLICY, strict=False, cache=RunCache(cache_dir),
        )
    return grid, plan


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description="sweep-engine chaos smoke (CI)",
    )
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel passes")
    parser.add_argument("--seed", type=int, default=11,
                        help="fault-plan seed")
    args = parser.parse_args(argv)

    points = len(BENCHMARKS) * len(DESIGNS) * len(WINDOWS)
    specs = [
        FaultSpec("kill", times=0, match=VICTIM),
        FaultSpec("cache-corrupt", rate=0.5, times=1),
    ]
    root = tempfile.mkdtemp(prefix="repro-chaos-")
    cache_dir = f"{root}/cache"
    state_dir = f"{root}/faults"
    try:
        # -- pass 1: crash + torn cache, keep going --------------------
        _log(f"pass 1: {points}-point sweep, worker crash at {VICTIM}, "
             f"torn cache writes (jobs={args.jobs})")
        grid, plan = _faulted_grid(args.seed, state_dir, cache_dir,
                                   args.jobs, specs)
        _check(len(grid.results) == points - 1,
               f"{points - 1} of {points} points resolved")
        _check([f.signature() for f in grid.failures]
               == [(VICTIM, "transient", POLICY.max_attempts)],
               f"exactly one failure: {VICTIM} after "
               f"{POLICY.max_attempts} attempts")
        _check(len(grid.records) + len(grid.failures) == points,
               "no completed result was lost")
        torn = plan.spec_firings(1)
        _check(torn > 0, f"{torn} cache write(s) torn")

        # -- pass 2: clean sweep heals ---------------------------------
        _log("pass 2: clean sweep re-simulates only the failed point "
             "and the torn entries")
        runner.clear_cache()
        code = cli.main(_sweep_argv(cache_dir, args.jobs,
                                    "--expect-sims", str(1 + torn)))
        _check(code == 0, f"healing pass simulated exactly {1 + torn} "
                          f"run(s) (exit {code})")

        # -- pass 3: fully warm ----------------------------------------
        runner.clear_cache()
        code = cli.main(_sweep_argv(cache_dir, 1, "--expect-warm"))
        _check(code == 0, f"third pass fully warm (exit {code})")

        # -- exit codes ------------------------------------------------
        _log("exit codes: --keep-going partial sweep and strict abort")
        runner.clear_cache()
        with injected_faults(args.seed, f"{root}/cli-faults",
                             [FaultSpec("raise", times=0, match=VICTIM)]):
            code = cli.main(_sweep_argv(
                f"{root}/cli-cache", args.jobs, "--keep-going",
                "--retries", "2"))
            _check(code == 3, f"--keep-going partial sweep exits 3 "
                              f"(exit {code})")
            runner.clear_cache()
            code = cli.main(_sweep_argv(f"{root}/cli-cache2", args.jobs))
            _check(code == 1, f"strict sweep aborts with exit 1 "
                              f"(exit {code})")

        # -- determinism: jobs=1 vs jobs=N -----------------------------
        _log(f"determinism: same fault seed at jobs=1 and "
             f"jobs={args.jobs}")
        serial, _ = _faulted_grid(args.seed, f"{root}/det-faults-1",
                                  f"{root}/det-cache-1", 1, specs)
        parallel, _ = _faulted_grid(args.seed, f"{root}/det-faults-N",
                                    f"{root}/det-cache-N", args.jobs,
                                    specs)
        _check(sorted(f.signature() for f in serial.failures)
               == sorted(f.signature() for f in parallel.failures),
               "identical failure records at jobs=1 and "
               f"jobs={args.jobs}")
    finally:
        runner.set_cache(None)
        runner.clear_cache()
        shutil.rmtree(root, ignore_errors=True)
    _log("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
