"""Kernel control-flow graphs.

A :class:`KernelCFG` is a set of named basic blocks plus an entry label.
Edges carry either a *taken probability* (data-dependent branch) or a
*trip count* (counted loop back-edge), which is all the trace expander
needs to unroll control flow deterministically from a seed.

The compiler passes (liveness, writeback classification) operate on the
CFG; the timing model and the bypass analyses operate on the expanded
per-warp traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import KernelError
from ..isa import Instruction


@dataclass(frozen=True)
class Edge:
    """A CFG edge to ``target`` taken with probability ``probability``."""

    target: str
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise KernelError(
                f"edge probability must be in [0, 1], got {self.probability}"
            )


@dataclass
class BasicBlock:
    """A straight-line run of instructions with at most two successors.

    Attributes:
        label: unique block name.
        instructions: the block body (the trailing branch, if any, is the
            last instruction and is part of the body).
        edges: successor edges; empty for exit blocks.  With two edges
            their probabilities must sum to 1.
        max_visits: safety bound on how often a single warp may enter
            this block during trace expansion (catches runaway loops).
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    max_visits: int = 10_000

    def validate(self) -> None:
        if not self.label:
            raise KernelError("basic block needs a non-empty label")
        if len(self.edges) > 2:
            raise KernelError(f"block {self.label!r} has more than two successors")
        if len(self.edges) == 2:
            total = self.edges[0].probability + self.edges[1].probability
            if abs(total - 1.0) > 1e-9:
                raise KernelError(
                    f"block {self.label!r}: successor probabilities sum to "
                    f"{total}, expected 1.0"
                )

    @property
    def is_exit(self) -> bool:
        return not self.edges


class KernelCFG:
    """A kernel as a control-flow graph of basic blocks."""

    def __init__(self, name: str, blocks: Iterable[BasicBlock], entry: str):
        self.name = name
        self.blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            block.validate()
            if block.label in self.blocks:
                raise KernelError(f"duplicate block label {block.label!r}")
            self.blocks[block.label] = block
        if entry not in self.blocks:
            raise KernelError(f"entry block {entry!r} not defined")
        self.entry = entry
        self._validate_edges()

    def _validate_edges(self) -> None:
        for block in self.blocks.values():
            for edge in block.edges:
                if edge.target not in self.blocks:
                    raise KernelError(
                        f"block {block.label!r} targets undefined block "
                        f"{edge.target!r}"
                    )

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def static_instructions(self) -> List[Instruction]:
        """All static instructions in block order (entry first)."""
        ordered = [self.blocks[self.entry]]
        ordered.extend(
            block for label, block in self.blocks.items() if label != self.entry
        )
        return [inst for block in ordered for inst in block.instructions]

    def successors(self, label: str) -> List[str]:
        return [edge.target for edge in self.blocks[label].edges]

    def predecessors(self, label: str) -> List[str]:
        return [
            block.label
            for block in self.blocks.values()
            if any(edge.target == label for edge in block.edges)
        ]

    def expand_trace(
        self,
        rng: random.Random,
        max_instructions: int = 100_000,
    ) -> List[Instruction]:
        """Resolve control flow into one dynamic instruction stream.

        Block bodies are emitted as-is; at each branch the successor is
        drawn from the edge probabilities using ``rng``.  Expansion stops
        at an exit block or at ``max_instructions`` (whichever first).
        """
        trace: List[Instruction] = []
        visits: Dict[str, int] = {}
        label: Optional[str] = self.entry
        while label is not None and len(trace) < max_instructions:
            block = self.blocks[label]
            visits[label] = visits.get(label, 0) + 1
            if visits[label] > block.max_visits:
                raise KernelError(
                    f"block {label!r} visited more than {block.max_visits} "
                    "times; runaway loop?"
                )
            remaining = max_instructions - len(trace)
            trace.extend(block.instructions[:remaining])
            label = self._pick_successor(block, rng)
        return trace

    @staticmethod
    def _pick_successor(block: BasicBlock, rng: random.Random) -> Optional[str]:
        if not block.edges:
            return None
        if len(block.edges) == 1:
            return block.edges[0].target
        first = block.edges[0]
        return first.target if rng.random() < first.probability else block.edges[1].target


def straightline_kernel(name: str, instructions: Sequence[Instruction]) -> KernelCFG:
    """Wrap a flat instruction list as a single-block kernel."""
    block = BasicBlock(label="entry", instructions=list(instructions))
    return KernelCFG(name=name, blocks=[block], entry="entry")


def loop_kernel(
    name: str,
    preamble: Sequence[Instruction],
    body: Sequence[Instruction],
    epilogue: Sequence[Instruction],
    iterations: int,
) -> KernelCFG:
    """A canonical counted loop: preamble, ``iterations`` x body, epilogue.

    The back-edge probability is set so the *expected* trip count equals
    ``iterations``; individual warps draw their own trip counts, which
    gives the mild inter-warp divergence real kernels show.
    """
    if iterations < 1:
        raise KernelError(f"iterations must be >= 1, got {iterations}")
    back_probability = 1.0 - 1.0 / iterations
    blocks = [
        BasicBlock("entry", list(preamble), [Edge("body")]),
        BasicBlock(
            "body",
            list(body),
            [Edge("body", back_probability), Edge("exit", 1.0 - back_probability)],
            max_visits=max(100, iterations * 50),
        ),
        BasicBlock("exit", list(epilogue)),
    ]
    return KernelCFG(name=name, blocks=blocks, entry="entry")
