"""The 15-benchmark workload suite of the paper (Table III).

The paper evaluates on benchmarks from ISPASS, Rodinia, Tango, the CUDA
SDK and Parboil.  Each :class:`BenchmarkProfile` here configures the
synthetic generator (see :mod:`repro.kernels.synthetic`) so the
resulting traces exhibit that benchmark's qualitative character as the
paper reports it:

* BFS, BTREE and LPS issue no 3-source-operand instructions and have low
  collector occupancy (Figures 8 and 9);
* WP has low register reuse and gains little from bypassing; SAD is
  register-hungry with high collector occupancy (SS V-A);
* STO spends the largest share of its time in the operand-collection
  stage (Figure 4);
* the Tango DNN workloads are mad/fma-heavy with strong accumulator
  locality;
* VectorAdd is a streaming kernel dominated by memory traffic.

``paper_read_bypass`` / ``paper_write_bypass`` record the approximate
IW=3 values read off the paper's Figure 3 — they are calibration
*targets* (shape), not assertions of exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import KernelError
from .synthetic import IdiomWeights, SyntheticKernelSpec, generate_trace
from .trace import KernelTrace


@dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark of Table III plus its generator configuration."""

    name: str
    suite: str
    description: str
    spec: SyntheticKernelSpec
    paper_read_bypass: float
    paper_write_bypass: float

    def build_trace(self, num_warps: int | None = None,
                    scale: float = 1.0) -> KernelTrace:
        """Expand the benchmark into per-warp traces.

        Args:
            num_warps: override the profile's warp count (tests use small
                counts for speed).
            scale: multiply the expected trace length.
        """
        spec = self.spec
        if scale != 1.0:
            spec = spec.scaled(scale)
        if num_warps is not None:
            from dataclasses import replace

            spec = replace(spec, num_warps=num_warps)
        return generate_trace(spec)


def _profile(
    name: str,
    suite: str,
    description: str,
    read_bypass: float,
    write_bypass: float,
    **spec_kwargs,
) -> BenchmarkProfile:
    spec = SyntheticKernelSpec(name=name, **spec_kwargs)
    return BenchmarkProfile(
        name=name,
        suite=suite,
        description=description,
        spec=spec,
        paper_read_bypass=read_bypass,
        paper_write_bypass=write_bypass,
    )


def _build_suite() -> Dict[str, BenchmarkProfile]:
    profiles: List[BenchmarkProfile] = [
        # ---- ISPASS ------------------------------------------------------
        _profile(
            "LIB", "ISPASS", "LIBOR Monte Carlo",
            read_bypass=0.62, write_bypass=0.55,
            num_registers=20, body_instructions=70, loop_iterations=24,
            weights=IdiomWeights(accumulate_chain=4.0, address_load=1.0,
                                 load_use=1.0, compute_mix=3.0, far_read=1.5,
                                 store=0.6, sfu=1.2, three_src=0.15),
            locality=0.6, seed=101,
        ),
        _profile(
            "LPS", "ISPASS", "3D Laplace solver",
            read_bypass=0.63, write_bypass=0.56,
            num_registers=18, body_instructions=64, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=4.5, address_load=2.0,
                                 load_use=1.5, compute_mix=2.5, far_read=1.2,
                                 store=1.0, sfu=0.1, three_src=0.00),
            max_source_operands=2,
            locality=0.7, seed=102,
        ),
        _profile(
            "STO", "ISPASS", "StoreGPU",
            read_bypass=0.66, write_bypass=0.60,
            num_registers=28, body_instructions=90, loop_iterations=20,
            weights=IdiomWeights(accumulate_chain=5.0, address_load=1.2,
                                 load_use=0.8, compute_mix=4.0, far_read=1.0,
                                 store=0.5, sfu=0.2, three_src=0.20),
            locality=0.6, chain_length=4, seed=103,
        ),
        _profile(
            "WP", "ISPASS", "Weather prediction",
            read_bypass=0.38, write_bypass=0.33,
            num_registers=40, body_instructions=80, loop_iterations=18,
            weights=IdiomWeights(accumulate_chain=1.0, address_load=1.5,
                                 load_use=1.5, compute_mix=1.5, far_read=5.0,
                                 store=1.2, sfu=0.6, three_src=0.30),
            locality=0.45, chain_length=2, seed=104,
        ),
        # ---- Rodinia ------------------------------------------------------
        _profile(
            "BACKPROP", "Rodinia", "Back-propagation",
            read_bypass=0.60, write_bypass=0.54,
            num_registers=22, body_instructions=60, loop_iterations=20,
            weights=IdiomWeights(accumulate_chain=4.0, address_load=1.5,
                                 load_use=1.5, compute_mix=2.5, far_read=1.5,
                                 store=1.0, sfu=0.5, three_src=0.17),
            locality=0.6, seed=105,
        ),
        _profile(
            "BFS", "Rodinia", "Breadth-first search",
            read_bypass=0.52, write_bypass=0.45,
            num_registers=16, body_instructions=44, loop_iterations=26,
            weights=IdiomWeights(accumulate_chain=2.2, address_load=2.5,
                                 load_use=2.5, compute_mix=1.5, far_read=2.0,
                                 store=1.0, sfu=0.0, three_src=0.00),
            locality=0.65, max_source_operands=2, chain_length=2, branch_every=10,
            seed=106,
        ),
        _profile(
            "BTREE", "Rodinia", "Braided B+ tree",
            read_bypass=0.57, write_bypass=0.50,
            num_registers=18, body_instructions=52, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=3.0, address_load=2.5,
                                 load_use=2.0, compute_mix=2.0, far_read=1.6,
                                 store=0.8, sfu=0.0, three_src=0.00),
            locality=0.7, max_source_operands=2, branch_every=12,
            seed=107,
        ),
        _profile(
            "GAUSSIAN", "Rodinia", "Gaussian elimination",
            read_bypass=0.65, write_bypass=0.58,
            num_registers=20, body_instructions=56, loop_iterations=24,
            weights=IdiomWeights(accumulate_chain=4.5, address_load=1.8,
                                 load_use=1.2, compute_mix=2.5, far_read=1.0,
                                 store=0.8, sfu=0.3, three_src=0.20),
            locality=0.65, chain_length=4, seed=108,
        ),
        _profile(
            "MUM", "Rodinia", "MummerGPU sequence matching",
            read_bypass=0.50, write_bypass=0.43,
            num_registers=26, body_instructions=58, loop_iterations=20,
            weights=IdiomWeights(accumulate_chain=2.0, address_load=2.5,
                                 load_use=2.5, compute_mix=1.5, far_read=2.8,
                                 store=0.8, sfu=0.0, three_src=0.07),
            locality=0.75, chain_length=2, branch_every=10, seed=109,
        ),
        _profile(
            "NW", "Rodinia", "Needleman-Wunsch",
            read_bypass=0.58, write_bypass=0.51,
            num_registers=20, body_instructions=54, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=3.2, address_load=2.2,
                                 load_use=1.8, compute_mix=2.2, far_read=1.6,
                                 store=1.0, sfu=0.0, three_src=0.10),
            locality=0.5, seed=110,
        ),
        _profile(
            "SRAD", "Rodinia", "Speckle-reducing anisotropic diffusion",
            read_bypass=0.63, write_bypass=0.56,
            num_registers=22, body_instructions=66, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=4.2, address_load=1.8,
                                 load_use=1.4, compute_mix=2.8, far_read=1.2,
                                 store=1.0, sfu=0.8, three_src=0.17),
            locality=0.65, seed=111,
        ),
        # ---- Tango (DNN) ---------------------------------------------------
        _profile(
            "CIFARNET", "Tango", "CifarNet CNN inference",
            read_bypass=0.64, write_bypass=0.58,
            num_registers=24, body_instructions=72, loop_iterations=24,
            weights=IdiomWeights(accumulate_chain=5.0, address_load=1.5,
                                 load_use=1.5, compute_mix=2.0, far_read=1.0,
                                 store=0.6, sfu=0.3, three_src=0.38),
            locality=0.5, chain_length=4, seed=112,
        ),
        _profile(
            "SQUEEZENET", "Tango", "SqueezeNet CNN inference",
            read_bypass=0.62, write_bypass=0.56,
            num_registers=26, body_instructions=76, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=4.6, address_load=1.6,
                                 load_use=1.6, compute_mix=2.2, far_read=1.2,
                                 store=0.7, sfu=0.3, three_src=0.35),
            locality=0.5, chain_length=4, seed=113,
        ),
        # ---- CUDA SDK --------------------------------------------------------
        _profile(
            "VECTORADD", "CUDA SDK", "Vector-vector addition",
            read_bypass=0.55, write_bypass=0.48,
            num_registers=14, body_instructions=36, loop_iterations=30,
            weights=IdiomWeights(accumulate_chain=2.5, address_load=3.0,
                                 load_use=3.0, compute_mix=1.0, far_read=1.5,
                                 store=2.0, sfu=0.0, three_src=0.05),
            locality=0.45, chain_length=2, seed=114,
        ),
        # ---- Parboil -----------------------------------------------------------
        _profile(
            "SAD", "Parboil", "Sum of absolute differences",
            read_bypass=0.70, write_bypass=0.63,
            num_registers=30, body_instructions=88, loop_iterations=22,
            weights=IdiomWeights(accumulate_chain=5.5, address_load=1.5,
                                 load_use=1.2, compute_mix=3.0, far_read=0.8,
                                 store=0.6, sfu=0.1, three_src=0.40),
            locality=0.7, chain_length=5, seed=115,
        ),
    ]
    return {profile.name: profile for profile in profiles}


#: The full Table III suite, keyed by benchmark name.
BENCHMARKS: Dict[str, BenchmarkProfile] = _build_suite()


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names, in the suite's canonical order."""
    return tuple(BENCHMARKS)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by (case-insensitive) name."""
    key = name.upper()
    if key not in BENCHMARKS:
        raise KernelError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def build_benchmark_trace(name: str, num_warps: int | None = None,
                          scale: float = 1.0) -> KernelTrace:
    """Convenience wrapper: profile lookup + trace expansion."""
    return get_profile(name).build_trace(num_warps=num_warps, scale=scale)
