"""External traces: the JSONL case format and its importer.

This is the scenario-ingestion frontend: a documented, line-oriented
format for complete simulation cases — instruction stream, warp
structure, and launch parameters — that feeds the normal launch path.
Two producers share it:

* the kernel fuzzer (:mod:`repro.fuzz`) writes minimized differential
  failures to a corpus directory, replayed forever as ordinary
  regressions (``tests/fuzz/test_corpus.py``);
* third-party tooling can translate real GPU traces into the same
  format and run them as first-class benchmarks through
  ``repro trace-import``.

Format (one JSON object per line, schema checked in at
:data:`repro.observe.schema.TRACE_CASE_SCHEMA`):

* line 1 — a ``header`` record: case name, format version, the launch
  parameters (``window``, ``memory_seed``, ``num_sms``, ``num_warps``)
  plus optional ``designs`` (what the case was failing/checked
  against) and free-form ``meta`` provenance;
* one ``warp`` record per warp, declaring ``warp_id`` and its
  instruction count (warp structure is explicit, so zero-instruction
  warps are representable);
* one ``inst`` record per *dynamic* instruction, carrying its warp id
  and the same instruction encoding :mod:`repro.kernels.serialize`
  uses (``op``/``dest``/``src``/``imm``/``guard``/``pdest``/``hint``).

Instruction records are flat — one per dynamic slot, no static pool —
because that is what an external tracer naturally emits.  Hints ride
along per record, so a hint-compiled fuzz trace replays with its
writeback behaviour intact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from ..errors import KernelError
from .serialize import instruction_from_dict, instruction_to_dict
from .trace import KernelTrace, WarpTrace

#: Format version written into every header.
CASE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceCase:
    """One complete, replayable simulation case.

    Attributes:
        trace: the dynamic per-warp instruction streams.
        window: instruction window the case runs at (hinted traces were
            compiled for exactly this window).
        memory_seed: the memory-latency model's seed.
        num_sms: SMs the launch is partitioned across on replay (1 =
            single-SM, the default launch path).
        designs: design names this case is meant to check (empty =
            caller's choice; the corpus replay test runs these).
        meta: free-form provenance (fuzz seed, mismatch kinds, ...).
    """

    trace: KernelTrace
    window: int = 3
    memory_seed: int = 7
    num_sms: int = 1
    designs: Tuple[str, ...] = ()
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window < 0:
            raise KernelError(f"window must be >= 0, got {self.window}")
        if self.num_sms < 1:
            raise KernelError(f"num_sms must be >= 1, got {self.num_sms}")

    @property
    def name(self) -> str:
        return self.trace.name

    def with_designs(self, designs: Iterable[str]) -> "TraceCase":
        return replace(self, designs=tuple(designs))


def case_to_records(case: TraceCase) -> Iterator[Dict]:
    """The case as its JSONL record stream (header, warps, insts)."""
    header: Dict = {
        "type": "header",
        "schema": CASE_FORMAT_VERSION,
        "name": case.trace.name,
        "window": case.window,
        "memory_seed": case.memory_seed,
        "num_sms": case.num_sms,
        "num_warps": case.trace.num_warps,
    }
    if case.designs:
        header["designs"] = list(case.designs)
    if case.meta:
        header["meta"] = case.meta
    yield header
    for warp in case.trace:
        yield {"type": "warp", "warp_id": warp.warp_id,
               "instructions": len(warp.instructions)}
        for inst in warp:
            record = {"type": "inst", "warp": warp.warp_id}
            record.update(instruction_to_dict(inst))
            yield record


def case_from_records(records: Iterable[Dict]) -> TraceCase:
    """Rebuild a case from its record stream (schema-validated)."""
    from ..observe.schema import validate_trace_case_record

    header: Dict = {}
    warps: Dict[int, List] = {}
    declared: Dict[int, int] = {}
    order: List[int] = []
    for line_no, record in enumerate(records, start=1):
        validate_trace_case_record(record)
        kind = record["type"]
        if line_no == 1 and kind != "header":
            raise KernelError(
                "trace case must start with a header record"
            )
        if kind == "header":
            if header:
                raise KernelError("duplicate header record")
            if record["schema"] != CASE_FORMAT_VERSION:
                raise KernelError(
                    f"unsupported trace-case schema {record['schema']!r} "
                    f"(expected {CASE_FORMAT_VERSION})"
                )
            header = record
        elif kind == "warp":
            warp_id = record["warp_id"]
            if warp_id in warps:
                raise KernelError(f"duplicate warp record {warp_id}")
            warps[warp_id] = []
            declared[warp_id] = record["instructions"]
            order.append(warp_id)
        else:  # inst
            warp_id = record["warp"]
            if warp_id not in warps:
                raise KernelError(
                    f"instruction record references undeclared warp "
                    f"{warp_id}"
                )
            warps[warp_id].append(instruction_from_dict(record))
    if not header:
        raise KernelError("trace case has no header record")
    for warp_id, expected in declared.items():
        if len(warps[warp_id]) != expected:
            raise KernelError(
                f"warp {warp_id} declared {expected} instruction(s) "
                f"but carries {len(warps[warp_id])}"
            )
    if header["num_warps"] != len(order):
        raise KernelError(
            f"header declares {header['num_warps']} warp(s) "
            f"but {len(order)} are present"
        )
    trace = KernelTrace(
        name=header["name"],
        warps=[WarpTrace(warp_id=warp_id, instructions=warps[warp_id])
               for warp_id in order],
    )
    return TraceCase(
        trace=trace,
        window=header["window"],
        memory_seed=header["memory_seed"],
        num_sms=header["num_sms"],
        designs=tuple(header.get("designs", ())),
        meta=dict(header.get("meta", {})),
    )


def save_case(case: TraceCase, path: Union[str, Path]) -> Path:
    """Write a case as JSONL; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in case_to_records(case):
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
    return path


def load_case(path: Union[str, Path]) -> TraceCase:
    """Read and validate a JSONL case written by :func:`save_case`
    (or any external producer honouring the schema)."""
    path = Path(path)
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise KernelError(
                    f"{path.name}:{line_no}: not a JSON record: {error}"
                ) from None
    if not records:
        raise KernelError(f"{path.name}: empty trace-case file")
    return case_from_records(records)


def corpus_paths(directory: Union[str, Path]) -> List[Path]:
    """All ``*.jsonl`` case files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.jsonl"))
