"""A library of classic GPU kernels, hand-written with the builder.

Where :mod:`repro.kernels.suites` provides *statistically calibrated*
stand-ins for the paper's benchmarks, this module provides small, real
algorithms whose results can be checked functionally: simulate one and
assert the memory image contains the right answer.  They double as
idiomatic examples of the :class:`~repro.kernels.builder.KernelBuilder`
API and as extra workloads for the BOW designs.

The kernels are fully unrolled (trace expansion of probabilistic loop
edges cannot guarantee exact trip counts, and exactness is the point
here); unrolled streams are also how these kernels exercise BOW
hardest, since every reuse distance is explicit in the instruction
stream.

Conventions:

* each factory returns a fresh :class:`KernelBuilder`; call ``.build()``
  or ``.trace(...)`` on it;
* inputs live at fixed offsets inside the warp's private address window
  (documented per kernel); use :func:`seed_memory` to place them and
  :func:`read_outputs` to fetch results;
* register 0 is never used.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import KernelError
from ..gpu.memory import MemoryModel
from .builder import KernelBuilder

#: Where each kernel's input array begins (per-warp window offset).
INPUT_BASE = 0x1000
#: Where each kernel writes its outputs.
OUTPUT_BASE = 0x8000


def seed_memory(memory: MemoryModel, warp_id: int,
                values: Sequence[int], base: int = INPUT_BASE) -> None:
    """Place ``values`` as consecutive 32-bit words for ``warp_id``."""
    for index, value in enumerate(values):
        address = memory.thread_address(warp_id, base + 4 * index)
        memory.store(address, value)


def read_outputs(image: Dict[int, int], warp_id: int, count: int,
                 base: int = OUTPUT_BASE) -> List[int]:
    """Fetch ``count`` consecutive output words of ``warp_id``."""
    return [
        image.get(MemoryModel.thread_address(warp_id, base + 4 * i), 0)
        for i in range(count)
    ]


def _check_length(length: int) -> None:
    if length < 1:
        raise KernelError(f"length must be >= 1, got {length}")


def vector_add(length: int = 16) -> KernelBuilder:
    """``out[i] = a[i] + b[i]``.

    ``a`` at INPUT_BASE, ``b`` at INPUT_BASE + 4*length; outputs at
    OUTPUT_BASE.
    """
    _check_length(length)
    b = KernelBuilder("vector_add")
    stride = 4 * length
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=INPUT_BASE + stride)
    b.mov(3, imm=OUTPUT_BASE)
    for _ in range(length):
        b.ld(5, addr=1)
        b.ld(6, addr=2)
        b.add(7, 5, 6)
        b.st(addr=3, value=7)
        b.add(1, 1, imm=4)
        b.add(2, 2, imm=4)
        b.add(3, 3, imm=4)
    b.exit()
    return b


def reduction_sum(length: int = 16) -> KernelBuilder:
    """Sum ``length`` input words; the total lands at OUTPUT_BASE."""
    _check_length(length)
    b = KernelBuilder("reduction_sum")
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=0)
    for _ in range(length):
        b.ld(4, addr=1)
        b.add(2, 2, 4)
        b.add(1, 1, imm=4)
    b.mov(5, imm=OUTPUT_BASE)
    b.st(addr=5, value=2)
    b.exit()
    return b


def saxpy(length: int = 16, scale: int = 3) -> KernelBuilder:
    """``y[i] = scale * x[i] + y[i]``, overwriting ``y``.

    ``x`` at INPUT_BASE, ``y`` at INPUT_BASE + 4*length.
    """
    _check_length(length)
    b = KernelBuilder("saxpy")
    stride = 4 * length
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=INPUT_BASE + stride)
    b.mov(3, imm=scale)
    for _ in range(length):
        b.ld(5, addr=1)
        b.ld(6, addr=2)
        b.mad(7, 5, 3, 6)
        b.st(addr=2, value=7)
        b.add(1, 1, imm=4)
        b.add(2, 2, imm=4)
    b.exit()
    return b


def stencil3(length: int = 16) -> KernelBuilder:
    """1D 3-point stencil: ``out[i] = in[i] + in[i+1] + in[i+2]``.

    Input of ``length + 2`` words at INPUT_BASE (one halo word each
    side of the logical array); ``length`` outputs at OUTPUT_BASE.
    """
    _check_length(length)
    b = KernelBuilder("stencil3")
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=OUTPUT_BASE)
    for _ in range(length):
        b.ld(4, addr=1)
        b.add(5, 1, imm=4)
        b.ld(6, addr=5)
        b.add(5, 5, imm=4)
        b.ld(7, addr=5)
        b.add(8, 4, 6)
        b.add(8, 8, 7)
        b.st(addr=2, value=8)
        b.add(1, 1, imm=4)
        b.add(2, 2, imm=4)
    b.exit()
    return b


def dot_product(length: int = 16) -> KernelBuilder:
    """Dot product of two vectors; the scalar lands at OUTPUT_BASE.

    ``a`` at INPUT_BASE, ``b`` at INPUT_BASE + 4*length.
    """
    _check_length(length)
    b = KernelBuilder("dot_product")
    stride = 4 * length
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=INPUT_BASE + stride)
    b.mov(3, imm=0)
    for _ in range(length):
        b.ld(5, addr=1)
        b.ld(6, addr=2)
        b.mad(3, 5, 6, 3)
        b.add(1, 1, imm=4)
        b.add(2, 2, imm=4)
    b.mov(7, imm=OUTPUT_BASE)
    b.st(addr=7, value=3)
    b.exit()
    return b


def prefix_sum(length: int = 16) -> KernelBuilder:
    """Inclusive prefix sum: ``out[i] = in[0] + ... + in[i]``."""
    _check_length(length)
    b = KernelBuilder("prefix_sum")
    b.mov(1, imm=INPUT_BASE)
    b.mov(2, imm=OUTPUT_BASE)
    b.mov(3, imm=0)  # running sum
    for _ in range(length):
        b.ld(4, addr=1)
        b.add(3, 3, 4)
        b.st(addr=2, value=3)
        b.add(1, 1, imm=4)
        b.add(2, 2, imm=4)
    b.exit()
    return b


#: Name -> factory(length) for enumeration in tests and examples.
LIBRARY: Dict[str, Callable[..., KernelBuilder]] = {
    "vector_add": vector_add,
    "reduction_sum": reduction_sum,
    "saxpy": saxpy,
    "stencil3": stencil3,
    "dot_product": dot_product,
    "prefix_sum": prefix_sum,
}
