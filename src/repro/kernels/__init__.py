"""Kernel substrate: control-flow graphs, warp traces, and workloads.

The paper runs CUDA binaries from Rodinia, Parboil, ISPASS, the CUDA
SDK, and Tango under GPGPU-Sim.  We have neither the binaries nor a
CUDA toolchain, so this package synthesizes kernels whose register
reuse, operand mix, and memory behaviour are calibrated per benchmark to
the statistics the paper reports (its Figures 3, 4, 8 and 9).

A kernel is a :class:`~repro.kernels.cfg.KernelCFG` of basic blocks; a
*trace* is the dynamic per-warp instruction stream after control flow is
resolved, which is what the analysis passes and the timing model consume.
"""

from .cfg import BasicBlock, KernelCFG
from .serialize import (
    load_result,
    load_trace,
    result_from_dict,
    result_to_dict,
    save_result,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from .snippets import btree_snippet
from .suites import (
    BENCHMARKS,
    BenchmarkProfile,
    benchmark_names,
    build_benchmark_trace,
    get_profile,
)
from .synthetic import IdiomWeights, SyntheticKernelSpec, generate_kernel
from .trace import KernelTrace, RegisterAccess, WarpTrace, iter_accesses

__all__ = [
    "load_result",
    "load_trace",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "BasicBlock",
    "KernelCFG",
    "WarpTrace",
    "KernelTrace",
    "RegisterAccess",
    "iter_accesses",
    "btree_snippet",
    "SyntheticKernelSpec",
    "IdiomWeights",
    "generate_kernel",
    "BenchmarkProfile",
    "BENCHMARKS",
    "benchmark_names",
    "get_profile",
    "build_benchmark_trace",
]
