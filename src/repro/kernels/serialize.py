"""Trace and kernel serialization.

Traces are the interchange format of this library — the analyses, the
timing model, and the SIMT layer all consume them — so they can be
saved and reloaded: exact reproduction of a run without regenerating
workloads, sharing of inputs between machines, and regression pinning
of interesting traces.

The format is plain JSON: one object per instruction, ``uid``-preserving
within a file (shared static instructions across loop iterations stay
shared after a round trip, which the compiler-hint machinery relies on).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Union

from ..errors import KernelError
from ..isa import Instruction, WritebackHint
from ..isa.opcodes import opcode_by_name
from ..isa.registers import Predicate, Register
from ..stats.counters import Counters
from .trace import KernelTrace, WarpTrace

if TYPE_CHECKING:  # avoid the kernels -> gpu import cycle at runtime
    from ..gpu.sm import SimulationResult

#: Format version written into every file.
FORMAT_VERSION = 1

#: Format version of serialized simulation results.
RESULT_FORMAT_VERSION = 1


def _instruction_to_dict(inst: Instruction) -> Dict:
    data: Dict = {"op": inst.opcode.name}
    if inst.dest is not None:
        data["dest"] = inst.dest.id
    if inst.sources:
        data["src"] = [src.id for src in inst.sources]
    if inst.immediate is not None:
        data["imm"] = inst.immediate
    if inst.predicate is not None:
        data["guard"] = [inst.predicate.id, inst.predicate.negated]
    if inst.pred_dest is not None:
        data["pdest"] = inst.pred_dest.id
    if inst.hint is not WritebackHint.BOTH:
        data["hint"] = inst.hint.name
    return data


def _instruction_from_dict(data: Dict) -> Instruction:
    try:
        opcode = opcode_by_name(data["op"])
    except KeyError:
        raise KernelError("instruction record missing 'op'") from None
    guard = None
    if "guard" in data:
        pred_id, negated = data["guard"]
        guard = Predicate(pred_id, negated=bool(negated))
    hint = WritebackHint[data["hint"]] if "hint" in data else WritebackHint.BOTH
    return Instruction(
        opcode=opcode,
        dest=Register(data["dest"]) if "dest" in data else None,
        sources=tuple(Register(s) for s in data.get("src", ())),
        immediate=data.get("imm"),
        predicate=guard,
        pred_dest=Predicate(data["pdest"]) if "pdest" in data else None,
        hint=hint,
    )


#: Public names for the per-instruction record codec: the external
#: trace-case format (:mod:`repro.kernels.external`) shares it, so one
#: instruction encodes identically in both formats.
instruction_to_dict = _instruction_to_dict
instruction_from_dict = _instruction_from_dict


def trace_to_dict(trace: KernelTrace) -> Dict:
    """Serialize a kernel trace to a JSON-compatible dict.

    Instructions shared between dynamic positions (loop bodies) are
    stored once in an instruction pool and referenced by index.
    """
    pool: List[Dict] = []
    pool_index: Dict[int, int] = {}
    warps = []
    for warp in trace:
        indices = []
        for inst in warp:
            if inst.uid not in pool_index:
                pool_index[inst.uid] = len(pool)
                pool.append(_instruction_to_dict(inst))
            indices.append(pool_index[inst.uid])
        warps.append({"warp_id": warp.warp_id, "instructions": indices})
    return {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "pool": pool,
        "warps": warps,
    }


def trace_from_dict(data: Dict) -> KernelTrace:
    """Rebuild a kernel trace from :func:`trace_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise KernelError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        pool = [_instruction_from_dict(item) for item in data["pool"]]
        warps = [
            WarpTrace(
                warp_id=entry["warp_id"],
                instructions=[pool[index] for index in entry["instructions"]],
            )
            for entry in data["warps"]
        ]
        return KernelTrace(name=data["name"], warps=warps)
    except (KeyError, IndexError, TypeError) as error:
        raise KernelError(f"malformed trace record: {error}") from None


def save_trace(trace: KernelTrace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Read a trace written by :func:`save_trace`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise KernelError(f"not a trace file: {error}") from None
    return trace_from_dict(data)


# ---------------------------------------------------------------------------
# SimulationResult round-trip (the run-cache payload format)
# ---------------------------------------------------------------------------

def result_to_dict(result: "SimulationResult") -> Dict:
    """Serialize a simulation result to a JSON-compatible dict.

    The register image's ``(warp, register)`` tuple keys and the memory
    image's integer keys are flattened to sorted triple/pair lists so
    the encoding is canonical: equal results serialize to equal JSON.
    """
    return {
        "version": RESULT_FORMAT_VERSION,
        "counters": result.counters.as_dict(),
        "registers": [
            [warp_id, register_id, value]
            for (warp_id, register_id), value
            in sorted(result.register_image.items())
        ],
        "memory": [
            [address, value]
            for address, value in sorted(result.memory_image.items())
        ],
    }


def result_from_dict(data: Dict) -> "SimulationResult":
    """Rebuild a simulation result from :func:`result_to_dict` output."""
    from ..gpu.sm import SimulationResult

    version = data.get("version")
    if version != RESULT_FORMAT_VERSION:
        raise KernelError(
            f"unsupported result format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    try:
        counters = Counters(**data["counters"])
        register_image = {
            (int(warp_id), int(register_id)): int(value)
            for warp_id, register_id, value in data["registers"]
        }
        memory_image = {
            int(address): int(value) for address, value in data["memory"]
        }
    except (KeyError, TypeError, ValueError) as error:
        raise KernelError(f"malformed result record: {error}") from None
    return SimulationResult(
        counters=counters,
        register_image=register_image,
        memory_image=memory_image,
    )


def save_result(result: "SimulationResult", path: Union[str, Path]) -> None:
    """Write a simulation result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path: Union[str, Path]) -> "SimulationResult":
    """Read a result written by :func:`save_result`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise KernelError(f"not a result file: {error}") from None
    return result_from_dict(data)
