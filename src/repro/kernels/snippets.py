"""Named code snippets used by the paper's worked examples.

:func:`btree_snippet` reproduces the 13-instruction BTREE excerpt of the
paper's Figure 6, which drives the Table I writeback accounting and the
SS IV-B discussion of the three writeback destinations.
"""

from __future__ import annotations

from typing import List

from ..isa import Instruction, parse_program

#: Figure 6 of the paper, transcribed in our assembly syntax.  Line
#: numbers in the paper (2..14) correspond to indices 0..12 here.
BTREE_SNIPPET_ASM = """
// write to $r3, immediate use in the final set.ne
ld.global.u32 $r3, [$r8];
mov.u32 $r2, 0x00000ff4;
mul.wide.u16 $r1, $r0.lo, $r2.hi;
mad.wide.u16 $r1, $r0.hi, $r2.lo, $r1;
shl.u32 $r1, $r1, 0x00000010;
mad.wide.u16 $r0, $r0.lo, $r2.lo, $r1;
add.half.u32 $r0, s[0x0018], $r0;
add.half.u32 $r0, $r9, $r0;
add.u32 $r1, $r0, 0x000007f8;
ld.global.u32 $r2, [$r1];
shl.u32 $r2, $r2, 0x00000100;
add.u32 $r4, $r2, 0x0000008f;
set.ne.s32.s32 $p0/$o127, $r3, $r1;
"""


def btree_snippet() -> List[Instruction]:
    """The Figure 6 BTREE snippet as parsed instructions."""
    return parse_program(BTREE_SNIPPET_ASM)
