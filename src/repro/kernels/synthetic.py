"""Synthetic kernel generation with controllable register locality.

Real GPU kernels are built from a handful of recurring code idioms —
address-arithmetic chains feeding a load, accumulation chains, loads
whose value is consumed a few instructions later, stores of freshly
computed values, and occasional reads of long-lived values (loop
bounds, base pointers).  The generator emits a weighted mix of exactly
these idioms, so register reuse-distance statistics emerge from code
*shape* rather than from sampling an arbitrary distribution.  Each
benchmark profile (see :mod:`repro.kernels.suites`) picks weights that
reproduce its column of the paper's Figure 3 / Figure 8 statistics.

Terminology used throughout:

* a *fresh* register is one drawn from the kernel's pool, round-robin,
  so it was last touched a long time ago (a distant access);
* a *recent* register is one accessed within the last few instructions
  (a near access that BOW can bypass).
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import KernelError
from ..isa import Instruction, Register, opcode_by_name
from .cfg import KernelCFG
from .trace import KernelTrace, WarpTrace

_ALU_2SRC = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr", "min", "max")
_ALU_3SRC = ("mad", "fma", "sel")
_ALU_1SRC = ("mov",)
_SFU_OPS = ("rcp", "sqrt", "sin", "exp")


@dataclass(frozen=True)
class IdiomWeights:
    """Relative frequencies of the code idioms the generator emits.

    The defaults give a middle-of-the-road compute kernel; benchmark
    profiles override them.  Weights need not sum to one.

    Attributes:
        accumulate_chain: runs of ALU instructions repeatedly updating an
            accumulator (dense read+write locality; the Fig. 6 pattern).
        address_load: address arithmetic immediately feeding a load
            (read locality, write consolidation on the address register).
        load_use: a load whose value is consumed 1-2 instructions later.
        compute_mix: independent ALU ops on recent values (read locality
            without write consolidation).
        far_read: ALU ops reading long-lived registers (no locality).
        store: store of a recently produced value.
        sfu: special-function instruction on a recent value.
        three_src: 3-source ALU ops (mad/fma/sel) — drives Fig. 8's
            OCU-occupancy-3 share.
    """

    accumulate_chain: float = 3.0
    address_load: float = 2.0
    load_use: float = 2.0
    compute_mix: float = 3.0
    far_read: float = 2.0
    store: float = 1.0
    sfu: float = 0.3
    three_src: float = 0.5

    def as_dict(self) -> Dict[str, float]:
        return {
            "accumulate_chain": self.accumulate_chain,
            "address_load": self.address_load,
            "load_use": self.load_use,
            "compute_mix": self.compute_mix,
            "far_read": self.far_read,
            "store": self.store,
            "sfu": self.sfu,
            "three_src": self.three_src,
        }


@dataclass(frozen=True)
class SyntheticKernelSpec:
    """Everything needed to generate one synthetic kernel.

    Attributes:
        name: kernel name (usually the benchmark name).
        num_registers: architectural registers the kernel cycles through;
            larger pools mean longer reuse distances for *fresh* picks.
        body_instructions: approximate instructions per loop body.
        loop_iterations: expected loop trip count per warp.
        num_warps: warps in the launch.
        weights: idiom mix.
        chain_length: mean length of accumulation chains.
        branch_every: emit an (unconditional-in-trace) branch roughly
            every N body instructions, modelling basic-block boundaries.
        max_source_operands: cap on register sources (BFS/BTREE/LPS have
            no 3-source instructions — paper Fig. 8).
        locality: fraction of *recent* register picks that stay recent;
            the rest are redirected to long-lived registers.  This is the
            calibration knob that matches each benchmark's Figure 3
            column: 1.0 keeps the idioms' natural (high) locality, lower
            values dilute it.
        seed: base RNG seed; warp ``w`` uses ``seed + w``.
    """

    name: str
    num_registers: int = 24
    body_instructions: int = 60
    loop_iterations: int = 20
    num_warps: int = 8
    weights: IdiomWeights = field(default_factory=IdiomWeights)
    chain_length: int = 3
    branch_every: int = 18
    max_source_operands: int = 3
    locality: float = 1.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_registers < 6:
            raise KernelError("need at least 6 registers to form idioms")
        if self.body_instructions < 4:
            raise KernelError("body_instructions must be >= 4")
        if self.num_warps < 1:
            raise KernelError("num_warps must be >= 1")
        if not 1 <= self.max_source_operands <= 3:
            raise KernelError("max_source_operands must be 1..3")
        if not 0.0 <= self.locality <= 1.0:
            raise KernelError("locality must be in [0, 1]")

    def scaled(self, factor: float) -> "SyntheticKernelSpec":
        """A spec with the dynamic trace length scaled by ``factor``."""
        return replace(
            self,
            loop_iterations=max(1, round(self.loop_iterations * factor)),
        )


class _RegisterPool:
    """Tracks recent register accesses and hands out fresh registers.

    ``recent(k)`` returns a register accessed within the last few
    instructions; ``fresh()`` cycles round-robin through the pool so the
    returned register was last touched ~``num_registers`` accesses ago.
    """

    def __init__(self, num_registers: int, rng: random.Random):
        self._rng = rng
        self._ids = list(range(num_registers))
        self._cursor = 0
        self._recent: Deque[int] = deque(maxlen=8)
        # Destinations written but not yet read, oldest first: real code
        # eventually consumes most values it computes, so far-readers
        # drain this queue rather than leaving dead writes behind.
        self._unread: "OrderedDict[int, None]" = OrderedDict()
        # Seed recency so the first idioms have something to read.
        for reg_id in self._ids[: 4]:
            self._recent.append(reg_id)

    def fresh(self) -> Register:
        reg_id = self._ids[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._ids)
        return Register(reg_id)

    def recent(self, horizon: int = 4) -> Register:
        candidates = list(self._recent)[-horizon:]
        return Register(self._rng.choice(candidates))

    def stale(self) -> Register:
        """The oldest value written but never read (else a fresh pick)."""
        for reg_id in self._unread:
            if reg_id not in list(self._recent)[-4:]:
                del self._unread[reg_id]
                return Register(reg_id)
        return self.fresh()

    def touch_read(self, reg_id: int) -> None:
        self._recent.append(reg_id)
        self._unread.pop(reg_id, None)

    def touch_write(self, reg_id: int) -> None:
        self._recent.append(reg_id)
        self._unread[reg_id] = None
        self._unread.move_to_end(reg_id)


class _KernelBuilder:
    """Emits idioms into an instruction list."""

    def __init__(self, spec: SyntheticKernelSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.pool = _RegisterPool(spec.num_registers, rng)
        self.instructions: List[Instruction] = []

    # -- emission helpers ------------------------------------------------

    def _emit(self, opcode_name: str, dest: Optional[Register],
              sources: Sequence[Register], immediate: Optional[int] = None) -> None:
        opcode = opcode_by_name(opcode_name)
        sources = tuple(sources[: opcode.num_sources])
        self.instructions.append(
            Instruction(opcode=opcode, dest=dest, sources=sources,
                        immediate=immediate)
        )
        for src in sources:
            self.pool.touch_read(src.id)
        if dest is not None:
            self.pool.touch_write(dest.id)

    def _recent(self, horizon: int = 4) -> Register:
        """A near register, diluted by the profile's locality knob."""
        if self.rng.random() < self.spec.locality:
            return self.pool.recent(horizon)
        return self.pool.fresh()

    def _alu_op(self, num_sources: int) -> str:
        num_sources = min(num_sources, self.spec.max_source_operands)
        if num_sources >= 3:
            return self.rng.choice(_ALU_3SRC)
        if num_sources == 2:
            return self.rng.choice(_ALU_2SRC)
        return _ALU_1SRC[0]

    # -- idioms ------------------------------------------------------------

    def accumulate_chain(self) -> None:
        """mov/mul/mad-style chain repeatedly updating one register."""
        acc = self.pool.fresh()
        length = max(2, round(self.rng.gauss(self.spec.chain_length, 0.7)))
        self._emit("mov", acc, [self._recent()],
                   immediate=self.rng.getrandbits(16))
        for _ in range(length - 1):
            other = self._recent() if self.rng.random() < 0.7 else self.pool.fresh()
            if (self.spec.max_source_operands >= 3
                    and self.rng.random() < self._three_src_probability()):
                self._emit(self.rng.choice(_ALU_3SRC), acc, [acc, other, acc])
            else:
                self._emit(self._alu_op(2), acc, [acc, other])

    def address_load(self) -> None:
        """Address arithmetic feeding a load (Fig. 6 lines 10-11)."""
        addr = self.pool.fresh()
        base = self._recent() if self.rng.random() < 0.5 else self.pool.fresh()
        self._emit("add", addr, [base, self._recent()],
                   immediate=self.rng.getrandbits(12))
        value = self.pool.fresh()
        space = "global" if self.rng.random() < 0.8 else "shared"
        self._emit(f"ld.{space}", value, [addr])
        if self.rng.random() < 0.6:
            self._emit(self._alu_op(2), value, [value, self._recent()])

    def load_use(self) -> None:
        """Load whose value is consumed shortly after."""
        addr = self._recent() if self.rng.random() < 0.5 else self.pool.fresh()
        value = self.pool.fresh()
        self._emit("ld.global", value, [addr])
        if self.rng.random() < 0.5:
            self._emit(self._alu_op(2), self.pool.fresh(),
                       [self._recent(), self._recent()])
        self._emit(self._alu_op(2), self.pool.fresh(), [value, self._recent()])

    def compute_mix(self) -> None:
        """Independent ALU work on recent values (read locality only)."""
        for _ in range(self.rng.randint(1, 3)):
            num_src = 3 if (self.spec.max_source_operands >= 3 and
                            self.rng.random() < self._three_src_probability()) else 2
            sources = [self._recent() for _ in range(num_src)]
            self._emit(self._alu_op(num_src), self.pool.fresh(), sources)

    def far_read(self) -> None:
        """Work on long-lived values: no bypassable locality."""
        sources = [self.pool.stale() for _ in range(2)]
        self._emit(self._alu_op(2), self.pool.fresh(), sources,
                   immediate=self.rng.getrandbits(16))

    def store(self) -> None:
        """Store a recently produced value to memory."""
        addr = self.pool.fresh()
        self._emit("add", addr, [self._recent(), self.pool.fresh()])
        space = "global" if self.rng.random() < 0.8 else "shared"
        self._emit(f"st.{space}", None, [addr, self._recent()])

    def sfu(self) -> None:
        self._emit(self.rng.choice(_SFU_OPS), self.pool.fresh(),
                   [self._recent()])

    def three_src(self) -> None:
        """A guaranteed 3-source instruction (when the ISA profile allows)."""
        if self.spec.max_source_operands < 3:
            self.compute_mix()
            return
        sources = [self._recent(), self._recent(), self.pool.fresh()]
        self._emit(self.rng.choice(_ALU_3SRC), self.pool.fresh(), sources)

    def _three_src_probability(self) -> float:
        weights = self.spec.weights
        total = sum(weights.as_dict().values())
        return min(0.4, weights.three_src / total * 2.0)

    # -- body generation ---------------------------------------------------

    _IDIOM_ORDER = (
        "accumulate_chain",
        "address_load",
        "load_use",
        "compute_mix",
        "far_read",
        "store",
        "sfu",
        "three_src",
    )

    def build_body(self) -> List[Instruction]:
        """One loop body of roughly ``spec.body_instructions`` instructions."""
        self.instructions = []
        weight_map = self.spec.weights.as_dict()
        names = [n for n in self._IDIOM_ORDER if weight_map[n] > 0]
        weights = [weight_map[n] for n in names]
        since_branch = 0
        while len(self.instructions) < self.spec.body_instructions:
            idiom = self.rng.choices(names, weights=weights, k=1)[0]
            before = len(self.instructions)
            getattr(self, idiom)()
            since_branch += len(self.instructions) - before
            if since_branch >= self.spec.branch_every:
                self._emit("bra", None, [], immediate=0)
                since_branch = 0
        return self.instructions


def generate_kernel(spec: SyntheticKernelSpec) -> KernelCFG:
    """Build the kernel CFG for ``spec`` (deterministic in ``spec.seed``)."""
    rng = random.Random(spec.seed)
    builder = _KernelBuilder(spec, rng)
    body = builder.build_body()

    preamble_builder = _KernelBuilder(spec, random.Random(spec.seed ^ 0x5EED))
    preamble_builder.far_read()
    preamble_builder.compute_mix()
    preamble = preamble_builder.instructions

    epilogue = [
        Instruction(opcode=opcode_by_name("st.global"), dest=None,
                    sources=(Register(0), Register(1))),
        Instruction(opcode=opcode_by_name("exit"), dest=None, sources=()),
    ]

    from .cfg import loop_kernel  # local import avoids a cycle at module load

    return loop_kernel(spec.name, preamble, body, epilogue, spec.loop_iterations)


def generate_trace(spec: SyntheticKernelSpec,
                   max_instructions_per_warp: int = 20_000) -> KernelTrace:
    """Generate the kernel and expand one trace per warp.

    Warp ``w`` expands with seed ``spec.seed + w`` so warps follow
    slightly different paths (different loop trip counts), as they do in
    real launches.
    """
    cfg = generate_kernel(spec)
    warps = []
    for warp_id in range(spec.num_warps):
        rng = random.Random(spec.seed + warp_id + 1)
        instructions = cfg.expand_trace(rng, max_instructions_per_warp)
        warps.append(WarpTrace(warp_id=warp_id, instructions=instructions))
    return KernelTrace(name=spec.name, warps=warps)


def generate_compiled_trace(
    spec: SyntheticKernelSpec,
    window_size: int,
    max_instructions_per_warp: int = 20_000,
) -> KernelTrace:
    """Generate, run the BOW-WR compiler, then expand per-warp traces.

    The compiler pass rewrites the kernel's instructions with their
    writeback-hint bits before control flow is resolved, so every
    dynamic occurrence of a static instruction carries the same hint —
    exactly what hardware decoding the 2 hint bits would see.
    """
    from ..compiler.pipeline import compile_kernel

    cfg = generate_kernel(spec)
    compile_kernel(cfg, window_size)
    warps = []
    for warp_id in range(spec.num_warps):
        rng = random.Random(spec.seed + warp_id + 1)
        instructions = cfg.expand_trace(rng, max_instructions_per_warp)
        warps.append(WarpTrace(warp_id=warp_id, instructions=instructions))
    return KernelTrace(name=spec.name, warps=warps)
