"""Dynamic per-warp instruction traces.

A :class:`WarpTrace` is the resolved instruction stream one warp
executes; a :class:`KernelTrace` bundles the traces of every warp of a
kernel launch.  The bypass analyses (Figure 3, 7, 8, Table I) and the
timing simulator both consume traces, so their semantics agree by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..errors import KernelError
from ..isa import Instruction


@dataclass(frozen=True)
class RegisterAccess:
    """One register access inside a trace.

    Attributes:
        index: dynamic instruction index within the warp trace.
        register_id: architectural register id.
        is_write: ``True`` for destination writes, ``False`` for source reads.
        operand_slot: source slot (0..2) for reads; -1 for writes.
    """

    index: int
    register_id: int
    is_write: bool
    operand_slot: int = -1


@dataclass
class WarpTrace:
    """The dynamic instruction stream of one warp."""

    warp_id: int
    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.warp_id < 0:
            raise KernelError(f"warp_id must be >= 0, got {self.warp_id}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def num_reads(self) -> int:
        """Total register source operands in the trace."""
        return sum(len(inst.sources) for inst in self.instructions)

    @property
    def num_writes(self) -> int:
        """Total register destination writes in the trace."""
        return sum(1 for inst in self.instructions if inst.dest is not None)

    @property
    def num_memory(self) -> int:
        return sum(1 for inst in self.instructions if inst.is_memory)

    def registers_used(self) -> Tuple[int, ...]:
        """Sorted distinct architectural registers the trace touches."""
        regs = set()
        for inst in self.instructions:
            for src in inst.sources:
                regs.add(src.id)
            if inst.dest is not None:
                regs.add(inst.dest.id)
        return tuple(sorted(regs))


def iter_accesses(trace: Sequence[Instruction]) -> Iterator[RegisterAccess]:
    """Yield every register access of a trace in program order.

    Within one instruction, sources are yielded before the destination,
    matching the pipeline (operands are read before the result exists).
    """
    for index, inst in enumerate(trace):
        for slot, src in enumerate(inst.sources):
            yield RegisterAccess(index, src.id, is_write=False, operand_slot=slot)
        if inst.dest is not None:
            yield RegisterAccess(index, inst.dest.id, is_write=True)


@dataclass
class KernelTrace:
    """Traces of every warp of one kernel launch."""

    name: str
    warps: List[WarpTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for warp in self.warps:
            if warp.warp_id in seen:
                raise KernelError(f"duplicate warp id {warp.warp_id}")
            seen.add(warp.warp_id)

    def __len__(self) -> int:
        return len(self.warps)

    def __iter__(self) -> Iterator[WarpTrace]:
        return iter(self.warps)

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def total_instructions(self) -> int:
        return sum(len(warp) for warp in self.warps)

    @property
    def total_reads(self) -> int:
        return sum(warp.num_reads for warp in self.warps)

    @property
    def total_writes(self) -> int:
        return sum(warp.num_writes for warp in self.warps)

    def memory_fraction(self) -> float:
        """Fraction of dynamic instructions that are loads/stores."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        return sum(warp.num_memory for warp in self.warps) / total
