"""A fluent builder for constructing kernels programmatically.

The assembler (:mod:`repro.isa.parser`) suits pasted listings; this
builder suits generated or parameterized kernels::

    from repro.kernels.builder import KernelBuilder

    b = KernelBuilder("saxpy")
    b.mov(1, imm=0)                    # acc = 0
    b.jump("body")

    b.block("body")
    b.ld(3, addr=2)                    # x = [r2]
    b.mad(1, 3, 4, 1)                  # acc = x*a + acc
    b.add(2, 2, imm=4)                 # advance pointer
    b.branch(taken="body", fallthrough="done", probability=0.9)

    b.block("done")
    b.st(addr=5, value=1)
    b.exit()
    kernel = b.build()

Registers are plain ints; blocks are declared on first use and
validated at :meth:`KernelBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import KernelError
from ..isa import Instruction
from ..isa.opcodes import opcode_by_name
from ..isa.registers import SINK_REGISTER, Predicate, Register
from .cfg import BasicBlock, Edge, KernelCFG
from .trace import KernelTrace, WarpTrace

RegisterLike = Union[int, Register]


def _reg(value: RegisterLike) -> Register:
    if isinstance(value, Register):
        return value
    if isinstance(value, int):
        return Register(value)
    raise KernelError(f"not a register: {value!r}")


class KernelBuilder:
    """Accumulates instructions into blocks and edges into a CFG."""

    def __init__(self, name: str, entry: str = "entry"):
        if not name:
            raise KernelError("kernel needs a name")
        self.name = name
        self.entry = entry
        self._blocks: "Dict[str, List[Instruction]]" = {entry: []}
        self._edges: Dict[str, List[Edge]] = {}
        self._current = entry
        self._sealed: set = set()

    # -- structure -------------------------------------------------------

    def block(self, label: str) -> "KernelBuilder":
        """Start (or resume) the block named ``label``."""
        if not label:
            raise KernelError("block needs a non-empty label")
        if label in self._sealed:
            raise KernelError(f"block {label!r} already has its terminator")
        self._blocks.setdefault(label, [])
        self._current = label
        return self

    def jump(self, target: str) -> "KernelBuilder":
        """End the current block with an unconditional edge."""
        self._seal([Edge(target)])
        return self

    def branch(self, taken: str, fallthrough: str,
               probability: float = 0.5) -> "KernelBuilder":
        """End the current block with a two-way branch.

        ``probability`` is the taken probability used by trace expansion
        and lane-level divergence.
        """
        self.inst("bra", imm=0)
        self._seal([Edge(taken, probability),
                    Edge(fallthrough, 1.0 - probability)])
        return self

    def exit(self) -> "KernelBuilder":
        """End the current block as a kernel exit."""
        self.inst("exit")
        self._seal([])
        return self

    def _seal(self, edges: List[Edge]) -> None:
        if self._current in self._sealed:
            raise KernelError(
                f"block {self._current!r} already has its terminator"
            )
        self._edges[self._current] = edges
        self._sealed.add(self._current)

    # -- instructions -------------------------------------------------------

    def inst(self, opcode_name: str, dest: Optional[RegisterLike] = None,
             srcs: Sequence[RegisterLike] = (), imm: Optional[int] = None,
             guard: Optional[int] = None, guard_negated: bool = False,
             pred_dest: Optional[int] = None) -> "KernelBuilder":
        """Append one instruction to the current block (generic form)."""
        if self._current in self._sealed and opcode_name not in ("bra",
                                                                 "exit"):
            raise KernelError(
                f"block {self._current!r} is sealed; start a new block"
            )
        opcode = opcode_by_name(opcode_name)
        dest_reg: Optional[Register]
        if pred_dest is not None:
            dest_reg = SINK_REGISTER
        elif dest is not None:
            dest_reg = _reg(dest)
        else:
            dest_reg = None
        predicate = (Predicate(guard, negated=guard_negated)
                     if guard is not None else None)
        instruction = Instruction(
            opcode=opcode,
            dest=dest_reg,
            sources=tuple(_reg(s) for s in srcs),
            immediate=imm,
            predicate=predicate,
            pred_dest=Predicate(pred_dest) if pred_dest is not None else None,
        )
        self._blocks[self._current].append(instruction)
        return self

    # -- sugar ----------------------------------------------------------------

    def mov(self, dest: RegisterLike, src: Optional[RegisterLike] = None,
            imm: Optional[int] = None, **kw) -> "KernelBuilder":
        srcs = (src,) if src is not None else ()
        if src is None and imm is None:
            raise KernelError("mov needs a source register or an immediate")
        return self.inst("mov", dest, srcs, imm=imm, **kw)

    def _binary(self, name, dest, a, b, imm, **kw):
        srcs = [a] if b is None else [a, b]
        if b is None and imm is None:
            raise KernelError(f"{name} needs two sources or an immediate")
        return self.inst(name, dest, srcs, imm=imm, **kw)

    def add(self, dest, a, b=None, imm=None, **kw):
        return self._binary("add", dest, a, b, imm, **kw)

    def sub(self, dest, a, b=None, imm=None, **kw):
        return self._binary("sub", dest, a, b, imm, **kw)

    def mul(self, dest, a, b=None, imm=None, **kw):
        return self._binary("mul", dest, a, b, imm, **kw)

    def shl(self, dest, a, b=None, imm=None, **kw):
        return self._binary("shl", dest, a, b, imm, **kw)

    def mad(self, dest, a, b, c, **kw):
        return self.inst("mad", dest, (a, b, c), **kw)

    def ld(self, dest, addr, space: str = "global", **kw):
        return self.inst(f"ld.{space}", dest, (addr,), **kw)

    def st(self, addr, value, space: str = "global", **kw):
        return self.inst(f"st.{space}", None, (addr, value), **kw)

    def set_ne(self, pred: int, a, b, **kw):
        return self.inst("set.ne", srcs=(a, b), pred_dest=pred, **kw)

    def set_lt(self, pred: int, a, b, **kw):
        return self.inst("set.lt", srcs=(a, b), pred_dest=pred, **kw)

    def nop(self) -> "KernelBuilder":
        return self.inst("nop")

    # -- products -------------------------------------------------------------

    def build(self) -> KernelCFG:
        """Validate and return the kernel CFG.

        Unsealed non-empty blocks become exits (a convenience for
        straight-line kernels).
        """
        blocks = []
        for label, instructions in self._blocks.items():
            edges = self._edges.get(label, [])
            blocks.append(BasicBlock(label, list(instructions), list(edges)))
        return KernelCFG(self.name, blocks, entry=self.entry)

    def trace(self, num_warps: int = 1, seed: int = 0,
              max_instructions_per_warp: int = 100_000) -> KernelTrace:
        """Build and expand into per-warp traces in one call."""
        import random

        cfg = self.build()
        warps = [
            WarpTrace(
                warp_id=w,
                instructions=cfg.expand_trace(
                    random.Random(seed + w + 1), max_instructions_per_warp
                ),
            )
            for w in range(num_warps)
        ]
        return KernelTrace(name=self.name, warps=warps)
