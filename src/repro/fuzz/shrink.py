"""Greedy trace minimization for differential failures.

A raw fuzz failure is hundreds of dynamic instructions across several
warps; almost none of them matter.  The shrinker reduces a failing
:class:`~repro.kernels.external.TraceCase` while a caller-supplied
``reproduces`` predicate keeps returning ``True``, using the classic
delta-debugging ladder:

1. drop whole warps (the coarsest unit);
2. drop instruction chunks per warp, halving the chunk size from half
   the warp down to single instructions (so a pass over a warp costs
   ``O(n log n)`` predicate calls, not ``O(n^2)``);
3. repeat until a full sweep removes nothing or the attempt budget is
   exhausted.

Removing instructions from a trace always yields a valid trace —
reads of never-written registers fall back to the deterministic
launch-time values in the engine *and* the reference, so a truncated
program is still a well-posed differential question.  Warp ids are
preserved (not renumbered): memory latency and initial register values
are keyed by global warp id, so renumbering would change behaviour and
lose the repro.

The shrinker is deliberately pure trace surgery: it never re-expands
the CFG, so a minimized case replays bit-identically forever from its
corpus file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List

from ..kernels.external import TraceCase
from ..kernels.trace import KernelTrace, WarpTrace

#: ``reproduces(case) -> bool`` — True while the failure still fires.
Predicate = Callable[[TraceCase], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run.

    Attributes:
        case: the minimized failing case.
        attempts: predicate evaluations performed.
        removed_warps / removed_instructions: how much was shaved off.
    """

    case: TraceCase
    attempts: int
    removed_warps: int
    removed_instructions: int


class _Budget:
    """Attempt counter shared by the shrink passes."""

    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit


def _with_warps(case: TraceCase, warps: List[WarpTrace]) -> TraceCase:
    trace = KernelTrace(name=case.trace.name, warps=warps)
    return replace(case, trace=trace)


def _try(case: TraceCase, reproduces: Predicate, budget: _Budget) -> bool:
    budget.spent += 1
    return reproduces(case)


def _drop_warps(case: TraceCase, reproduces: Predicate,
                budget: _Budget) -> TraceCase:
    changed = True
    while changed and not budget.exhausted:
        changed = False
        warps = case.trace.warps
        if len(warps) <= 1:
            break
        for index in range(len(warps)):
            if budget.exhausted:
                break
            candidate = _with_warps(
                case, warps[:index] + warps[index + 1:])
            if _try(candidate, reproduces, budget):
                case = candidate
                changed = True
                break  # restart: indices shifted
    return case


def _drop_chunks(case: TraceCase, reproduces: Predicate,
                 budget: _Budget) -> TraceCase:
    for position, warp in enumerate(case.trace.warps):
        size = max(1, len(warp.instructions) // 2)
        while size >= 1 and not budget.exhausted:
            start = 0
            while start < len(warp.instructions) and not budget.exhausted:
                instructions = (warp.instructions[:start]
                                + warp.instructions[start + size:])
                warps = list(case.trace.warps)
                warps[position] = WarpTrace(warp_id=warp.warp_id,
                                            instructions=instructions)
                candidate = _with_warps(case, warps)
                if _try(candidate, reproduces, budget):
                    case = candidate
                    warp = candidate.trace.warps[position]
                else:
                    start += size
            if size == 1:
                break
            size //= 2
    return case


def shrink_case(case: TraceCase, reproduces: Predicate,
                max_attempts: int = 500) -> ShrinkResult:
    """Minimize ``case`` while ``reproduces`` holds.

    ``case`` itself must reproduce (the caller established that); the
    result is the smallest case found within ``max_attempts``
    predicate evaluations — greedy, so a local minimum, which is what
    a human debugging the repro needs.
    """
    original_warps = case.trace.num_warps
    original_instructions = case.trace.total_instructions
    budget = _Budget(max_attempts)

    while not budget.exhausted:
        before = (case.trace.num_warps, case.trace.total_instructions)
        case = _drop_warps(case, reproduces, budget)
        case = _drop_chunks(case, reproduces, budget)
        after = (case.trace.num_warps, case.trace.total_instructions)
        if after == before:
            break  # fixpoint

    return ShrinkResult(
        case=case,
        attempts=budget.spent,
        removed_warps=original_warps - case.trace.num_warps,
        removed_instructions=(original_instructions
                              - case.trace.total_instructions),
    )
