"""Differential fuzzing of the simulator against its reference.

Three cooperating pieces:

* :mod:`repro.fuzz.generator` — seed-driven adversarial kernel
  generation through the :class:`~repro.kernels.builder.KernelBuilder`
  invariants (structured, reducible CFGs; operand-count and
  register-pressure extremes; divergence-heavy control flow);
* :mod:`repro.fuzz.differential` — the executor running every
  registered design (single-SM and device-scale) over each generated
  case and diffing images, counters, and commit streams against
  :func:`~repro.gpu.reference.execute_reference`;
* :mod:`repro.fuzz.shrink` — greedy delta-debugging of a failing case
  down to a minimal repro, written to the corpus in the JSONL
  trace-case format (:mod:`repro.kernels.external`).

The CLI surface is ``repro fuzz`` / ``repro trace-import``.
"""

from .differential import (
    FuzzFailure,
    FuzzReport,
    Mismatch,
    case_for,
    compare_case,
    run_fuzz,
)
from .generator import (
    DEFAULT_CONFIG,
    FuzzCase,
    FuzzConfig,
    generate_case,
    generate_cfg,
)
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "DEFAULT_CONFIG",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "Mismatch",
    "case_for",
    "compare_case",
    "generate_case",
    "generate_cfg",
    "run_fuzz",
    "ShrinkResult",
    "shrink_case",
]
