"""Seed-driven adversarial kernel generation.

The 15 calibrated synthetic benchmarks reproduce the paper's workload
statistics; this generator does the opposite job — it explores the
corners those profiles never reach.  From one integer seed it derives a
random-but-valid kernel: a *structured* (hence reducible) CFG built
through :class:`~repro.kernels.builder.KernelBuilder` out of nested
branch diamonds and probabilistic loops (zero-trip loops included),
filled with a hostile instruction mix — operand-count extremes
(``mad``/``fma``/``sel``), loads and stores across all three memory
spaces, predicated instructions, corner-value immediates, and register
pools from tiny (pathologically short reuse distances) to near the
architectural limit (no reuse at all).

Structured construction gives the three invariants the differential rig
relies on, by construction rather than by filtering:

* the built CFG always passes :meth:`KernelCFG.validate`;
* every block is sealed (exactly one terminator; no accidental exits);
* the entry reaches an exit, and every loop body contains at least one
  instruction (its terminating ``bra``), so trace expansion always
  makes progress and terminates within its cap.

The hypothesis property suite (``tests/kernels/test_cfg_properties.py``)
asserts exactly these invariants over a wide sample of seeds and
configurations.

Determinism: ``generate_case(seed, config)`` is a pure function of its
arguments.  Warp ``w`` expands control flow with ``random.Random(seed
+ w + 1)`` — the :meth:`KernelBuilder.trace` convention — so per-warp
divergence (different trip counts, different branch paths) arises
naturally from the shared CFG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import KernelError
from ..kernels.builder import KernelBuilder
from ..kernels.cfg import KernelCFG
from ..kernels.trace import KernelTrace, WarpTrace

#: 2-source ALU opcodes the generator draws from.
_ALU_2SRC = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr",
             "min", "max")
#: 3-source opcodes — the operand-count extreme (paper Fig. 8).
_ALU_3SRC = ("mad", "fma", "sel")
_SFU = ("rcp", "sqrt", "sin", "exp")
_SPACES = ("global", "shared", "local")
#: Corner-value immediates mixed with uniform draws.
_IMMEDIATES = (0, 1, 2, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xDEADBEEF)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing campaign (all draws derive from the seed).

    Attributes:
        max_depth: nesting depth of structured regions (branch inside
            loop inside branch ...).
        max_segments: constructs chained at each nesting level.
        max_block_instructions: straight-line instructions per segment.
        min_registers / max_registers: bounds of the per-case register
            pool; the pool size is the register-pressure knob (small
            pools force dense reuse, pools near the 255-register limit
            eliminate reuse entirely).  ``max_registers`` must stay
            below the sink register id (255).
        max_warps: warps per generated launch (at least 1).
        predication_probability: chance an instruction carries a
            ``@$pN`` guard (drives predicated-off divergence).
        three_src_probability: chance an ALU pick is 3-source.
        memory_probability: chance a pick is a load or store.
        sfu_probability: chance a pick is an SFU op.
        loop_probability: chance a nested construct is a loop rather
            than a branch diamond.
        max_trace_instructions: per-warp dynamic expansion cap.
        windows: instruction windows a case may draw.
    """

    max_depth: int = 3
    max_segments: int = 4
    max_block_instructions: int = 6
    min_registers: int = 4
    max_registers: int = 250
    max_warps: int = 6
    predication_probability: float = 0.15
    three_src_probability: float = 0.3
    memory_probability: float = 0.25
    sfu_probability: float = 0.08
    loop_probability: float = 0.4
    max_trace_instructions: int = 320
    windows: Tuple[int, ...] = (1, 2, 3, 6)

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise KernelError("max_depth must be >= 0")
        if self.max_segments < 1:
            raise KernelError("max_segments must be >= 1")
        if not 1 <= self.min_registers <= self.max_registers <= 254:
            raise KernelError(
                "register pool bounds must satisfy "
                "1 <= min_registers <= max_registers <= 254"
            )
        if self.max_warps < 1:
            raise KernelError("max_warps must be >= 1")
        if self.max_trace_instructions < 1:
            raise KernelError("max_trace_instructions must be >= 1")
        if not self.windows:
            raise KernelError("windows must not be empty")


#: The default campaign configuration (the CLI's).
DEFAULT_CONFIG = FuzzConfig()


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential test case.

    ``plain`` is the unhinted expansion (what non-hinted designs run
    and what the reference executes); ``hinted`` is the *same* dynamic
    stream expanded after the BOW-WR compiler annotated the CFG for
    ``window`` — hinted designs run that, exactly as the experiment
    harness hint-compiles their benchmark traces.
    """

    seed: int
    cfg: KernelCFG
    plain: KernelTrace
    hinted: KernelTrace
    window: int
    memory_seed: int
    num_warps: int

    def trace_for(self, hinted: bool) -> KernelTrace:
        return self.hinted if hinted else self.plain


class _Emitter:
    """Recursive structured-region emitter over a :class:`KernelBuilder`.

    The builder's current block is always *open* (unsealed) between
    calls; every construct seals the blocks it opens and leaves a fresh
    open block for what follows.
    """

    def __init__(self, builder: KernelBuilder, rng: random.Random,
                 config: FuzzConfig, num_registers: int):
        self.b = builder
        self.rng = rng
        self.config = config
        self.num_registers = num_registers
        self._label = 0

    def fresh_label(self) -> str:
        self._label += 1
        return f"b{self._label}"

    # -- instruction soup ------------------------------------------------

    def _register(self) -> int:
        return self.rng.randrange(self.num_registers)

    def _immediate(self) -> int:
        if self.rng.random() < 0.5:
            return self.rng.choice(_IMMEDIATES)
        return self.rng.getrandbits(32)

    def _guard_kwargs(self) -> dict:
        if self.rng.random() >= self.config.predication_probability:
            return {}
        return {"guard": self.rng.randrange(8),
                "guard_negated": self.rng.random() < 0.5}

    def emit_instruction(self) -> None:
        """Append one random instruction to the open block."""
        rng = self.rng
        config = self.config
        guard = self._guard_kwargs()
        roll = rng.random()
        if roll < config.memory_probability:
            space = rng.choice(_SPACES)
            if rng.random() < 0.5:
                self.b.ld(self._register(), addr=self._register(),
                          space=space, **guard)
            else:
                self.b.st(addr=self._register(), value=self._register(),
                          space=space, **guard)
            return
        roll -= config.memory_probability
        if roll < config.sfu_probability:
            self.b.inst(rng.choice(_SFU), self._register(),
                        (self._register(),), **guard)
            return
        if rng.random() < 0.12:
            # Predicate definitions: feed the guards above.
            op = rng.choice(("set.ne", "set.lt"))
            self.b.inst(op, srcs=(self._register(), self._register()),
                        pred_dest=rng.randrange(8), **guard)
            return
        if rng.random() < config.three_src_probability:
            self.b.inst(rng.choice(_ALU_3SRC), self._register(),
                        (self._register(), self._register(),
                         self._register()), **guard)
            return
        op = rng.choice(_ALU_2SRC)
        if rng.random() < 0.25:
            # Immediate form: one register source + an immediate.
            self.b.inst(op, self._register(), (self._register(),),
                        imm=self._immediate(), **guard)
        elif rng.random() < 0.1:
            self.b.mov(self._register(), imm=self._immediate(), **guard)
        else:
            self.b.inst(op, self._register(),
                        (self._register(), self._register()), **guard)

    def emit_straightline(self, minimum: int = 0) -> None:
        count = self.rng.randint(minimum,
                                 self.config.max_block_instructions)
        for _ in range(count):
            self.emit_instruction()

    # -- structured constructs -------------------------------------------

    def emit_region(self, depth: int) -> None:
        """Emit a sequence of constructs into the open block."""
        for _ in range(self.rng.randint(1, self.config.max_segments)):
            self.emit_straightline()
            if depth >= self.config.max_depth:
                continue
            roll = self.rng.random()
            if roll < 0.45:
                continue  # plain straight-line segment
            if self.rng.random() < self.config.loop_probability:
                self.emit_loop(depth)
            else:
                self.emit_diamond(depth)

    def emit_diamond(self, depth: int) -> None:
        """An if/else diamond: branch, two arms, join."""
        then_label = self.fresh_label()
        else_label = self.fresh_label()
        join_label = self.fresh_label()
        probability = round(self.rng.uniform(0.05, 0.95), 3)
        self.b.branch(taken=then_label, fallthrough=else_label,
                      probability=probability)
        self.b.block(then_label)
        self.emit_region(depth + 1)
        self.b.jump(join_label)
        self.b.block(else_label)
        self.emit_region(depth + 1)
        self.b.jump(join_label)
        self.b.block(join_label)

    def emit_loop(self, depth: int) -> None:
        """A probabilistic loop with the zero-trip shape.

        The head *tests first*: with probability ``1 - p`` the body is
        skipped entirely, so low ``p`` draws produce warps whose trip
        count is zero.  The head's terminating ``bra`` guarantees every
        traversal of the cycle emits at least one instruction, keeping
        trace expansion finite.
        """
        head_label = self.fresh_label()
        body_label = self.fresh_label()
        after_label = self.fresh_label()
        probability = round(self.rng.uniform(0.05, 0.85), 3)
        self.b.jump(head_label)
        self.b.block(head_label)
        self.emit_straightline()
        self.b.branch(taken=body_label, fallthrough=after_label,
                      probability=probability)
        self.b.block(body_label)
        self.emit_region(depth + 1)
        self.b.jump(head_label)
        self.b.block(after_label)


def generate_cfg(seed: int, config: FuzzConfig = DEFAULT_CONFIG,
                 name: Optional[str] = None,
                 num_registers: Optional[int] = None) -> KernelCFG:
    """Build one random structured kernel CFG from ``seed``.

    Deterministic in ``(seed, config)``; the returned CFG always
    validates, every block is sealed, and the entry reaches an exit.
    """
    rng = random.Random(seed)
    if num_registers is None:
        num_registers = _draw_num_registers(rng, config)
    builder = KernelBuilder(name or f"fuzz-{seed}")
    emitter = _Emitter(builder, rng, config, num_registers)
    emitter.emit_region(depth=0)
    # Make sure the kernel is never empty: at least one real
    # instruction precedes the exit terminator.
    emitter.emit_straightline(minimum=1)
    builder.exit()
    return builder.build()


def _draw_num_registers(rng: random.Random, config: FuzzConfig) -> int:
    """The case's register-pool size; occasionally extreme."""
    if rng.random() < 0.2:
        # Pressure extreme: reuse distances collapse (tiny pool) or
        # explode (pool near the architectural limit).
        return rng.choice((config.min_registers, config.max_registers))
    return rng.randint(config.min_registers, config.max_registers)


def expand_warps(cfg: KernelCFG, num_warps: int, seed: int,
                 max_instructions: int) -> List[WarpTrace]:
    """Per-warp dynamic expansion with the builder's rng convention."""
    return [
        WarpTrace(
            warp_id=warp_id,
            instructions=cfg.expand_trace(
                random.Random(seed + warp_id + 1), max_instructions
            ),
        )
        for warp_id in range(num_warps)
    ]


def generate_case(seed: int,
                  config: FuzzConfig = DEFAULT_CONFIG) -> FuzzCase:
    """One differential test case: CFG, plain + hinted traces, params."""
    rng = random.Random(seed)
    num_registers = _draw_num_registers(rng, config)
    num_warps = rng.randint(1, config.max_warps)
    window = rng.choice(config.windows)
    memory_seed = rng.randrange(1 << 16)
    name = f"fuzz-{seed}"

    cfg = generate_cfg(seed, config, name=name,
                       num_registers=num_registers)
    plain = KernelTrace(name=name, warps=expand_warps(
        cfg, num_warps, seed, config.max_trace_instructions))

    # The BOW-WR pipeline rewrites the CFG's instruction objects in
    # place (uid-preserving); the plain expansion above captured the
    # original objects, so it stays unhinted.  Re-expanding with the
    # same per-warp rngs resolves the identical control-flow path —
    # probabilities did not change — so plain and hinted are the same
    # dynamic stream, hint bits aside.
    from ..compiler.pipeline import compile_kernel

    compile_kernel(cfg, window)
    hinted = KernelTrace(name=name, warps=expand_warps(
        cfg, num_warps, seed, config.max_trace_instructions))

    return FuzzCase(
        seed=seed,
        cfg=cfg,
        plain=plain,
        hinted=hinted,
        window=window,
        memory_seed=memory_seed,
        num_warps=num_warps,
    )


def reaches_exit(cfg: KernelCFG) -> bool:
    """Whether some exit block is reachable from the entry (BFS)."""
    pending = [cfg.entry]
    seen = set()
    while pending:
        label = pending.pop()
        if label in seen:
            continue
        seen.add(label)
        block = cfg.blocks[label]
        if block.is_exit:
            return True
        pending.extend(edge.target for edge in block.edges)
    return False
