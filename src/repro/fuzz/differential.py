"""The differential executor: generated kernels vs the reference.

One generated case (:func:`~repro.fuzz.generator.generate_case`) runs
through every requested design — single-SM via
:func:`~repro.core.bow_sm.simulate_design` and, when asked, at device
scale via :func:`~repro.gpu.device.simulate_device` — and each run is
checked against :func:`~repro.gpu.reference.execute_reference` on the
same trace, using exactly the equivalence the differential-oracle
suite enforces:

* memory image identical;
* register image identical — relaxed for hinted designs, which may
  legitimately elide a register whose last write is predicated or
  classified ``OC_ONLY`` (dead beyond the window);
* the recorder's ``commit`` events, per warp and sorted to program
  order, exactly the reference's architectural commit stream;
* the ``instructions`` counter equal to the reference's dynamic
  instruction count.

On the first mismatch :func:`run_fuzz` stops, minimizes the failing
case with :func:`~repro.fuzz.shrink.shrink_case` (predicate: "this
design still mismatches on this case"), writes the minimized repro to
the corpus directory in the JSONL trace-case format, and reports it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.bow_sm import simulate_design
from ..core.designs import design_names, get_design, known_designs
from ..errors import SimulationError
from ..gpu.device import simulate_device
from ..gpu.reference import ReferenceResult, execute_reference
from ..isa import WritebackHint
from ..isa.registers import SINK_REGISTER
from ..kernels.external import TraceCase, save_case
from ..kernels.trace import KernelTrace
from ..stats.trace import TraceRecorder
from .generator import DEFAULT_CONFIG, FuzzCase, FuzzConfig, generate_case
from .shrink import ShrinkResult, shrink_case

#: Ring capacity for fuzz recorders — large enough that no generated
#: case (bounded by ``FuzzConfig.max_trace_instructions`` x warps)
#: ever drops a commit event.
RECORDER_CAPACITY = 1 << 18


@dataclass(frozen=True)
class Mismatch:
    """One observed divergence between a design run and the reference.

    ``kind`` is one of ``memory`` / ``registers`` / ``commits`` /
    ``instructions``; ``detail`` pinpoints the first difference.
    """

    design: str
    num_sms: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.design} (num_sms={self.num_sms}): "
                f"{self.kind}: {self.detail}")


def _last_writes(trace: KernelTrace) -> Dict[Tuple[int, int], object]:
    """The last static write of each (warp, register) in the trace."""
    last: Dict[Tuple[int, int], object] = {}
    for warp in trace:
        for inst in warp:
            if inst.dest is not None and inst.dest != SINK_REGISTER:
                last[(warp.warp_id, inst.dest.id)] = inst
    return last


def _run_case(case: TraceCase, design: str, fast_forward: bool = True):
    """Execute ``case`` on ``design``; -> (SimulationResult, recorders)."""
    if case.num_sms <= 1:
        recorder = TraceRecorder(capacity=RECORDER_CAPACITY)
        result = simulate_design(
            design, case.trace, window_size=case.window,
            memory_seed=case.memory_seed, recorder=recorder,
            fast_forward=fast_forward)
        return result, [recorder]
    device = simulate_device(
        design, case.trace, num_sms=case.num_sms, window_size=case.window,
        memory_seed=case.memory_seed, jobs=1, executor="serial",
        recorder_factory=lambda sm_id: TraceRecorder(
            capacity=RECORDER_CAPACITY),
        fast_forward=fast_forward,
    )
    recorders = [device.recorders[sm_id]
                 for sm_id in sorted(device.recorders)]
    return device.to_simulation_result(), recorders


def _engine_commits(recorders) -> Dict[int, List[Tuple[int, str]]]:
    """Per-warp commit streams, sorted to program order."""
    commits: Dict[int, List[Tuple[int, str]]] = {}
    for recorder in recorders:
        if recorder.dropped:
            raise SimulationError(
                f"fuzz recorder overflow: {recorder.emitted} events "
                f"exceed the {RECORDER_CAPACITY}-entry ring"
            )
        for event in recorder.commits():
            commits.setdefault(event.warp, []).append(
                (event.trace_index, event.opcode))
    return {warp: sorted(events) for warp, events in commits.items()}


def _register_detail(hinted: bool, trace: KernelTrace,
                     reference: ReferenceResult,
                     image: Dict[Tuple[int, int], int]) -> Optional[str]:
    """First register divergence under the oracle's relaxation rule."""
    last_writes = _last_writes(trace) if hinted else {}
    for key, value in sorted(reference.registers.items()):
        if hinted:
            # The compiler may classify a register's final write as
            # OC-only or predicated and elide its RF write; only a key
            # whose last write is unpredicated and RF-bound must land.
            inst = last_writes.get(key)
            if inst is not None and (
                inst.predicate is not None
                or inst.hint is WritebackHint.OC_ONLY
            ):
                continue
            if key not in image:
                continue  # never materialized in the RF model
        if key not in image:
            return (f"register (warp {key[0]}, r{key[1]}) missing "
                    f"(reference {value:#x})")
        if image[key] != value:
            return (f"register (warp {key[0]}, r{key[1]}) holds "
                    f"{image[key]:#x}, reference says {value:#x}")
    return None


def _memory_detail(reference: ReferenceResult,
                   image: Dict[int, int]) -> Optional[str]:
    if image == reference.memory:
        return None
    for address in sorted(set(image) | set(reference.memory)):
        have = image.get(address)
        want = reference.memory.get(address)
        if have != want:
            return (f"address {address:#x} holds "
                    f"{'<absent>' if have is None else hex(have)}, "
                    f"reference says "
                    f"{'<absent>' if want is None else hex(want)}")
    return None  # pragma: no cover — unequal dicts always differ somewhere


def _commit_detail(reference: ReferenceResult,
                   commits: Dict[int, List[Tuple[int, str]]]
                   ) -> Optional[str]:
    expected = {warp: sorted(events)
                for warp, events in reference.commits_by_warp().items()}
    if commits == expected:
        return None
    for warp in sorted(set(commits) | set(expected)):
        have = commits.get(warp, [])
        want = expected.get(warp, [])
        if have == want:
            continue
        if len(have) != len(want):
            return (f"warp {warp} committed {len(have)} instruction(s), "
                    f"reference says {len(want)}")
        for (hi, hop), (wi, wop) in zip(have, want):
            if (hi, hop) != (wi, wop):
                return (f"warp {warp} trace index {hi} committed "
                        f"{hop!r}, reference says {wop!r} at {wi}")
    return None  # pragma: no cover


def compare_case(case: TraceCase, design: str,
                 reference: Optional[ReferenceResult] = None,
                 fast_forward: bool = True) -> List[Mismatch]:
    """Run ``case`` on ``design`` and diff it against the reference.

    Returns every observed divergence (empty list = architecturally
    equivalent).  ``reference`` may be passed in to amortize the
    functional execution across designs sharing a trace.
    ``fast_forward=False`` runs the engine cycle-by-cycle — the
    campaign uses it to attribute a mismatch to the design model vs.
    the event-horizon machinery.
    """
    try:
        spec = get_design(design)
    except KeyError:
        raise SimulationError(
            f"unknown design {design!r}; known: {known_designs()}"
        ) from None
    if reference is None:
        reference = execute_reference(case.trace,
                                      memory_seed=case.memory_seed)
    result, recorders = _run_case(case, design, fast_forward=fast_forward)
    mismatches: List[Mismatch] = []

    def found(kind: str, detail: str) -> None:
        mismatches.append(Mismatch(design=design, num_sms=case.num_sms,
                                   kind=kind, detail=detail))

    detail = _memory_detail(reference, result.memory_image)
    if detail:
        found("memory", detail)
    detail = _register_detail(spec.hinted, case.trace, reference,
                              result.register_image)
    if detail:
        found("registers", detail)
    if result.counters.instructions != reference.instructions:
        found("instructions",
              f"counter says {result.counters.instructions}, "
              f"reference committed {reference.instructions}")
    detail = _commit_detail(reference, _engine_commits(recorders))
    if detail:
        found("commits", detail)
    return mismatches


def case_for(fuzz_case: FuzzCase, design: str,
             num_sms: int = 1) -> TraceCase:
    """The :class:`TraceCase` ``design`` runs for ``fuzz_case``.

    Hinted designs get the hint-compiled expansion (compiled for the
    case's window), everything else the plain one — exactly how the
    experiment harness prepares benchmark traces.
    """
    return TraceCase(
        trace=fuzz_case.trace_for(get_design(design).hinted),
        window=fuzz_case.window,
        memory_seed=fuzz_case.memory_seed,
        num_sms=num_sms,
        designs=(design,),
        meta={"fuzz_seed": fuzz_case.seed, "generator": "repro.fuzz"},
    )


@dataclass
class FuzzFailure:
    """A caught, minimized differential failure.

    ``fast_forward_only`` is True when the same case re-run with the
    engine's per-cycle kill switch matched the reference — i.e. the
    divergence is in the event-horizon fast-forward machinery, not in
    the design model itself.
    """

    seed: int
    design: str
    num_sms: int
    mismatches: List[Mismatch]
    shrink: ShrinkResult
    corpus_path: Optional[Path] = None
    fast_forward_only: bool = False

    @property
    def case(self) -> TraceCase:
        return self.shrink.case


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    cases: int
    runs: int
    designs: Tuple[str, ...]
    failure: Optional[FuzzFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _reproduces(design: str) -> Callable[[TraceCase], bool]:
    """The shrinker's predicate: ``design`` still mismatches."""
    def predicate(candidate: TraceCase) -> bool:
        try:
            return bool(compare_case(candidate, design))
        except Exception:  # noqa: BLE001 — a crash is a different failure
            return False
    return predicate


def _corpus_filename(seed: int, design: str) -> str:
    safe_design = "".join(ch if ch.isalnum() or ch in "-_" else "-"
                          for ch in design)
    return f"fuzz-seed{seed}-{safe_design}.jsonl"


def run_fuzz(
    seed: int = 0,
    cases: int = 50,
    designs: Optional[Sequence[str]] = None,
    sms: int = 1,
    corpus_dir: Optional[Union[str, Path]] = None,
    max_shrink: int = 500,
    config: FuzzConfig = DEFAULT_CONFIG,
    inject_bug: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """One fuzzing campaign: ``cases`` seeds x designs x SM counts.

    Case ``i`` uses seed ``seed + i``, so a campaign is a contiguous,
    reproducible seed range.  Every design runs single-SM; when ``sms
    > 1`` each design additionally runs at device scale with that SM
    count.  The campaign stops at the first mismatch: the failing case
    is shrunk (``max_shrink`` predicate-evaluation budget) and, when
    ``corpus_dir`` is given, written there as a JSONL trace-case.

    ``inject_bug`` registers a deliberately broken design
    (:mod:`repro.testing.bugs`) for the campaign's duration and fuzzes
    it alongside — the harness's own end-to-end self-test.
    """
    if cases < 1:
        raise SimulationError(f"cases must be >= 1, got {cases}")
    if sms < 1:
        raise SimulationError(f"sms must be >= 1, got {sms}")
    sm_counts = (1,) if sms == 1 else (1, sms)

    with contextlib.ExitStack() as stack:
        names = list(designs) if designs else list(design_names())
        if inject_bug is not None:
            from ..testing.bugs import injected_bug

            spec = stack.enter_context(injected_bug(inject_bug))
            names.append(spec.name)
        for name in names:
            try:
                get_design(name)
            except KeyError:
                raise SimulationError(
                    f"unknown design {name!r}; known: {known_designs()}"
                ) from None

        runs = 0
        for index in range(cases):
            case_seed = seed + index
            fuzz_case = generate_case(case_seed, config)
            # The functional reference is per trace variant, shared by
            # every design (and SM count) running that variant.
            references: Dict[int, ReferenceResult] = {}
            for design in names:
                for num_sms in sm_counts:
                    case = case_for(fuzz_case, design, num_sms=num_sms)
                    key = id(case.trace)
                    if key not in references:
                        references[key] = execute_reference(
                            case.trace, memory_seed=case.memory_seed)
                    mismatches = compare_case(case, design,
                                              reference=references[key])
                    runs += 1
                    if not mismatches:
                        continue
                    # Attribute the mismatch before reporting: re-run
                    # the same case with fast-forward killed.  A clean
                    # per-cycle run pins the bug on the event-horizon
                    # machinery rather than the design model.
                    slow_mismatches = compare_case(
                        case, design, reference=references[key],
                        fast_forward=False)
                    fast_forward_only = not slow_mismatches
                    if log is not None:
                        blame = ("fast-forward machinery"
                                 if fast_forward_only else "design model")
                        log(f"seed {case_seed}: MISMATCH on {design} "
                            f"(num_sms={num_sms}, {blame}); shrinking ...")
                    case = replace(case, meta=dict(
                        case.meta,
                        mismatch=[m.kind for m in mismatches],
                        fast_forward_only=fast_forward_only,
                    ))
                    shrink = shrink_case(case, _reproduces(design),
                                         max_attempts=max_shrink)
                    corpus_path = None
                    if corpus_dir is not None:
                        directory = Path(corpus_dir)
                        directory.mkdir(parents=True, exist_ok=True)
                        corpus_path = save_case(
                            shrink.case,
                            directory / _corpus_filename(case_seed, design),
                        )
                    return FuzzReport(
                        cases=index + 1,
                        runs=runs,
                        designs=tuple(names),
                        failure=FuzzFailure(
                            seed=case_seed,
                            design=design,
                            num_sms=num_sms,
                            mismatches=mismatches,
                            shrink=shrink,
                            corpus_path=corpus_path,
                            fast_forward_only=fast_forward_only,
                        ),
                    )
            if log is not None and (index + 1) % 10 == 0:
                log(f"{index + 1}/{cases} cases clean "
                    f"({runs} design runs)")
        return FuzzReport(cases=cases, runs=runs, designs=tuple(names))
