"""Registry mapping experiment ids to their drivers.

``run_experiment("fig10")`` returns the formatted report for that paper
artifact; ``EXPERIMENTS`` lists everything reproducible.  The examples
and the command line both go through here.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ExperimentError
from .figures import (
    fig10_device_ipc,
    fig10_ipc_improvement,
    fig11_halfsize_ipc,
    fig12_oc_residency,
    fig13_energy,
    fig1_onchip_memory,
    fig3_bypass_opportunity,
    fig4_oc_latency,
    fig7_write_destinations,
    fig8_ocu_occupancy,
    fig9_boc_occupancy,
    rfc_comparison,
)
from .runner import QUICK, RunScale
from .tables import (
    table1_btree,
    table2_configuration,
    table3_benchmarks,
    table4_overheads,
)


def _fig10_report(scale: RunScale) -> str:
    bow, bow_wr = fig10_ipc_improvement(scale=scale)
    return bow.format() + "\n\n" + bow_wr.format()


def _fig10b_report(scale: RunScale) -> str:
    bow, bow_wr = fig10_device_ipc(scale=scale)
    return bow.format() + "\n\n" + bow_wr.format()


def _fig13_report(scale: RunScale) -> str:
    bow, bow_wr = fig13_energy(scale=scale)
    return bow.format() + "\n\n" + bow_wr.format()


def _warp_scaling_report(scale: RunScale) -> str:
    from .ablations import warp_scaling

    return warp_scaling(trace_scale=scale.trace_scale,
                        memory_seed=scale.memory_seed).format()


def _simt_report() -> str:
    from .simt_study import simt_suite_study

    return simt_suite_study().format()


def _reorder_report() -> str:
    from .ablations import reorder_study

    return reorder_study().format()


def _summary_report(scale: RunScale) -> str:
    from .summary import headline_summary

    return headline_summary(scale=scale).format()


def _dce_report() -> str:
    from .ablations import dce_study

    return dce_study().format()


#: Experiment id -> (description, report function taking a RunScale).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("On-chip memory sizes across GPU generations",
             lambda scale: fig1_onchip_memory().format()),
    "fig3": ("Eliminated read/write requests vs window size",
             lambda scale: fig3_bypass_opportunity(scale=scale).format()),
    "fig4": ("Time in the operand-collection stage",
             lambda scale: fig4_oc_latency(scale=scale).format()),
    "table1": ("RF writes for the Figure 6 BTREE snippet",
               lambda scale: table1_btree().format()),
    "table2": ("Machine configuration",
               lambda scale: table2_configuration().format()),
    "table3": ("Benchmark suite",
               lambda scale: table3_benchmarks().format()),
    "fig7": ("Write-destination distribution under BOW-WR",
             lambda scale: fig7_write_destinations(scale=scale).format()),
    "fig8": ("OCU source-operand occupancy",
             lambda scale: fig8_ocu_occupancy(scale=scale).format()),
    "fig9": ("BOC entry occupancy",
             lambda scale: fig9_boc_occupancy(scale=scale).format()),
    "fig10": ("IPC improvement (BOW and BOW-WR)", _fig10_report),
    "fig10b": ("IPC improvement at device scale (multi-SM)",
               _fig10b_report),
    "fig11": ("IPC improvement with half-size BOCs",
              lambda scale: fig11_halfsize_ipc(scale=scale).format()),
    "fig12": ("OC-stage residency, normalized",
              lambda scale: fig12_oc_residency(scale=scale).format()),
    "fig13": ("Normalized RF dynamic energy", _fig13_report),
    "table4": ("BOC overheads and storage/area arithmetic",
               lambda scale: table4_overheads().format()),
    "rfc": ("Register-file-cache comparison",
            lambda scale: rfc_comparison(scale=scale).format()),
    # ---- extensions beyond the paper (DESIGN.md SS6) -------------------
    "warps": ("Extension: BOW gain vs warp occupancy", _warp_scaling_report),
    "simt": ("Extension: lane-level divergence and coalescing",
             lambda scale: _simt_report()),
    "reorder": ("Extension: bypass-aware instruction scheduling",
                lambda scale: _reorder_report()),
    "summary": ("Headline scorecard: every abstract-level claim",
                lambda scale: _summary_report(scale)),
    "dce": ("Extension: dead code vs transience in write bypassing",
            lambda scale: _dce_report()),
}


#: Experiment id -> registered `repro figures` name(s) that draw the
#: same artifact as a real (Vega-Lite) chart instead of ASCII — the
#: pointer rendered under the matching reports.
VECTOR_FIGURES: Dict[str, tuple] = {
    "fig8": ("boc_composition",),
    "fig9": ("boc_composition",),
    "fig10": ("ipc_iw_frontier",),
    "fig10b": ("device_ipc_scaling",),
    "fig11": ("ipc_iw_frontier",),
}


def _figures_pointer(key: str) -> str:
    names = VECTOR_FIGURES.get(key)
    if not names:
        return ""
    return (
        f"\n\n[vector chart: sweep with --telemetry, then "
        f"`repro figures --only {','.join(names)}` — see DESIGN.md SS12]"
    )


def run_experiment(
    experiment_id: str,
    scale: RunScale = QUICK,
    jobs: Optional[int] = None,
) -> str:
    """Format the report for one paper artifact.

    Args:
        experiment_id: a key of ``EXPERIMENTS`` (e.g. ``"fig10"``).
        scale: run size for the timing-based experiments.
        jobs: worker processes for the driver's timing grids; ``None``
            keeps the process default (see ``grid.default_jobs``).
    """
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        )
    _, driver = EXPERIMENTS[key]
    if jobs is None:
        return driver(scale) + _figures_pointer(key)
    from .grid import using_jobs

    with using_jobs(jobs):
        return driver(scale) + _figures_pointer(key)
