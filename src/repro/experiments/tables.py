"""Drivers regenerating the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import GPUConfig, bow_config, bow_wr_config
from ..core.window import table1_write_counts
from ..energy.area import AreaModel, AreaReport
from ..energy.cacti import BOC_PARAMS, REGISTER_BANK_PARAMS
from ..kernels.snippets import btree_snippet
from ..stats.report import format_percent, format_table


# ---------------------------------------------------------------------------
# Table I — RF writes for the Figure 6 snippet
# ---------------------------------------------------------------------------

#: The paper's Table I values.  Note the known inconsistencies in the
#: paper itself: its Figure 6 writes $r2 three times (lines 3, 11, 12)
#: but Table I counts two, and the $r4 write of line 13 is omitted.  Our
#: counts are computed from the snippet as printed; the compiler column
#: matches the paper exactly.
PAPER_TABLE1 = {
    "write-through": {0: 3, 1: 4, 2: 2, 3: 1},
    "write-back": {0: 1, 1: 2, 2: 1, 3: 1},
    "compiler": {0: 0, 1: 1, 2: 0, 3: 1},
}


@dataclass(frozen=True)
class Table1Result:
    """Per-register RF write counts under the three designs."""

    window_size: int
    counts: Dict[str, Dict[int, int]]

    def total(self, design: str) -> int:
        return sum(self.counts[design].values())

    def format(self) -> str:
        registers = sorted(
            {reg for per_design in self.counts.values() for reg in per_design}
        )
        designs = ["write-through", "write-back", "compiler"]
        rows = []
        for reg in registers:
            rows.append(
                [f"$r{reg}"]
                + [self.counts[design].get(reg, 0) for design in designs]
            )
        rows.append(["Total"] + [self.total(design) for design in designs])
        return format_table(
            ["dest", "BOW (write-through)", "BOW (write-back)",
             "BOW-WR (compiler)"],
            rows,
            title=f"Table I: RF writes for the Figure 6 snippet (IW={self.window_size})",
        )


def table1_btree(window_size: int = 3) -> Table1Result:
    """Reproduce Table I on the Figure 6 BTREE snippet."""
    counts = table1_write_counts(btree_snippet(), window_size)
    return Table1Result(window_size=window_size, counts=counts)


# ---------------------------------------------------------------------------
# Table II — machine configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Result:
    """The simulated TITAN X Pascal configuration."""

    config: GPUConfig

    def format(self) -> str:
        cfg = self.config
        rows = [
            ["# of SMs", cfg.num_sms],
            ["# of cores per SM", cfg.cores_per_sm],
            ["Max warps per SM", cfg.max_warps_per_sm],
            ["Max threads per SM", cfg.max_threads_per_sm],
            ["Register file per SM", f"{cfg.register_file_bytes // 1024}KB"],
            ["RF banks per SM", cfg.num_banks],
            ["Warp schedulers", cfg.num_schedulers],
            ["Issue width per scheduler", cfg.issue_width_per_scheduler],
            ["Scheduling policy", cfg.scheduler_policy.value.upper()],
            ["Operand collectors", cfg.num_operand_collectors],
        ]
        return format_table(["parameter", "value"], rows,
                            title="Table II: NVIDIA TITAN X (Pascal) configuration")


def table2_configuration() -> Table2Result:
    """The Table II machine configuration (our defaults)."""
    return Table2Result(config=GPUConfig())


# ---------------------------------------------------------------------------
# Table III — the benchmark suite
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Result:
    """The Table III workload list with our calibration summary."""

    rows: Tuple[Tuple[str, str, str, float, float], ...]

    def format(self) -> str:
        body = [
            [suite, name, description,
             format_percent(read_target), format_percent(write_target)]
            for name, suite, description, read_target, write_target
            in self.rows
        ]
        return format_table(
            ["suite", "benchmark", "description",
             "Fig3 read tgt (IW3)", "Fig3 write tgt (IW3)"],
            body,
            title="Table III: benchmark suite (synthetic, calibrated)",
        )


def table3_benchmarks() -> Table3Result:
    """Reproduce Table III: the 15-benchmark suite and its targets."""
    from ..kernels.suites import BENCHMARKS

    rows = tuple(
        (profile.name, profile.suite, profile.description,
         profile.paper_read_bypass, profile.paper_write_bypass)
        for profile in BENCHMARKS.values()
    )
    return Table3Result(rows=rows)


# ---------------------------------------------------------------------------
# Table IV — BOC overheads + storage/area summary
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Result:
    """Table IV component parameters plus the SS IV-C/V-A storage story."""

    boc_size_bytes: int
    bank_size_bytes: int
    access_energy_ratio: float
    leakage_ratio: float
    full_added_storage_kb: float
    half_added_storage_kb: float
    half_fraction_of_rf: float
    area: AreaReport

    def format(self) -> str:
        rows = [
            ["Size", f"{self.boc_size_bytes / 1024:.1f}KB",
             f"{self.bank_size_bytes // 1024}KB",
             format_percent(self.boc_size_bytes / self.bank_size_bytes)],
            ["Vdd", f"{BOC_PARAMS.vdd}V", f"{REGISTER_BANK_PARAMS.vdd}V", "-"],
            ["Access energy", f"{BOC_PARAMS.access_energy_pj}pJ",
             f"{REGISTER_BANK_PARAMS.access_energy_pj}pJ",
             format_percent(self.access_energy_ratio)],
            ["Leakage power", f"{BOC_PARAMS.leakage_power_mw}mW",
             f"{REGISTER_BANK_PARAMS.leakage_power_mw}mW",
             format_percent(self.leakage_ratio)],
        ]
        table = format_table(
            ["parameter", "BOC", "register bank", "ratio"],
            rows,
            title="Table IV: BOC overheads in 28nm",
        )
        summary = (
            f"\nAdded storage, conservative BOC (IW=3): "
            f"{self.full_added_storage_kb:.0f} KB across all BOCs"
            f"\nAdded storage, half-size BOC: "
            f"{self.half_added_storage_kb:.0f} KB "
            f"({format_percent(self.half_fraction_of_rf)} of the RF)"
            f"\nAdded network area: {self.area.network_mm2:.3f} mm^2 "
            f"({format_percent(self.area.network_fraction_of_bank)} of a bank)"
            f"\nTotal added area: {format_percent(self.area.fraction_of_chip)} of the chip"
        )
        return table + summary


def table4_overheads(window_size: int = 3) -> Table4Result:
    """Reproduce Table IV and the storage/area overhead arithmetic."""
    gpu = GPUConfig()
    full = bow_config(window_size)
    half = bow_wr_config(window_size, half_size=True)
    baseline_bytes = 3 * gpu.warp_register_bytes * gpu.num_operand_collectors
    return Table4Result(
        boc_size_bytes=full.boc_bytes(gpu),
        # Table IV bills against the paper's 64 KB bank unit (its own
        # Figure 2 geometry would give 8 KB; we follow the table).
        bank_size_bytes=REGISTER_BANK_PARAMS.size_bytes,
        access_energy_ratio=(
            BOC_PARAMS.access_energy_pj / REGISTER_BANK_PARAMS.access_energy_pj
        ),
        leakage_ratio=(
            BOC_PARAMS.leakage_power_mw / REGISTER_BANK_PARAMS.leakage_power_mw
        ),
        full_added_storage_kb=(full.total_boc_bytes(gpu) - baseline_bytes) / 1024,
        half_added_storage_kb=(half.total_boc_bytes(gpu) - baseline_bytes) / 1024,
        half_fraction_of_rf=half.storage_overhead_fraction(gpu),
        area=AreaModel(gpu).report(bow_wr_config(window_size, half_size=True)),
    )
