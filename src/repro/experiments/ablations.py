"""Ablation studies for the design choices the paper fixes.

The paper picks GTO scheduling (Table II), FIFO eviction for the
reduced BOC (SS IV-C), a window of three instructions, and half-size
buffers.  These drivers vary one choice at a time:

* :func:`scheduler_ablation` — does BOW's benefit survive under LRR?
* :func:`eviction_ablation` — FIFO vs LRU for capacity-limited BOCs.
* :func:`capacity_sweep` — IPC and eviction traffic vs BOC entries
  (generalizes Figure 11's single half-size point).
* :func:`window_sweep` — bypass rates and IPC for windows beyond the
  paper's 7 (its future-work direction).
* :func:`effective_rf_study` — the SS IV-B.2a claim: how much RF
  allocation the transient operands release per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..compiler.allocation import AllocationResult, effective_register_demand
from ..config import (
    BOWConfig,
    EvictionPolicy,
    GPUConfig,
    SchedulerPolicy,
    WritebackPolicy,
)
from ..core.bow_sm import simulate_bow
from ..core.window import read_bypass_counts
from ..kernels.suites import benchmark_names, get_profile
from ..kernels.synthetic import generate_kernel
from ..stats.report import format_percent, format_table
from .grid import run_grid
from .runner import QUICK, RunScale, benchmark_trace


@dataclass(frozen=True)
class SchedulerAblation:
    """BOW's IPC gain under each warp-scheduling policy."""

    gains: Dict[str, Dict[str, float]]  # benchmark -> {policy: gain}

    def average(self, policy: str) -> float:
        return sum(b[policy] for b in self.gains.values()) / len(self.gains)

    def format(self) -> str:
        policies = sorted(next(iter(self.gains.values())))
        rows = [
            [bench] + [format_percent(per[p]) for p in policies]
            for bench, per in self.gains.items()
        ]
        rows.append(["AVERAGE"]
                    + [format_percent(self.average(p)) for p in policies])
        headers = ["benchmark"] + [f"BOW gain ({p.upper()})"
                                   for p in policies]
        return format_table(headers, rows,
                            title="Ablation: scheduler policy")


def scheduler_ablation(
    benchmarks: Optional[Tuple[str, ...]] = None,
    window_size: int = 3,
    scale: RunScale = QUICK,
    policies: Tuple[SchedulerPolicy, ...] = (
        SchedulerPolicy.GTO, SchedulerPolicy.LRR, SchedulerPolicy.TWO_LEVEL,
    ),
) -> SchedulerAblation:
    """BOW's IPC improvement under each warp-scheduling policy."""
    benchmarks = benchmarks or benchmark_names()
    gains: Dict[str, Dict[str, float]] = {}
    for bench in benchmarks:
        trace = benchmark_trace(bench, scale)
        gains[bench] = {}
        for policy in policies:
            config = GPUConfig(scheduler_policy=policy)
            base = simulate_bow(
                trace, bow=replace(BOWConfig(), enabled=False),
                config=config, memory_seed=scale.memory_seed,
            )
            bow = simulate_bow(
                trace, bow=BOWConfig(window_size=window_size),
                config=config, memory_seed=scale.memory_seed,
            )
            gains[bench][policy.value] = bow.ipc / base.ipc - 1.0
    return SchedulerAblation(gains=gains)


@dataclass(frozen=True)
class EvictionAblation:
    """FIFO vs LRU for a capacity-limited BOC."""

    capacity: int
    ipc: Dict[str, Dict[str, float]]
    eviction_writebacks: Dict[str, Dict[str, int]]

    def format(self) -> str:
        rows = []
        for bench, per in self.ipc.items():
            rows.append([
                bench,
                f"{per['fifo']:.3f}", f"{per['lru']:.3f}",
                self.eviction_writebacks[bench]["fifo"],
                self.eviction_writebacks[bench]["lru"],
            ])
        return format_table(
            ["benchmark", "IPC (FIFO)", "IPC (LRU)",
             "evict-WBs (FIFO)", "evict-WBs (LRU)"],
            rows,
            title=f"Ablation: BOC eviction policy (capacity {self.capacity})",
        )


def eviction_ablation(
    benchmarks: Optional[Tuple[str, ...]] = None,
    window_size: int = 3,
    capacity: int = 4,
    scale: RunScale = QUICK,
) -> EvictionAblation:
    """Compare FIFO and LRU eviction under a deliberately tight BOC."""
    benchmarks = benchmarks or benchmark_names()
    ipc: Dict[str, Dict[str, float]] = {}
    writebacks: Dict[str, Dict[str, int]] = {}
    for bench in benchmarks:
        trace = benchmark_trace(bench, scale)
        ipc[bench] = {}
        writebacks[bench] = {}
        for policy in (EvictionPolicy.FIFO, EvictionPolicy.LRU):
            bow = BOWConfig(
                window_size=window_size,
                writeback=WritebackPolicy.WRITE_BACK,
                capacity_entries=capacity,
                eviction=policy,
            )
            result = simulate_bow(trace, bow=bow,
                                  memory_seed=scale.memory_seed)
            ipc[bench][policy.value] = result.ipc
            writebacks[bench][policy.value] = (
                result.counters.eviction_writebacks
            )
    return EvictionAblation(capacity=capacity, ipc=ipc,
                            eviction_writebacks=writebacks)


@dataclass(frozen=True)
class CapacitySweep:
    """IPC and eviction traffic vs BOC capacity for one benchmark."""

    benchmark: str
    window_size: int
    points: List[Tuple[int, float, int]]  # (capacity, ipc_gain, evictions)

    def format(self) -> str:
        rows = [
            [capacity, format_percent(gain), evictions]
            for capacity, gain, evictions in self.points
        ]
        return format_table(
            ["BOC entries", "IPC gain", "evictions"],
            rows,
            title=(f"Capacity sweep: {self.benchmark} "
                   f"(BOW-WR semantics, IW={self.window_size})"),
        )


def capacity_sweep(
    benchmark: str = "SAD",
    window_size: int = 3,
    capacities: Tuple[int, ...] = (2, 3, 4, 6, 8, 12),
    scale: RunScale = QUICK,
) -> CapacitySweep:
    """Sweep BOC capacity from starved to conservative."""
    trace = benchmark_trace(benchmark, scale)
    base = simulate_bow(trace, bow=replace(BOWConfig(), enabled=False),
                        memory_seed=scale.memory_seed)
    points = []
    for capacity in capacities:
        bow = BOWConfig(window_size=window_size,
                        writeback=WritebackPolicy.WRITE_BACK,
                        capacity_entries=capacity)
        result = simulate_bow(trace, bow=bow, memory_seed=scale.memory_seed)
        points.append((
            capacity,
            result.ipc / base.ipc - 1.0,
            result.counters.boc_evictions,
        ))
    return CapacitySweep(benchmark=benchmark, window_size=window_size,
                         points=points)


@dataclass(frozen=True)
class WindowSweep:
    """Bypass rate and IPC gain for windows past the paper's range."""

    benchmark: str
    points: List[Tuple[int, float, float]]  # (iw, read_bypass, ipc_gain)

    def format(self) -> str:
        rows = [
            [iw, format_percent(bypass), format_percent(gain)]
            for iw, bypass, gain in self.points
        ]
        return format_table(
            ["IW", "reads bypassed", "IPC gain"],
            rows,
            title=f"Window sweep: {self.benchmark}",
        )


def window_sweep(
    benchmark: str = "SAD",
    windows: Tuple[int, ...] = (2, 3, 4, 5, 7, 9, 12),
    scale: RunScale = QUICK,
) -> WindowSweep:
    """Extend the Figure 3/10 sweep beyond IW=7 (the paper's future work)."""
    trace = benchmark_trace(benchmark, scale)
    grid = run_grid((benchmark,), ("baseline", "bow"), windows, scale=scale)
    base = grid.get(benchmark, "baseline")
    points = []
    for window_size in windows:
        hits = total = 0
        for warp in trace:
            h, t = read_bypass_counts(warp.instructions, window_size)
            hits, total = hits + h, total + t
        result = grid.get(benchmark, "bow", window_size)
        points.append((window_size, hits / max(1, total),
                       result.ipc / base.ipc - 1.0))
    return WindowSweep(benchmark=benchmark, points=points)


@dataclass(frozen=True)
class DceStudy:
    """How much write-bypass opportunity is dead code vs transience."""

    window_size: int
    rows: List[Tuple[str, float, float, float]]
    # (benchmark, dead instruction fraction, bypass before DCE, after DCE)

    def average_dead(self) -> float:
        return sum(row[1] for row in self.rows) / len(self.rows)

    def format(self) -> str:
        body = [
            [bench, format_percent(dead), format_percent(before),
             format_percent(after)]
            for bench, dead, before, after in self.rows
        ]
        body.append(["AVERAGE", format_percent(self.average_dead()),
                     format_percent(sum(r[2] for r in self.rows)
                                    / len(self.rows)),
                     format_percent(sum(r[3] for r in self.rows)
                                    / len(self.rows))])
        return format_table(
            ["benchmark", "dead instructions", "write bypass (raw)",
             "(after DCE)"],
            body,
            title=(f"Extension: dead code vs transience "
                   f"(IW={self.window_size})"),
        )


def dce_study(
    window_size: int = 3,
    benchmarks: Optional[Tuple[str, ...]] = None,
    seed: int = 1,
) -> DceStudy:
    """Separate dead-write bypass from genuine transience (Fig. 3 note).

    Part of our write-bypass surplus over the paper comes from dead
    writes in the synthetic kernels; this study quantifies it per
    benchmark by re-measuring after dead-code elimination.
    """
    import random as random_module

    from ..compiler.dce import eliminate_dead_code
    from ..core.window import write_bypass_opportunity_counts

    benchmarks = benchmarks or benchmark_names()
    rows: List[Tuple[str, float, float, float]] = []
    for bench in benchmarks:
        spec = replace(get_profile(bench).spec, loop_iterations=6)
        cfg = generate_kernel(spec)
        trace = cfg.expand_trace(random_module.Random(seed))
        hits, total = write_bypass_opportunity_counts(trace, window_size)
        before = hits / max(1, total)
        result = eliminate_dead_code(cfg)
        trace = cfg.expand_trace(random_module.Random(seed))
        hits, total = write_bypass_opportunity_counts(trace, window_size)
        after = hits / max(1, total)
        rows.append((bench, result.dead_fraction, before, after))
    return DceStudy(window_size=window_size, rows=rows)


@dataclass(frozen=True)
class CollectorCountAblation:
    """Baseline sensitivity to the number of operand collector units.

    The paper notes OCU counts have grown generation over generation
    (SS I: Pascal has 32, one per in-flight warp); this study shows how
    much of the baseline's performance depends on that, and that BOW's
    per-warp BOCs sidestep the question.
    """

    benchmark: str
    points: List[Tuple[int, float, int]]  # (units, ipc, collector stalls)

    def format(self) -> str:
        rows = [
            [units, f"{ipc:.3f}", stalls]
            for units, ipc, stalls in self.points
        ]
        return format_table(
            ["OCUs", "baseline IPC", "collector stalls"],
            rows,
            title=f"Ablation: operand-collector count ({self.benchmark})",
        )


def collector_count_ablation(
    benchmark: str = "SAD",
    unit_counts: Tuple[int, ...] = (4, 8, 16, 32),
    scale: RunScale = QUICK,
) -> CollectorCountAblation:
    """Baseline IPC as the OCU pool shrinks."""
    trace = benchmark_trace(benchmark, scale)
    points = []
    for units in unit_counts:
        config = GPUConfig(num_operand_collectors=units)
        result = simulate_bow(
            trace, bow=replace(BOWConfig(), enabled=False),
            config=config, memory_seed=scale.memory_seed,
        )
        points.append((
            units, result.ipc, result.counters.issue_stalls_collector,
        ))
    return CollectorCountAblation(benchmark=benchmark, points=points)


@dataclass(frozen=True)
class ReorderStudy:
    """Bypass-aware instruction scheduling (the paper's footnote 1)."""

    window_size: int
    rows: List[Tuple[str, int, float, float]]
    # (benchmark, instructions moved, bypass before, bypass after)

    def average_gain(self) -> float:
        return sum(after - before for _, _, before, after in self.rows) \
            / len(self.rows)

    def format(self) -> str:
        body = [
            [bench, moved, format_percent(before), format_percent(after),
             format_percent(after - before)]
            for bench, moved, before, after in self.rows
        ]
        body.append(["AVERAGE", "", "", "",
                     format_percent(self.average_gain())])
        return format_table(
            ["benchmark", "moved", "reads bypassed (before)",
             "(after)", "gain"],
            body,
            title=(f"Extension: bypass-aware scheduling "
                   f"(IW={self.window_size})"),
        )


def reorder_study(
    window_size: int = 3,
    benchmarks: Optional[Tuple[str, ...]] = None,
    seed: int = 1,
) -> ReorderStudy:
    """Measure the footnote-1 reordering pass on the suite.

    For each benchmark: generate the kernel, measure the dynamic read
    bypass rate at ``window_size``, run the scheduler, re-expand with
    the same seed, and measure again.  The pass is guarded per block, so
    blocks only change when their static locality improves.
    """
    import random as random_module

    from ..compiler.scheduling import schedule_kernel
    from ..core.window import read_bypass_counts

    benchmarks = benchmarks or benchmark_names()
    rows: List[Tuple[str, int, float, float]] = []
    for bench in benchmarks:
        spec = replace(get_profile(bench).spec, loop_iterations=6)
        cfg = generate_kernel(spec)
        before_trace = cfg.expand_trace(random_module.Random(seed))
        hits, total = read_bypass_counts(before_trace, window_size)
        before = hits / max(1, total)
        moved = schedule_kernel(cfg, window_size)
        after_trace = cfg.expand_trace(random_module.Random(seed))
        hits, total = read_bypass_counts(after_trace, window_size)
        after = hits / max(1, total)
        rows.append((bench, moved, before, after))
    return ReorderStudy(window_size=window_size, rows=rows)


@dataclass(frozen=True)
class WarpScaling:
    """BOW's benefit as occupancy (and so port contention) grows."""

    benchmark: str
    points: List[Tuple[int, float, float, float]]
    # (warps, baseline_ipc, bow_ipc, gain)

    def format(self) -> str:
        rows = [
            [warps, f"{base:.3f}", f"{bow:.3f}", format_percent(gain)]
            for warps, base, bow, gain in self.points
        ]
        return format_table(
            ["warps", "baseline IPC", "BOW IPC", "gain"],
            rows,
            title=f"Warp scaling: {self.benchmark} (IW=3)",
        )


def warp_scaling(
    benchmark: str = "SAD",
    warp_counts: Tuple[int, ...] = (4, 8, 16, 32),
    window_size: int = 3,
    trace_scale: float = 0.2,
    memory_seed: int = 7,
) -> WarpScaling:
    """IPC of baseline vs BOW as the warp count rises.

    More warps mean more concurrent collectors fighting for bank ports —
    the contention BOW relieves — so the gain should grow with
    occupancy.  This contextualizes the paper's full-occupancy numbers.
    """
    points = []
    for warps in warp_counts:
        scale = RunScale(num_warps=warps, trace_scale=trace_scale,
                         memory_seed=memory_seed)
        grid = run_grid((benchmark,), ("baseline", "bow"), (window_size,),
                        scale=scale)
        base = grid.get(benchmark, "baseline")
        bow = grid.get(benchmark, "bow", window_size)
        points.append((warps, base.ipc, bow.ipc, bow.ipc / base.ipc - 1.0))
    return WarpScaling(benchmark=benchmark, points=points)


@dataclass(frozen=True)
class EffectiveRfStudy:
    """Transient-register savings per benchmark (SS IV-B.2a)."""

    results: Dict[str, AllocationResult]

    def average_transient_fraction(self) -> float:
        return sum(
            r.transient_write_fraction for r in self.results.values()
        ) / len(self.results)

    def format(self) -> str:
        rows = [
            [bench,
             result.total_registers,
             result.transient_registers,
             format_percent(result.register_savings),
             format_percent(result.transient_write_fraction)]
            for bench, result in self.results.items()
        ]
        rows.append(["AVERAGE", "", "", "",
                     format_percent(self.average_transient_fraction())])
        return format_table(
            ["benchmark", "registers", "transient", "RF slots saved",
             "transient writes"],
            rows,
            title="Effective RF size: transient-register elision (IW=3)",
        )


def effective_rf_study(
    window_size: int = 3,
    benchmarks: Optional[Tuple[str, ...]] = None,
) -> EffectiveRfStudy:
    """Quantify RF allocation released by transient values per benchmark."""
    benchmarks = benchmarks or benchmark_names()
    results = {
        bench: effective_register_demand(
            generate_kernel(get_profile(bench).spec), window_size
        )
        for bench in benchmarks
    }
    return EffectiveRfStudy(results=results)
