"""Fault-tolerance policy for the sweep engine.

``run_grid`` fans a ``benchmark x design x IW`` grid across worker
processes; one bad point must not destroy the pass.  This module holds
the pieces the grid layers on top of its executor to degrade
gracefully:

* a **failure taxonomy** — :func:`classify_failure` sorts exceptions
  into ``transient`` (worker crashes, OS-level errors, timeouts: worth
  retrying) and ``permanent`` (deterministic simulator failures such as
  :class:`~repro.errors.DeadlockError`: retrying reproduces them);
* a :class:`RetryPolicy` — bounded retries with *deterministic*
  exponential backoff (no jitter, so two sweeps with the same policy
  replay the same schedule) plus an optional per-point wall-clock
  timeout;
* a :class:`PointFailure` record — everything ``GridResult.failures``
  keeps about a point that exhausted its policy: attempts, elapsed
  time, the original exception's type/message, and its formatted
  traceback.

Determinism contract: nothing here consults wall-clock time, worker
identity, or randomness when *classifying* or *deciding* — given the
same faults, the same policy produces the same failure records at
``jobs=1`` and ``jobs=8`` (see ``repro.testing.faults`` for the
injection harness that proves it).
"""

from __future__ import annotations

import traceback as traceback_module
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Tuple

from ..errors import ExperimentError, SweepPointError

#: Failure kinds (the values stored on :class:`PointFailure`).
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Exception families whose failures are environmental rather than
#: deterministic: a dead worker, an OS-level error (ENOSPC, EACCES,
#: OOM-kills surfacing as ``BrokenProcessPool``), or a timeout.  A
#: retry has a real chance of succeeding.  Everything else — most
#: importantly :class:`~repro.errors.DeadlockError` and its
#: :class:`~repro.errors.SimulationError` siblings — is deterministic
#: with respect to the run's inputs, so retrying just reproduces it.
_TRANSIENT_TYPES: Tuple[type, ...] = (
    BrokenProcessPool,
    OSError,
    MemoryError,
    TimeoutError,
)


def classify_failure(error: BaseException) -> str:
    """``TRANSIENT`` or ``PERMANENT`` for one grid-point exception."""
    if isinstance(error, _TRANSIENT_TYPES):
        return TRANSIENT
    return PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry behaviour for one sweep.

    Attributes:
        max_attempts: total executions allowed per point (1 = never
            retry).
        backoff_base: delay in seconds before the first retry.
        backoff_factor: multiplier applied per further retry.
        backoff_max: ceiling on any single delay.
        timeout: per-point wall-clock budget in seconds; ``None``
            disables the deadline.  In parallel sweeps an over-budget
            point is abandoned (and retried, if attempts remain); in
            serial sweeps the budget is checked after the point
            returns, so both modes record the same timeout failures.
        retry_permanent: also retry ``permanent`` failures (off by
            default — a deterministic simulator reproduces them).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    timeout: float = None  # type: ignore[assignment]
    retry_permanent: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ExperimentError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ExperimentError("backoff_factor must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ExperimentError("timeout must be positive (or None)")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based).

        Deterministic exponential backoff:
        ``min(backoff_max, backoff_base * backoff_factor**(attempt-1))``.
        """
        if attempt < 1:
            raise ExperimentError("attempt numbers are 1-based")
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    def should_retry(self, kind: str, attempt: int) -> bool:
        """Whether a failure of ``kind`` on attempt ``attempt`` retries."""
        if attempt >= self.max_attempts:
            return False
        return kind == TRANSIENT or self.retry_permanent


#: The policy ``run_grid`` uses when the caller passes none.
DEFAULT_POLICY = RetryPolicy()

#: Fail fast: one attempt, no backoff, no deadline.
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base=0.0)


@dataclass(frozen=True)
class PointFailure:
    """One grid point that exhausted its retry policy.

    Attributes:
        benchmark / design / window: the grid coordinates.
        label: the point's display label.
        kind: ``"transient"`` or ``"permanent"``.
        attempts: executions consumed (including the first).
        seconds: total wall-clock seconds across all attempts.
        error_type: class name of the final exception.
        message: message of the final exception.
        traceback_text: formatted traceback of the final attempt
            (empty when none was captured, e.g. an abandoned timeout).
    """

    benchmark: str
    design: str
    window: int
    label: str
    kind: str
    attempts: int
    seconds: float
    error_type: str
    message: str
    traceback_text: str = ""

    def signature(self) -> Tuple[str, str, int]:
        """The determinism-stable identity of this failure.

        ``(label, kind, attempts)`` — everything a fault seed pins down
        regardless of worker count.  ``error_type`` is excluded because
        the *same* fault surfaces differently by transport: a worker
        killed mid-point raises ``BrokenProcessPool`` under ``jobs>1``
        but the injector's crash error under ``jobs=1``.
        """
        return (self.label, self.kind, self.attempts)

    def to_error(self) -> SweepPointError:
        """The exception equivalent of this record."""
        return SweepPointError(self.label, self.kind, self.attempts,
                               self.error_type, self.message,
                               self.traceback_text)


def describe_failure(
    benchmark: str,
    design: str,
    window: int,
    label: str,
    error: BaseException,
    attempts: int,
    seconds: float,
) -> PointFailure:
    """Build the :class:`PointFailure` record for one final exception."""
    if error.__traceback__ is not None:
        text = "".join(traceback_module.format_exception(
            type(error), error, error.__traceback__))
    else:
        # Pool workers strip tracebacks in transit; concurrent.futures
        # smuggles the remote one through __cause__.
        cause = error.__cause__
        text = str(cause) if cause is not None else ""
    return PointFailure(
        benchmark=benchmark,
        design=design,
        window=window,
        label=label,
        kind=classify_failure(error),
        attempts=attempts,
        seconds=seconds,
        error_type=type(error).__name__,
        message=str(error),
        traceback_text=text,
    )
