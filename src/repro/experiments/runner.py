"""Shared run infrastructure for the experiment drivers.

``run_design`` builds the benchmark trace (compiled with hints when the
design needs them), runs the timing simulator, and memoizes the result:
Figures 10, 12 and 13 all consume the same runs, and pytest-benchmark
calls each driver several times.

Results are cached at two levels:

* a process-local memo (``_run_cache``), exactly as before, so repeated
  driver calls within one process are free and return identical objects;
* optionally a persistent on-disk cache
  (:class:`~repro.experiments.cache.RunCache`) shared across processes
  and CI jobs — configure with :func:`set_cache`, or set
  ``$REPRO_CACHE_DIR`` to enable it for a whole process.

Two standard sizes are provided:

* ``QUICK`` — 16 warps, quarter-length traces; seconds per run, the
  default for the benchmark harness and CI.
* ``FULL``  — the full 32-warp complement with longer traces; use for
  final numbers.

Grid fan-out lives in :mod:`repro.experiments.grid` (``run_grid``).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..core.bow_sm import simulate_design
from ..core.designs import DesignSpec, get_design, known_designs
from ..errors import ExperimentError
from ..gpu.sm import SimulationResult
from ..kernels.suites import get_profile
from ..kernels.synthetic import generate_compiled_trace, generate_trace
from ..kernels.trace import KernelTrace
from ..stats.cache import CacheStats
from .cache import RunCache, cache_from_env, run_key


@dataclass(frozen=True)
class RunScale:
    """Size of one experiment run.

    Attributes:
        num_warps: warps per launch (the SM supports up to 32).
        trace_scale: multiplier on each benchmark's nominal trace length.
        memory_seed: seed of the deterministic memory-latency model
            (also the seed of the device layer's CTA partitioner).
        num_sms: SMs the launch is partitioned across.  1 (the default)
            simulates a single SM exactly as before; larger values
            route the point through :mod:`repro.gpu.device` and report
            device-level numbers (device IPC, merged counters).
    """

    num_warps: int = 16
    trace_scale: float = 0.25
    memory_seed: int = 7
    num_sms: int = 1

    def __post_init__(self) -> None:
        if self.num_warps < 1:
            raise ExperimentError("num_warps must be >= 1")
        if self.trace_scale <= 0:
            raise ExperimentError("trace_scale must be positive")
        if self.num_sms < 1:
            raise ExperimentError(
                f"num_sms must be >= 1, got {self.num_sms}"
            )


QUICK = RunScale(num_warps=16, trace_scale=0.25)
FULL = RunScale(num_warps=32, trace_scale=0.5)

#: The QUICK grid at device scale: the same launches partitioned over
#: four SMs (4 CTAs of 4 warps), the benchmark harness's device point.
DEVICE_QUICK = RunScale(num_warps=16, trace_scale=0.25, num_sms=4)

_trace_cache: Dict[Tuple, KernelTrace] = {}
_run_cache: Dict[Tuple, SimulationResult] = {}

#: The configured on-disk cache; ``False`` means "not yet resolved"
#: (resolve lazily from the environment on first use).
_disk_cache: object = False

#: Simulator invocations performed by this process (memo/disk hits do
#: not count) — the "zero simulator invocations on a warm cache" check.
_simulations_run: int = 0


def clear_cache() -> None:
    """Drop all memoized traces and runs (tests use this for isolation).

    Only the in-process memo is dropped; a configured on-disk cache is
    left untouched (use :meth:`RunCache.clear` for that).
    """
    _trace_cache.clear()
    _run_cache.clear()


def set_cache(cache: Optional[RunCache]) -> Optional[RunCache]:
    """Install (or with ``None`` disable) the on-disk run cache.

    Returns the previously configured cache so callers can restore it.
    """
    global _disk_cache
    previous = _disk_cache
    _disk_cache = cache
    return None if previous is False else previous  # type: ignore[return-value]


def get_cache() -> Optional[RunCache]:
    """The active on-disk cache (``$REPRO_CACHE_DIR`` by default)."""
    global _disk_cache
    if _disk_cache is False:
        _disk_cache = cache_from_env()
    return _disk_cache  # type: ignore[return-value]


def cache_stats() -> CacheStats:
    """A snapshot of the active on-disk cache's counters (zeros if none)."""
    cache = get_cache()
    return cache.stats.snapshot() if cache is not None else CacheStats()


def simulations_run() -> int:
    """Simulator invocations this process has performed so far."""
    return _simulations_run


def reset_simulations_counter() -> None:
    """Zero the invocation counter (the chaos harness and tests use
    this to assert per-pass deltas rather than process totals)."""
    global _simulations_run
    _simulations_run = 0


def design_spec(design: str) -> DesignSpec:
    """The registry spec for ``design``, as an :class:`ExperimentError`.

    Every experiment-layer surface (runner, grid, CLI, figures,
    ablations) resolves design names through here, so an unknown name
    produces the same message everywhere.
    """
    try:
        return get_design(design)
    except KeyError:
        raise ExperimentError(
            f"unknown design {design!r}; known: {known_designs()}"
        ) from None


def effective_window(design: str, window_size: int) -> int:
    """The window a design actually uses (0 when it ignores the knob)."""
    return 0 if design_spec(design).windowless else window_size


def validate_design(design: str) -> None:
    """Raise :class:`ExperimentError` unless ``design`` is runnable."""
    design_spec(design)


def resolve_num_sms(num_sms: Optional[int], design: Optional[str] = None
                    ) -> int:
    """The SM count a CLI surface should run at.

    ``None`` falls back to the design's registry default (or 1 without
    a design); invalid values raise the same
    :class:`~repro.errors.ExperimentError` every experiment surface
    uses, so ``--sms 0`` fails identically on ``run`` and ``sweep``.
    """
    if num_sms is None:
        return design_spec(design).num_sms if design is not None else 1
    if num_sms < 1:
        raise ExperimentError(f"num_sms must be >= 1, got {num_sms}")
    return num_sms


def device_scale(scale: RunScale, num_sms: int) -> RunScale:
    """``scale`` re-targeted at ``num_sms`` SMs (validated)."""
    return replace(scale, num_sms=resolve_num_sms(num_sms))


def memo_key(
    benchmark: str, design: str, window_size: int, scale: RunScale
) -> Tuple:
    """The process-local memo key of one design point."""
    return (benchmark.upper(), design, effective_window(design, window_size),
            scale.num_warps, scale.trace_scale, scale.memory_seed,
            scale.num_sms)


def memo_store(
    benchmark: str,
    design: str,
    window_size: int,
    scale: RunScale,
    result: SimulationResult,
) -> None:
    """Insert a result into the process-local memo (grid fan-in uses this)."""
    _run_cache[memo_key(benchmark, design, window_size, scale)] = result


def memo_lookup(
    benchmark: str, design: str, window_size: int, scale: RunScale
) -> Optional[SimulationResult]:
    """The memoized result of one design point, if present."""
    return _run_cache.get(memo_key(benchmark, design, window_size, scale))


def benchmark_trace(
    benchmark: str,
    scale: RunScale,
    window_size: Optional[int] = None,
) -> KernelTrace:
    """The benchmark's trace, hint-compiled when ``window_size`` is given."""
    key = (benchmark.upper(), scale.num_warps, scale.trace_scale, window_size)
    if key in _trace_cache:
        return _trace_cache[key]
    spec = get_profile(benchmark).spec
    spec = replace(
        spec,
        num_warps=scale.num_warps,
        loop_iterations=max(1, round(spec.loop_iterations * scale.trace_scale)),
    )
    if window_size is None:
        trace = generate_trace(spec)
    else:
        trace = generate_compiled_trace(spec, window_size)
    _trace_cache[key] = trace
    return trace


#: Dispatcher settings for device-scale points resolved by this
#: process: ``(jobs, executor)``.  Grid workers keep the serial default
#: (their parallelism is across grid points already); the CLI threads
#: ``run --sms --jobs`` through :func:`using_device_dispatch`.
_device_dispatch: Tuple[int, str] = (1, "thread")


def set_device_dispatch(jobs: int, executor: str = "thread") -> None:
    """Set how device-scale runs dispatch their SMs in this process."""
    global _device_dispatch
    _device_dispatch = (max(1, int(jobs)), executor)


@contextlib.contextmanager
def using_device_dispatch(jobs: int, executor: str = "thread"):
    """Temporarily override the device dispatcher (CLI plumbing).

    Device results are bit-identical across job counts and executor
    kinds, so this changes wall-clock only — cached results stay valid.
    """
    previous = _device_dispatch
    set_device_dispatch(jobs, executor)
    try:
        yield
    finally:
        set_device_dispatch(*previous)


#: Whether engines launched by this process use event-horizon
#: fast-forward.  Results are bit-identical either way (the engine's
#: core contract, enforced by the differential suites), so this is a
#: diagnostic kill switch, not a result knob — which is also why it is
#: deliberately NOT part of any cache key.
_fast_forward: bool = True


def set_fast_forward(enabled: bool) -> None:
    """Set whether this process's simulator runs fast-forward."""
    global _fast_forward
    _fast_forward = bool(enabled)


def fast_forward_enabled() -> bool:
    """Whether engines launched by this process fast-forward."""
    return _fast_forward


@contextlib.contextmanager
def using_fast_forward(enabled: bool):
    """Temporarily override the fast-forward kill switch (CLI plumbing).

    With fast-forward *disabled*, :func:`run_design` bypasses the memo
    and the on-disk cache in both directions: a ``--no-fast-forward``
    run exists to exercise the per-cycle engine path, so serving it a
    cached (fast-forwarded) result would defeat its purpose, and its
    own result is not stored because ``fast_forwarded_cycles`` would
    poison later cache hits.
    """
    previous = _fast_forward
    set_fast_forward(enabled)
    try:
        yield
    finally:
        set_fast_forward(previous)


def execute_run(
    benchmark: str,
    design: str,
    window_size: int = 3,
    scale: RunScale = QUICK,
) -> SimulationResult:
    """Simulate one design point, bypassing every cache.

    This is the single place the experiment layer invokes the timing
    simulator; ``run_design`` and the grid workers both come through
    here, which is what makes the invocation counter trustworthy.
    A scale with ``num_sms > 1`` routes through the device layer
    (:mod:`repro.gpu.device`) and yields the merged device result;
    ``num_sms = 1`` is the unchanged single-SM path.
    """
    global _simulations_run
    spec = design_spec(design)
    trace = benchmark_trace(
        benchmark, scale, window_size=window_size if spec.hinted else None
    )
    _simulations_run += 1
    if scale.num_sms > 1:
        from ..gpu.device import simulate_device

        jobs, executor = _device_dispatch
        return simulate_device(
            design, trace, num_sms=scale.num_sms, window_size=window_size,
            memory_seed=scale.memory_seed, jobs=jobs, executor=executor,
            fast_forward=_fast_forward,
        ).to_simulation_result()
    return simulate_design(
        design, trace, window_size=window_size, memory_seed=scale.memory_seed,
        fast_forward=_fast_forward,
    )


def run_design(
    benchmark: str,
    design: str,
    window_size: int = 3,
    scale: RunScale = QUICK,
) -> SimulationResult:
    """Run (or fetch the cached run of) one design point.

    Lookup order: process-local memo, then the on-disk cache (if one is
    configured), then :func:`execute_run`.  Fresh and disk-fetched
    results are stored back into both layers.

    Args:
        benchmark: a Table III benchmark name.
        design: a registered design name (see
            :func:`repro.core.designs.design_names`).
        window_size: the instruction window (ignored by windowless
            designs).
        scale: run size.
    """
    validate_design(design)
    if not _fast_forward:
        # Kill-switch runs exist to exercise the per-cycle path: don't
        # serve them cached fast-forwarded results, don't store theirs
        # (see using_fast_forward).
        return execute_run(benchmark, design, window_size=window_size,
                           scale=scale)
    key = memo_key(benchmark, design, window_size, scale)
    if key in _run_cache:
        return _run_cache[key]

    disk = get_cache()
    digest = None
    if disk is not None:
        digest = run_key(benchmark, design,
                         effective_window(design, window_size), scale)
        cached = disk.get(digest)
        if cached is not None:
            _run_cache[key] = cached
            return cached

    result = execute_run(benchmark, design, window_size=window_size,
                         scale=scale)
    if disk is not None and digest is not None:
        disk.put(digest, result)
    _run_cache[key] = result
    return result
