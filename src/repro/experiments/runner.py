"""Shared run infrastructure for the experiment drivers.

``run_design`` builds the benchmark trace (compiled with hints when the
design needs them), runs the timing simulator, and memoizes the result:
Figures 10, 12 and 13 all consume the same runs, and pytest-benchmark
calls each driver several times.

Two standard sizes are provided:

* ``QUICK`` — 16 warps, quarter-length traces; seconds per run, the
  default for the benchmark harness and CI.
* ``FULL``  — the full 32-warp complement with longer traces; use for
  final numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..config import WritebackPolicy
from ..core.bow_sm import DESIGNS, simulate_design
from ..errors import ExperimentError
from ..gpu.sm import SimulationResult
from ..kernels.suites import get_profile
from ..kernels.synthetic import generate_compiled_trace, generate_trace
from ..kernels.trace import KernelTrace


@dataclass(frozen=True)
class RunScale:
    """Size of one experiment run.

    Attributes:
        num_warps: warps per launch (the SM supports up to 32).
        trace_scale: multiplier on each benchmark's nominal trace length.
        memory_seed: seed of the deterministic memory-latency model.
    """

    num_warps: int = 16
    trace_scale: float = 0.25
    memory_seed: int = 7

    def __post_init__(self) -> None:
        if self.num_warps < 1:
            raise ExperimentError("num_warps must be >= 1")
        if self.trace_scale <= 0:
            raise ExperimentError("trace_scale must be positive")


QUICK = RunScale(num_warps=16, trace_scale=0.25)
FULL = RunScale(num_warps=32, trace_scale=0.5)

#: Designs whose traces must carry compiler hints.
_HINTED_DESIGNS = frozenset({"bow-wr", "bow-wr-half"})

_trace_cache: Dict[Tuple, KernelTrace] = {}
_run_cache: Dict[Tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop all memoized traces and runs (tests use this for isolation)."""
    _trace_cache.clear()
    _run_cache.clear()


def benchmark_trace(
    benchmark: str,
    scale: RunScale,
    window_size: Optional[int] = None,
) -> KernelTrace:
    """The benchmark's trace, hint-compiled when ``window_size`` is given."""
    key = (benchmark.upper(), scale.num_warps, scale.trace_scale, window_size)
    if key in _trace_cache:
        return _trace_cache[key]
    spec = get_profile(benchmark).spec
    spec = replace(
        spec,
        num_warps=scale.num_warps,
        loop_iterations=max(1, round(spec.loop_iterations * scale.trace_scale)),
    )
    if window_size is None:
        trace = generate_trace(spec)
    else:
        trace = generate_compiled_trace(spec, window_size)
    _trace_cache[key] = trace
    return trace


def run_design(
    benchmark: str,
    design: str,
    window_size: int = 3,
    scale: RunScale = QUICK,
) -> SimulationResult:
    """Run (or fetch the memoized run of) one design point.

    Args:
        benchmark: a Table III benchmark name.
        design: one of ``DESIGNS`` plus ``"rfc"``.
        window_size: the instruction window (ignored by baseline/rfc).
        scale: run size.
    """
    if design not in DESIGNS and design != "rfc":
        known = ", ".join(sorted(DESIGNS) + ["rfc"])
        raise ExperimentError(f"unknown design {design!r}; known: {known}")
    effective_iw = window_size if design not in ("baseline", "rfc") else 0
    key = (benchmark.upper(), design, effective_iw,
           scale.num_warps, scale.trace_scale, scale.memory_seed)
    if key in _run_cache:
        return _run_cache[key]

    hinted = design in _HINTED_DESIGNS
    trace = benchmark_trace(
        benchmark, scale, window_size=window_size if hinted else None
    )
    result = simulate_design(
        design, trace, window_size=window_size, memory_seed=scale.memory_seed
    )
    _run_cache[key] = result
    return result
