"""Content-addressed, on-disk cache of simulation runs.

Every headline artifact (Figures 10-13, the scorecard, the ablations)
is a grid of ``benchmark x design x IW`` timing runs.  The in-process
memo in :mod:`repro.experiments.runner` already shares runs *within* a
process; this cache shares them *across* processes and CI jobs, so a
re-run of the FULL grid after an unrelated change costs file reads, not
hours of simulation.

Keys are content hashes over everything that determines a run's output:

* the benchmark profile (every generator-spec field, so re-calibrating
  a workload invalidates only that workload's entries);
* the design name and the *effective* instruction window (0 for
  designs that ignore it);
* the :class:`~repro.experiments.runner.RunScale`;
* the default machine configuration (``GPUConfig()`` field by field);
* :data:`CACHE_SCHEMA_VERSION`.

Values are :class:`~repro.gpu.sm.SimulationResult` payloads in the
JSON format of :mod:`repro.kernels.serialize`.  Entries are written
atomically (temp file + rename) so concurrent sweep workers and CI
jobs can share one cache directory.

Bump :data:`CACHE_SCHEMA_VERSION` whenever simulator *behaviour*
changes in a way the key cannot see (e.g. a timing-model fix): stale
entries then miss instead of silently serving old numbers.

The cache is an accelerator, never a point of failure: ``get`` and
``put`` swallow OS-level errors (a full disk, a permission change
mid-sweep) and count them in :class:`CacheStats.io_errors`; after
:attr:`RunCache.error_threshold` such failures the cache self-disables
for the rest of the process with a single
:class:`CacheDegradedWarning`, and the sweep finishes uncached.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from ..config import GPUConfig
from ..errors import KernelError
from ..kernels.serialize import result_from_dict, result_to_dict
from ..kernels.suites import get_profile
from ..stats.cache import CacheStats

if TYPE_CHECKING:
    from ..gpu.sm import SimulationResult
    from .runner import RunScale

#: Bump when simulator behaviour changes without a key-visible config
#: change; see the module docstring for the policy.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the default cache directory.  Unset
#: means no on-disk caching unless a cache is configured explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: I/O failures tolerated before a cache self-disables (default for
#: :attr:`RunCache.error_threshold`).
DEFAULT_ERROR_THRESHOLD = 8


class CacheDegradedWarning(RuntimeWarning):
    """Emitted once when a :class:`RunCache` self-disables."""


def _jsonable(value):
    """Canonical JSON-compatible form of config/spec values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            item.name: _jsonable(getattr(value, item.name))
            for item in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in sorted(value.items())}
    return value


def run_key(
    benchmark: str,
    design: str,
    window_size: int,
    scale: "RunScale",
    config: Optional[GPUConfig] = None,
) -> str:
    """Content hash identifying one run of the experiment grid.

    ``window_size`` should be the *effective* window (0 for designs
    that ignore it) so equivalent runs share an entry.
    """
    profile = get_profile(benchmark)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "benchmark": profile.name,
        "profile": _jsonable(profile.spec),
        "design": design,
        "window": window_size,
        "scale": _jsonable(scale),
        "gpu": _jsonable(config or GPUConfig()),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """The cache directory named by the environment, or a per-user one."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return Path(configured).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "~/.cache")
    return Path(xdg).expanduser() / "repro-bow" / "runs"


def cache_from_env() -> Optional["RunCache"]:
    """A :class:`RunCache` at ``$REPRO_CACHE_DIR``, or ``None`` if unset."""
    if os.environ.get(CACHE_DIR_ENV):
        return RunCache(default_cache_dir())
    return None


class RunCache:
    """A directory of serialized simulation results, addressed by key.

    Layout: ``<root>/v<schema>/<key[:2]>/<key>.json`` — the two-level
    fan-out keeps directories small on FULL-grid sweeps, and the
    schema-versioned root makes version bumps a clean miss.

    ``get``/``put`` never propagate :class:`OSError`: each failure is
    counted (``CacheStats.io_errors``), and after ``error_threshold``
    failures the cache self-disables for the rest of the process —
    every later call becomes a silent no-op, so a full disk costs one
    :class:`CacheDegradedWarning` instead of a dead sweep.
    """

    def __init__(self, root: Union[str, Path],
                 error_threshold: int = DEFAULT_ERROR_THRESHOLD):
        self.root = Path(root).expanduser()
        self.stats = CacheStats()
        self.error_threshold = max(1, int(error_threshold))
        self._io_errors = 0
        self._disabled = False

    def _path(self, key: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    @property
    def disabled(self) -> bool:
        """Whether the cache has self-disabled after repeated I/O errors."""
        return self._disabled

    def reenable(self) -> None:
        """Re-arm a self-disabled cache (e.g. after freeing disk space)."""
        self._disabled = False
        self._io_errors = 0

    def _note_io_error(self, action: str, error: OSError) -> None:
        """Count one swallowed I/O failure; disable at the threshold."""
        self.stats.io_errors += 1
        self._io_errors += 1
        if not self._disabled and self._io_errors >= self.error_threshold:
            self._disabled = True
            self.stats.disables += 1
            warnings.warn(
                f"run cache at {self.root} disabled after "
                f"{self._io_errors} I/O errors (last {action} failed: "
                f"{error}); continuing uncached",
                CacheDegradedWarning,
                stacklevel=3,
            )

    def _read_text(self, path: Path) -> str:
        """Read one entry's payload (fault-injection seam)."""
        return path.read_text(encoding="utf-8")

    def _write_entry(self, path: Path, text: str) -> None:
        """Atomically publish one entry (fault-injection seam)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional["SimulationResult"]:
        """The cached result for ``key``, or ``None`` (counted as a miss).

        A missing file is a plain miss.  An *unreadable* file (EACCES,
        EIO, ...) additionally counts under ``errors``/``io_errors``
        and feeds the self-disable threshold.  Undecodable entries
        (truncated writes, format drift) are deleted and counted under
        ``errors`` as well as ``misses``.  Never raises ``OSError``.
        """
        if self._disabled:
            return None
        path = self._path(key)
        try:
            text = self._read_text(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as error:
            self.stats.misses += 1
            self.stats.errors += 1
            self._note_io_error("read", error)
            return None
        try:
            result = result_from_dict(json.loads(text))
        except (json.JSONDecodeError, KernelError):
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(text)
        return result

    def put(self, key: str, result: "SimulationResult") -> None:
        """Store ``result`` under ``key``, atomically.  Never raises
        ``OSError`` — a failed write is counted and the result simply
        stays uncached."""
        if self._disabled:
            return
        text = json.dumps(result_to_dict(result))
        try:
            self._write_entry(self._path(key), text)
        except OSError as error:
            self._note_io_error("write", error)
            return
        self.stats.stores += 1
        self.stats.bytes_written += len(text)

    def entry_count(self) -> int:
        """Entries currently on disk for the active schema version."""
        versioned = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if not versioned.is_dir():
            return 0
        return sum(1 for _ in versioned.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry of the active schema version; returns count.

        Emptied ``<key[:2]>`` fan-out directories are removed as well,
        so a cleared cache leaves no skeleton behind.
        """
        versioned = self.root / f"v{CACHE_SCHEMA_VERSION}"
        removed = 0
        if versioned.is_dir():
            for entry in versioned.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for subdir in versioned.iterdir():
                if subdir.is_dir():
                    try:
                        subdir.rmdir()
                    except OSError:
                        pass  # not empty (foreign files) or in use
        return removed
