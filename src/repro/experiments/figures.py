"""Drivers regenerating every figure of the paper's evaluation.

Each ``figN_*`` function returns a result object holding the same series
the paper plots, a ``format()`` ASCII rendering, and (where the paper
states headline numbers) the aggregate our EXPERIMENTS.md compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..config import bow_wr_config
from ..core.occupancy import (
    OccupancySample,
    boc_occupancy_histogram,
    source_operand_histogram,
)
from ..core.window import read_bypass_counts, write_bypass_opportunity_counts
from ..energy.model import EnergyModel
from ..isa import WritebackHint
from ..isa.registers import SINK_REGISTER
from ..kernels.suites import benchmark_names
from ..stats.metrics import RunMetrics
from ..stats.report import format_barchart, format_percent, format_table
from .grid import run_grid
from .runner import QUICK, RunScale, benchmark_trace

_DEFAULT_WINDOWS = (2, 3, 4, 5, 6, 7)
_IPC_WINDOWS = (2, 3, 4)


# ---------------------------------------------------------------------------
# Figure 1 — on-chip memory sizes across GPU generations (intro context)
# ---------------------------------------------------------------------------

#: MB of on-chip storage per generation (flagship of each line), as the
#: paper's Figure 1 charts them: the RF grows to dominate on-chip state.
ONCHIP_MEMORY_MB: Dict[str, Dict[str, float]] = {
    "FERMI (2010)": {"l1d+shared": 1.0, "l2": 0.75, "register_file": 2.0},
    "KEPLER (2012)": {"l1d+shared": 0.94, "l2": 1.5, "register_file": 3.75},
    "MAXWELL (2014)": {"l1d+shared": 2.25, "l2": 3.0, "register_file": 6.0},
    "PASCAL (2016)": {"l1d+shared": 4.9, "l2": 4.0, "register_file": 14.0},
    "VOLTA (2018)": {"l1d+shared": 10.0, "l2": 6.0, "register_file": 20.0},
}


@dataclass(frozen=True)
class Fig1Result:
    """On-chip memory sizes by generation (MB)."""

    sizes_mb: Dict[str, Dict[str, float]]

    def rf_fraction(self, generation: str) -> float:
        row = self.sizes_mb[generation]
        return row["register_file"] / sum(row.values())

    def format(self) -> str:
        rows = [
            [gen, row["l1d+shared"], row["l2"], row["register_file"],
             format_percent(self.rf_fraction(gen))]
            for gen, row in self.sizes_mb.items()
        ]
        return format_table(
            ["generation", "L1D+shared MB", "L2 MB", "RF MB", "RF share"],
            rows,
            title="Figure 1: on-chip memory per NVIDIA generation",
        )


def fig1_onchip_memory() -> Fig1Result:
    """The Figure 1 dataset (static: published GPU configurations)."""
    return Fig1Result(sizes_mb=ONCHIP_MEMORY_MB)


# ---------------------------------------------------------------------------
# Figure 3 — eliminated read/write requests vs window size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3Result:
    """Bypass opportunity per benchmark and window size.

    ``reads[bench][iw]`` / ``writes[bench][iw]`` are elimination
    fractions; ``average`` rows aggregate over the suite.
    """

    windows: Tuple[int, ...]
    reads: Dict[str, Dict[int, float]]
    writes: Dict[str, Dict[int, float]]

    def average_reads(self, window_size: int) -> float:
        return sum(b[window_size] for b in self.reads.values()) / len(self.reads)

    def average_writes(self, window_size: int) -> float:
        return sum(b[window_size] for b in self.writes.values()) / len(self.writes)

    def format(self) -> str:
        headers = ["benchmark"] + [f"IW{iw}" for iw in self.windows]
        read_rows = [
            [bench] + [format_percent(per_iw[iw]) for iw in self.windows]
            for bench, per_iw in self.reads.items()
        ]
        read_rows.append(
            ["AVERAGE"]
            + [format_percent(self.average_reads(iw)) for iw in self.windows]
        )
        write_rows = [
            [bench] + [format_percent(per_iw[iw]) for iw in self.windows]
            for bench, per_iw in self.writes.items()
        ]
        write_rows.append(
            ["AVERAGE"]
            + [format_percent(self.average_writes(iw)) for iw in self.windows]
        )
        return (
            format_table(headers, read_rows,
                         title="Figure 3 (top): eliminated read requests")
            + "\n\n"
            + format_table(headers, write_rows,
                           title="Figure 3 (bottom): eliminated write requests")
        )


def fig3_bypass_opportunity(
    windows: Tuple[int, ...] = _DEFAULT_WINDOWS,
    scale: RunScale = QUICK,
) -> Fig3Result:
    """Reproduce Figure 3 by sliding-window analysis of the suite traces."""
    reads: Dict[str, Dict[int, float]] = {}
    writes: Dict[str, Dict[int, float]] = {}
    for bench in benchmark_names():
        trace = benchmark_trace(bench, scale)
        reads[bench] = {}
        writes[bench] = {}
        for iw in windows:
            read_hits = read_total = write_hits = write_total = 0
            for warp in trace:
                hits, total = read_bypass_counts(warp.instructions, iw)
                read_hits += hits
                read_total += total
                hits, total = write_bypass_opportunity_counts(
                    warp.instructions, iw
                )
                write_hits += hits
                write_total += total
            reads[bench][iw] = read_hits / max(1, read_total)
            writes[bench][iw] = write_hits / max(1, write_total)
    return Fig3Result(windows=windows, reads=reads, writes=writes)


# ---------------------------------------------------------------------------
# Figure 4 — time spent in the operand-collection stage
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Result:
    """Fraction of instruction execution time spent in the OC stage."""

    overall: Dict[str, float]
    memory: Dict[str, float]
    non_memory: Dict[str, float]

    def average_overall(self) -> float:
        return sum(self.overall.values()) / len(self.overall)

    def format(self) -> str:
        rows = [
            [bench,
             format_percent(self.non_memory[bench]),
             format_percent(self.memory[bench]),
             format_percent(self.overall[bench])]
            for bench in self.overall
        ]
        rows.append(["AVERAGE",
                     format_percent(sum(self.non_memory.values()) / len(self.non_memory)),
                     format_percent(sum(self.memory.values()) / len(self.memory)),
                     format_percent(self.average_overall())])
        return format_table(
            ["benchmark", "non-memory", "memory", "overall"],
            rows,
            title="Figure 4: time in operand-collection stage (baseline)",
        )


def fig4_oc_latency(scale: RunScale = QUICK) -> Fig4Result:
    """Reproduce Figure 4 from baseline timing runs."""
    grid = run_grid(benchmark_names(), ("baseline",), scale=scale)
    overall: Dict[str, float] = {}
    memory: Dict[str, float] = {}
    non_memory: Dict[str, float] = {}
    for bench in benchmark_names():
        counters = grid.get(bench, "baseline").counters
        lifetime = max(1, counters.lifetime_cycles)
        lifetime_mem = max(1, counters.lifetime_cycles_memory)
        lifetime_non = max(1, lifetime - counters.lifetime_cycles_memory)
        oc_non = counters.oc_wait_cycles - counters.oc_wait_cycles_memory
        overall[bench] = counters.oc_wait_cycles / lifetime
        memory[bench] = counters.oc_wait_cycles_memory / lifetime_mem
        non_memory[bench] = oc_non / lifetime_non
    return Fig4Result(overall=overall, memory=memory, non_memory=non_memory)


# ---------------------------------------------------------------------------
# Figure 7 — distribution of write destinations under BOW-WR
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    """Three-way writeback split per benchmark (dynamic-weighted)."""

    rf_only: Dict[str, float]
    both: Dict[str, float]
    oc_only: Dict[str, float]

    def averages(self) -> Tuple[float, float, float]:
        n = len(self.rf_only)
        return (
            sum(self.rf_only.values()) / n,
            sum(self.both.values()) / n,
            sum(self.oc_only.values()) / n,
        )

    def format(self) -> str:
        rows = [
            [bench,
             format_percent(self.rf_only[bench]),
             format_percent(self.both[bench]),
             format_percent(self.oc_only[bench])]
            for bench in self.rf_only
        ]
        avg = self.averages()
        rows.append(["AVERAGE"] + [format_percent(v) for v in avg])
        return format_table(
            ["benchmark", "RF only", "OC then RF", "OC only (transient)"],
            rows,
            title="Figure 7: write destinations under BOW-WR (IW=3)",
        )


def fig7_write_destinations(
    window_size: int = 3, scale: RunScale = QUICK
) -> Fig7Result:
    """Reproduce Figure 7: hint bits weighted by dynamic execution."""
    rf_only: Dict[str, float] = {}
    both: Dict[str, float] = {}
    oc_only: Dict[str, float] = {}
    for bench in benchmark_names():
        trace = benchmark_trace(bench, scale, window_size=window_size)
        counts = {WritebackHint.RF_ONLY: 0, WritebackHint.BOTH: 0,
                  WritebackHint.OC_ONLY: 0}
        for warp in trace:
            for inst in warp:
                if inst.dest is not None and inst.dest != SINK_REGISTER:
                    counts[inst.hint] += 1
        total = max(1, sum(counts.values()))
        rf_only[bench] = counts[WritebackHint.RF_ONLY] / total
        both[bench] = counts[WritebackHint.BOTH] / total
        oc_only[bench] = counts[WritebackHint.OC_ONLY] / total
    return Fig7Result(rf_only=rf_only, both=both, oc_only=oc_only)


# ---------------------------------------------------------------------------
# Figure 8 — OCU occupancy (source operands per instruction)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    """Source-operand count distribution per benchmark."""

    histograms: Dict[str, Dict[int, float]]

    def average(self, operands: int) -> float:
        return sum(h[operands] for h in self.histograms.values()) / len(
            self.histograms
        )

    def format(self) -> str:
        rows = [
            [bench] + [format_percent(hist[k]) for k in (0, 1, 2, 3)]
            for bench, hist in self.histograms.items()
        ]
        rows.append(["AVERAGE"] + [format_percent(self.average(k))
                                   for k in (0, 1, 2, 3)])
        return format_table(
            ["benchmark", "0 src", "1 src", "2 src", "3 src"],
            rows,
            title="Figure 8: OCU source-operand occupancy",
        )


def fig8_ocu_occupancy(scale: RunScale = QUICK) -> Fig8Result:
    """Reproduce Figure 8 by a census over the suite's dynamic traces."""
    histograms = {
        bench: source_operand_histogram(benchmark_trace(bench, scale))
        for bench in benchmark_names()
    }
    return Fig8Result(histograms=histograms)


# ---------------------------------------------------------------------------
# Figure 9 — BOC entry occupancy at IW=3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9Result:
    """Per-benchmark BOC occupancy samples (conservative 12-entry BOC)."""

    samples: Dict[str, OccupancySample]

    def fraction_above_half(self, bench: str) -> float:
        sample = self.samples[bench]
        return sample.fraction_above(sample.capacity // 2)

    def average_above_half(self) -> float:
        return sum(
            self.fraction_above_half(b) for b in self.samples
        ) / len(self.samples)

    def max_observed(self) -> int:
        return max(sample.max_observed for sample in self.samples.values())

    def format(self) -> str:
        rows = []
        for bench, sample in self.samples.items():
            rows.append([
                bench,
                sample.max_observed,
                format_percent(self.fraction_above_half(bench)),
            ])
        rows.append(["AVERAGE", self.max_observed(),
                     format_percent(self.average_above_half())])
        return format_table(
            ["benchmark", "max entries used", "> half capacity"],
            rows,
            title="Figure 9: BOC occupancy (IW=3, 12-entry BOC)",
        )


def fig9_boc_occupancy(
    window_size: int = 3, scale: RunScale = QUICK
) -> Fig9Result:
    """Reproduce Figure 9 by sampling BOC entry usage during BOW-WR runs."""
    samples: Dict[str, OccupancySample] = {}
    for bench in benchmark_names():
        trace = benchmark_trace(bench, scale, window_size=window_size)
        samples[bench] = boc_occupancy_histogram(
            trace,
            bow=bow_wr_config(window_size),
            memory_seed=scale.memory_seed,
        )
    return Fig9Result(samples=samples)


# ---------------------------------------------------------------------------
# Figures 10/11 — IPC improvement
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IpcResult:
    """IPC improvement over the baseline per benchmark and window size."""

    design: str
    windows: Tuple[int, ...]
    improvement: Dict[str, Dict[int, float]]

    def average(self, window_size: int) -> float:
        return sum(b[window_size] for b in self.improvement.values()) / len(
            self.improvement
        )

    def format(self) -> str:
        headers = ["benchmark"] + [f"IW{iw}" for iw in self.windows]
        rows = [
            [bench] + [format_percent(per_iw[iw]) for iw in self.windows]
            for bench, per_iw in self.improvement.items()
        ]
        rows.append(
            ["AVERAGE"]
            + [format_percent(self.average(iw)) for iw in self.windows]
        )
        table = format_table(
            headers, rows, title=f"IPC improvement: {self.design}"
        )
        chart_iw = 3 if 3 in self.windows else self.windows[0]
        chart = format_barchart(
            [(bench, max(0.0, per_iw[chart_iw]))
             for bench, per_iw in self.improvement.items()],
            title=f"\nIW{chart_iw}:",
        )
        return table + "\n" + chart


def _ipc_improvement(
    design: str, windows: Tuple[int, ...], scale: RunScale
) -> IpcResult:
    grid = run_grid(benchmark_names(), ("baseline", design), windows,
                    scale=scale)
    improvement: Dict[str, Dict[int, float]] = {}
    for bench in benchmark_names():
        base = grid.get(bench, "baseline")
        improvement[bench] = {
            iw: grid.get(bench, design, iw).ipc / base.ipc - 1.0
            for iw in windows
        }
    return IpcResult(design=design, windows=windows, improvement=improvement)


def fig10_ipc_improvement(
    windows: Tuple[int, ...] = _IPC_WINDOWS, scale: RunScale = QUICK
) -> Tuple[IpcResult, IpcResult]:
    """Reproduce Figure 10: (a) BOW and (b) BOW-WR IPC improvements."""
    return (
        _ipc_improvement("bow", windows, scale),
        _ipc_improvement("bow-wr", windows, scale),
    )


def fig10_device_ipc(
    num_sms: int = 4,
    windows: Tuple[int, ...] = (3,),
    scale: RunScale = QUICK,
) -> Tuple[IpcResult, IpcResult]:
    """Figure 10 regenerated at device scale.

    The same ``benchmark x design x IW`` grid, but every point is
    partitioned across ``num_sms`` SMs by the device layer
    (:mod:`repro.gpu.device`), so the IPC entering each improvement
    ratio is *device* IPC — total instructions over the slowest SM's
    finish time — rather than a one-SM proxy.  The baseline is the
    unmodified GPU at the *same* SM count, so the ratios isolate the
    register-file subsystem exactly as the single-SM figure does.
    """
    device = replace(scale, num_sms=num_sms)
    return (
        _ipc_improvement("bow", windows, device),
        _ipc_improvement("bow-wr", windows, device),
    )


def fig11_halfsize_ipc(
    window_size: int = 3, scale: RunScale = QUICK
) -> IpcResult:
    """Reproduce Figure 11: BOW-WR with the 6-entry (half-size) BOC."""
    return _ipc_improvement("bow-wr-half", (window_size,), scale)


# ---------------------------------------------------------------------------
# Figure 12 — cycles spent in the OC stage, normalized
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig12Result:
    """OC residency (per instruction) normalized to the baseline."""

    windows: Tuple[int, ...]
    residency: Dict[str, Dict[int, float]]

    def average(self, window_size: int) -> float:
        return sum(b[window_size] for b in self.residency.values()) / len(
            self.residency
        )

    def format(self) -> str:
        headers = ["benchmark"] + [f"IW{iw}" for iw in self.windows]
        rows = [
            [bench] + [per_iw[iw] for iw in self.windows]
            for bench, per_iw in self.residency.items()
        ]
        rows.append(["AVERAGE"] + [self.average(iw) for iw in self.windows])
        return format_table(
            headers, rows,
            title="Figure 12: OC-stage cycles normalized to baseline (BOW)",
        )


def fig12_oc_residency(
    windows: Tuple[int, ...] = _IPC_WINDOWS, scale: RunScale = QUICK
) -> Fig12Result:
    """Reproduce Figure 12 from the BOW runs' residency counters."""
    grid = run_grid(benchmark_names(), ("baseline", "bow"), windows,
                    scale=scale)
    residency: Dict[str, Dict[int, float]] = {}
    for bench in benchmark_names():
        base = RunMetrics.from_counters(grid.get(bench, "baseline").counters)
        residency[bench] = {
            iw: RunMetrics.from_counters(
                grid.get(bench, "bow", iw).counters
            ).oc_residency_vs(base)
            for iw in windows
        }
    return Fig12Result(windows=windows, residency=residency)


# ---------------------------------------------------------------------------
# Figure 13 — normalized RF dynamic energy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig13Result:
    """Normalized RF dynamic energy with overhead split, per design."""

    design: str
    rf_fraction: Dict[str, float]
    overhead_fraction: Dict[str, float]

    def total(self, bench: str) -> float:
        return self.rf_fraction[bench] + self.overhead_fraction[bench]

    def average_total(self) -> float:
        return sum(self.total(b) for b in self.rf_fraction) / len(self.rf_fraction)

    def average_overhead(self) -> float:
        return sum(self.overhead_fraction.values()) / len(self.overhead_fraction)

    def average_savings(self) -> float:
        return 1.0 - self.average_total()

    def format(self) -> str:
        rows = [
            [bench,
             format_percent(self.rf_fraction[bench]),
             format_percent(self.overhead_fraction[bench]),
             format_percent(self.total(bench))]
            for bench in self.rf_fraction
        ]
        rows.append(["AVERAGE",
                     format_percent(self.average_total() - self.average_overhead()),
                     format_percent(self.average_overhead()),
                     format_percent(self.average_total())])
        table = format_table(
            ["benchmark", "RF dynamic", "overhead", "total"],
            rows,
            title=f"Figure 13: normalized RF dynamic energy ({self.design})",
        )
        chart = format_barchart(
            [(bench, self.total(bench)) for bench in self.rf_fraction],
            title="\nnormalized total (shorter is better):",
            max_value=1.0,
        )
        return table + "\n" + chart


def fig13_energy(
    window_size: int = 3, scale: RunScale = QUICK
) -> Tuple[Fig13Result, Fig13Result]:
    """Reproduce Figure 13: (a) BOW and (b) BOW-WR normalized energy."""
    grid = run_grid(benchmark_names(), ("baseline", "bow", "bow-wr"),
                    (window_size,), scale=scale)
    results = []
    for design in ("bow", "bow-wr"):
        model = EnergyModel()
        rf_fraction: Dict[str, float] = {}
        overhead_fraction: Dict[str, float] = {}
        for bench in benchmark_names():
            base = grid.get(bench, "baseline").counters
            counters = grid.get(bench, design, window_size).counters
            normalized = model.normalized(counters, base)
            rf_fraction[bench] = normalized.rf_energy_pj
            overhead_fraction[bench] = normalized.overhead_pj
        results.append(Fig13Result(design=design, rf_fraction=rf_fraction,
                                   overhead_fraction=overhead_fraction))
    return results[0], results[1]


# ---------------------------------------------------------------------------
# RFC comparison (SS V-A)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RfcResult:
    """RFC vs BOW-WR: IPC gain, energy savings, storage overhead."""

    rfc_ipc_gain: Dict[str, float]
    bow_wr_ipc_gain: Dict[str, float]
    rfc_energy_savings: float
    bow_wr_energy_savings: float
    rfc_storage_kb: float
    bow_wr_half_storage_kb: float

    def average_rfc_gain(self) -> float:
        return sum(self.rfc_ipc_gain.values()) / len(self.rfc_ipc_gain)

    def average_bow_wr_gain(self) -> float:
        return sum(self.bow_wr_ipc_gain.values()) / len(self.bow_wr_ipc_gain)

    def format(self) -> str:
        rows = [
            [bench,
             format_percent(self.rfc_ipc_gain[bench]),
             format_percent(self.bow_wr_ipc_gain[bench])]
            for bench in self.rfc_ipc_gain
        ]
        rows.append(["AVERAGE",
                     format_percent(self.average_rfc_gain()),
                     format_percent(self.average_bow_wr_gain())])
        table = format_table(
            ["benchmark", "RFC IPC gain", "BOW-WR IPC gain"],
            rows,
            title="RFC comparison (SS V-A)",
        )
        summary = (
            f"\nRFC energy savings: {format_percent(self.rfc_energy_savings)}"
            f" | BOW-WR: {format_percent(self.bow_wr_energy_savings)}"
            f"\nRFC storage: {self.rfc_storage_kb:.0f} KB"
            f" | BOW-WR half-size: {self.bow_wr_half_storage_kb:.0f} KB"
        )
        return table + summary


def rfc_comparison(
    window_size: int = 3, scale: RunScale = QUICK
) -> RfcResult:
    """Reproduce the SS V-A comparison against register-file caching."""
    from ..core.rfc import RFC_ENTRIES_PER_WARP

    grid = run_grid(benchmark_names(), ("baseline", "rfc", "bow-wr"),
                    (window_size,), scale=scale)
    model = EnergyModel()
    rfc_gain: Dict[str, float] = {}
    wr_gain: Dict[str, float] = {}
    rfc_energy = []
    wr_energy = []
    for bench in benchmark_names():
        base = grid.get(bench, "baseline")
        rfc = grid.get(bench, "rfc")
        wr = grid.get(bench, "bow-wr", window_size)
        rfc_gain[bench] = rfc.ipc / base.ipc - 1.0
        wr_gain[bench] = wr.ipc / base.ipc - 1.0
        rfc_energy.append(model.savings(rfc.counters, base.counters))
        wr_energy.append(model.savings(wr.counters, base.counters))

    warp_reg_bytes = 128
    rfc_storage = RFC_ENTRIES_PER_WARP * warp_reg_bytes * 32 / 1024
    # BOW-WR's overhead is the storage *added over* the conventional
    # collectors (3 entries each), the paper's 12 KB figure.
    half = bow_wr_config(window_size, half_size=True)
    half_storage = (half.total_boc_bytes() - 3 * warp_reg_bytes * 32) / 1024
    return RfcResult(
        rfc_ipc_gain=rfc_gain,
        bow_wr_ipc_gain=wr_gain,
        rfc_energy_savings=sum(rfc_energy) / len(rfc_energy),
        bow_wr_energy_savings=sum(wr_energy) / len(wr_energy),
        rfc_storage_kb=rfc_storage,
        bow_wr_half_storage_kb=half_storage,
    )
