"""Parallel fan-out over the ``benchmark x design x IW`` experiment grid.

``run_grid`` is the sweep engine every figure/table driver routes its
timing runs through: it resolves each grid point against the in-process
memo and the on-disk cache (:mod:`repro.experiments.cache`), then
executes the remaining points — serially for ``jobs=1``, or across a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — and fans
the results back into both cache layers.  Determinism is independent of
parallelism: every point's memory seed comes from its
:class:`~repro.experiments.runner.RunScale`, never from worker identity
or completion order, so ``jobs=8`` and ``jobs=1`` produce bit-identical
results.

The returned :class:`GridResult` carries per-run wall times and
provenance (memo / cache / simulated) plus a cache-counter snapshot, so
callers — and the CI warm-cache smoke test — can verify claims like
"this pass performed zero simulator invocations".

Execution is **fault tolerant** (see :mod:`repro.experiments.resilience`
for the policy pieces): a failing point is retried per its
:class:`~repro.experiments.resilience.RetryPolicy` and, once exhausted,
recorded as a :class:`~repro.experiments.resilience.PointFailure` on
``GridResult.failures`` instead of killing the sweep.  Completed
results are drained into the memo and disk cache as they arrive, so
nothing finished is ever lost to a sibling's crash; a dead worker pool
(``BrokenProcessPool``) is rebuilt and its in-flight points
resubmitted.  With ``strict`` (the default for figure drivers) any
residual failure raises *after* fan-in; with ``strict=False``
(``repro sweep --keep-going``) the partial grid is returned.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, SweepPointError, SweepTimeoutError
from ..gpu.sm import SimulationResult
from ..stats.cache import CacheStats
from ..stats.report import format_table
from . import runner
from .cache import RunCache, run_key
from .resilience import (
    DEFAULT_POLICY,
    TRANSIENT,
    PointFailure,
    RetryPolicy,
    classify_failure,
    describe_failure,
)
from .runner import QUICK, RunScale

#: Environment variable giving the default worker count for sweeps.
JOBS_ENV = "REPRO_JOBS"

_default_jobs: Optional[int] = None

#: Optional ``(function, args)`` pair run in every pool worker at
#: start-up.  ``repro.testing.faults`` sets this so its hooks are
#: installed inside workers even under spawn-based multiprocessing
#: (fork inherits the parent's monkeypatches automatically).
_pool_initializer: Optional[Tuple[Callable, tuple]] = None


def default_jobs() -> int:
    """The worker count used when ``run_grid`` is called without one."""
    if _default_jobs is not None:
        return _default_jobs
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set (or with ``None`` unset) the process-wide default worker count."""
    global _default_jobs
    _default_jobs = None if jobs is None else max(1, int(jobs))


@contextmanager
def using_jobs(jobs: Optional[int]):
    """Temporarily override the default worker count (CLI plumbing)."""
    previous = _default_jobs
    set_default_jobs(jobs)
    try:
        yield
    finally:
        set_default_jobs(previous)


@dataclass(frozen=True)
class GridPoint:
    """One cell of the experiment grid."""

    benchmark: str
    design: str
    window: int

    def label(self) -> str:
        suffix = f" IW{self.window}" if self.window else ""
        return f"{self.benchmark}/{self.design}{suffix}"


@dataclass(frozen=True)
class RunRecord:
    """Provenance and wall time of one resolved grid point.

    ``attempts`` counts simulator executions this resolution consumed:
    ``0`` for memo/cache hits, ``1`` for a clean simulation, more when
    the retry policy re-ran a faulting point.
    """

    point: GridPoint
    source: str  # "memo" | "cache" | "sim"
    seconds: float
    attempts: int = 0


@dataclass
class GridResult:
    """Everything one ``run_grid`` call resolved.

    ``results`` holds the points that succeeded; ``failures`` the
    points that exhausted their retry policy.  Every point appears in
    exactly one of the two, so ``len(results) + len(failures)`` always
    equals the grid size — a failing sibling never loses a completed
    result.
    """

    scale: RunScale
    jobs: int
    results: Dict[Tuple[str, str, int], SimulationResult]
    records: List[RunRecord] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def get(self, benchmark: str, design: str,
            window: int = 3) -> SimulationResult:
        """The result of one grid point.

        Raises :class:`~repro.errors.SweepPointError` naming the
        original failure if the point failed, and
        :class:`~repro.errors.ExperimentError` if it was never part of
        this grid.
        """
        key = (benchmark.upper(), design,
               runner.effective_window(design, window))
        try:
            return self.results[key]
        except KeyError:
            pass
        for failure in self.failures:
            if (failure.benchmark.upper(), failure.design,
                    failure.window) == key:
                raise failure.to_error()
        raise ExperimentError(
            f"{benchmark}/{design} IW{window} was not part of this grid"
        ) from None

    @property
    def simulated(self) -> int:
        """Points that required a simulator invocation."""
        return sum(1 for record in self.records if record.source == "sim")

    @property
    def from_cache(self) -> int:
        """Points served by the on-disk cache."""
        return sum(1 for record in self.records if record.source == "cache")

    @property
    def from_memo(self) -> int:
        """Points served by the in-process memo."""
        return sum(1 for record in self.records if record.source == "memo")

    @property
    def failed(self) -> int:
        """Points that exhausted their retry policy."""
        return len(self.failures)

    @property
    def ok(self) -> bool:
        """Whether every point resolved."""
        return not self.failures

    def raise_failures(self) -> None:
        """Raise a :class:`~repro.errors.SweepPointError` if any point
        failed (what ``strict`` mode does after fan-in)."""
        if not self.failures:
            return
        first = self.failures[0]
        if len(self.failures) == 1:
            raise first.to_error()
        raise SweepPointError(
            first.label, first.kind, first.attempts, first.error_type,
            f"{first.message} (+{len(self.failures) - 1} more failed "
            f"point(s))", first.traceback_text)

    def format(self) -> str:
        """Per-run table plus a one-line totals summary."""
        rows = []
        for record in sorted(
            self.records,
            key=lambda r: (r.point.benchmark, r.point.design, r.point.window),
        ):
            result = self.results[(
                record.point.benchmark.upper(), record.point.design,
                record.point.window,
            )]
            rows.append([
                record.point.benchmark,
                record.point.design,
                record.point.window or "-",
                result.counters.cycles,
                f"{result.ipc:.3f}",
                record.source,
                f"{record.seconds:.2f}s",
            ])
        table = format_table(
            ["benchmark", "design", "IW", "cycles", "IPC", "source", "time"],
            rows,
            title=(f"Sweep: {len(self.records)} runs, jobs={self.jobs}, "
                   f"{self.scale.num_warps} warps x{self.scale.trace_scale} "
                   f"seed {self.scale.memory_seed}"
                   + (f", {self.scale.num_sms} SMs"
                      if self.scale.num_sms > 1 else "")),
        )
        summary = (
            f"\n{self.simulated} simulated, {self.from_cache} from disk "
            f"cache, {self.from_memo} memoized in {self.wall_seconds:.2f}s"
            + (f", {self.failed} FAILED" if self.failures else "")
            + f"\ncache: {self.cache_stats.format()}"
        )
        if self.failures:
            failure_rows = [
                [failure.label, failure.kind, failure.attempts,
                 f"{failure.seconds:.2f}s",
                 f"{failure.error_type}: {failure.message}"[:60]]
                for failure in sorted(self.failures,
                                      key=lambda item: item.label)
            ]
            summary += "\n" + format_table(
                ["point", "kind", "attempts", "time", "error"],
                failure_rows,
                title=f"Failures: {len(self.failures)} point(s)",
            )
        return table + summary


def _grid_worker(
    args: Tuple[str, str, int, RunScale],
    marker: Optional[str] = None,
) -> Tuple[float, SimulationResult]:
    """Execute one grid point in a pool worker; returns (seconds, result).

    ``marker`` names a file written with this worker's PID when
    execution starts and removed when it finishes: if the worker dies
    mid-point the orphaned marker tells the parent *which* worker this
    point had started on when the pool broke (see ``_run_parallel``'s
    blame accounting).
    """
    benchmark, design, window, scale = args
    if marker is not None:
        try:
            with open(marker, "w") as handle:
                handle.write(str(os.getpid()))
        except OSError:
            marker = None  # sweep already tore the marker dir down
    started = time.perf_counter()
    try:
        result = runner.execute_run(benchmark, design, window_size=window,
                                    scale=scale)
    finally:
        if marker is not None:
            try:
                os.unlink(marker)
            except OSError:
                pass
    return time.perf_counter() - started, result


def _point_failure(point: GridPoint, error: BaseException, attempts: int,
                   seconds: float) -> PointFailure:
    return describe_failure(point.benchmark, point.design, point.window,
                            point.label(), error, attempts, seconds)


def _run_serial(
    pending: Sequence[GridPoint],
    scale: RunScale,
    policy: RetryPolicy,
    finish: Callable[[GridPoint, float, SimulationResult, int], None],
    fail: Callable[[PointFailure], None],
) -> None:
    """Resolve ``pending`` in-process, honouring the retry policy.

    The per-point timeout cannot preempt an in-process simulation, so
    it is enforced *after* each attempt returns: an over-budget result
    is discarded and recorded exactly as the parallel path would — the
    two modes produce identical failure records for the same faults.
    """
    for point in pending:
        attempts = 0
        total = 0.0
        while True:
            attempts += 1
            started = time.perf_counter()
            try:
                seconds, run = _grid_worker(
                    (point.benchmark, point.design, point.window, scale)
                )
            except Exception as error:  # noqa: BLE001 — taxonomy decides
                total += time.perf_counter() - started
                kind = classify_failure(error)
                if policy.should_retry(kind, attempts):
                    time.sleep(policy.delay(attempts))
                    continue
                fail(_point_failure(point, error, attempts, total))
                break
            total += seconds
            if policy.timeout is not None and seconds > policy.timeout:
                error = SweepTimeoutError(point.label(), seconds,
                                          policy.timeout)
                if policy.should_retry(TRANSIENT, attempts):
                    time.sleep(policy.delay(attempts))
                    continue
                fail(_point_failure(point, error, attempts, total))
                break
            finish(point, seconds, run, attempts)
            break


def _dead_worker_pids(pool: ProcessPoolExecutor):
    """PIDs of workers that died abnormally, or ``None`` if unknown.

    After a ``BrokenProcessPool`` the executor SIGTERMs its surviving
    workers, so exit codes separate the culprit (a fault's exit code, a
    kernel OOM-kill's ``-SIGKILL``) from innocents cleaned up with
    ``-SIGTERM``.  Inspects the executor's private process table —
    returns ``None`` (attribution unavailable) if the internals ever
    change shape, and the caller falls back to charging every started
    point.
    """
    try:
        processes = dict(pool._processes)
    except (AttributeError, TypeError):
        return None
    if not processes:
        return None
    culprits = set()
    for pid, process in processes.items():
        try:
            process.join(timeout=5.0)
            code = process.exitcode
        except (OSError, ValueError, AssertionError):
            code = None
        if code is None or code not in (0, -signal.SIGTERM):
            culprits.add(pid)
    return culprits or None


def _marker_pid(marker: Optional[str]) -> Optional[int]:
    """The worker PID recorded in a started-marker, if it exists."""
    if not marker:
        return None
    try:
        with open(marker) as handle:
            return int(handle.read().strip() or "0")
    except (OSError, ValueError):
        return None


def _run_parallel(
    pending: Sequence[GridPoint],
    scale: RunScale,
    jobs: int,
    policy: RetryPolicy,
    finish: Callable[[GridPoint, float, SimulationResult, int], None],
    fail: Callable[[PointFailure], None],
) -> None:
    """Resolve ``pending`` on a worker pool, honouring the retry policy.

    Completed futures are always drained (and handed to ``finish``,
    which caches them) before anything else happens, so a crashing
    sibling can never lose finished work.  A ``BrokenProcessPool``
    tears the pool down, rebuilds it, and resubmits every in-flight
    point; per-point deadlines abandon the running future (the worker
    cannot be killed, but its eventual result is ignored) and retry or
    fail the point.

    Blame accounting on a pool break: a dead worker is anonymous, so
    the engine cannot directly observe *which* point killed it.  Each
    worker records its PID in a per-submission marker file when it
    starts a point and removes the marker when done.  On a break the
    engine joins the dead workers and reads their exit codes: points
    whose orphaned marker names an abnormally-dead worker are charged
    an attempt; points that never started, or whose worker was merely
    SIGTERMed by pool cleanup, are resubmitted for free.  A sibling
    therefore cannot exhaust its retry budget just because a crashier
    neighbour keeps breaking the pool — the same fault yields the same
    failure records at ``jobs=1`` and ``jobs=8``.
    """
    attempts: Dict[GridPoint, int] = {point: 0 for point in pending}
    elapsed: Dict[GridPoint, float] = {point: 0.0 for point in pending}
    #: (point, earliest submission time) — backoff delays live here.
    ready: List[Tuple[GridPoint, float]] = [(p, 0.0) for p in pending]
    futures: Dict[object, GridPoint] = {}
    started_at: Dict[object, float] = {}
    markers: Dict[object, str] = {}
    marker_dir = tempfile.mkdtemp(prefix="repro-grid-")
    marker_serial = 0
    pool: Optional[ProcessPoolExecutor] = None

    def open_pool(size_hint: int) -> ProcessPoolExecutor:
        kwargs = {}
        if _pool_initializer is not None:
            func, initargs = _pool_initializer
            kwargs = {"initializer": func, "initargs": initargs}
        return ProcessPoolExecutor(
            max_workers=min(jobs, max(1, size_hint)), **kwargs
        )

    def retry_or_fail(point: GridPoint, error: BaseException,
                      extra_seconds: float) -> None:
        elapsed[point] += extra_seconds
        kind = classify_failure(error)
        if policy.should_retry(kind, attempts[point]):
            ready.append(
                (point, time.monotonic() + policy.delay(attempts[point]))
            )
        else:
            fail(_point_failure(point, error, attempts[point],
                                elapsed[point]))

    def resubmit_free(point: GridPoint) -> None:
        attempts[point] -= 1  # the attempt never really ran
        ready.append((point, 0.0))

    try:
        while ready or futures:
            now = time.monotonic()
            if pool is None and ready:
                pool = open_pool(len(ready))
            waiting = []
            for point, not_before in ready:
                if not_before <= now:
                    attempts[point] += 1
                    marker_serial += 1
                    marker = os.path.join(marker_dir,
                                          f"started-{marker_serial}")
                    future = pool.submit(
                        _grid_worker,
                        (point.benchmark, point.design, point.window, scale),
                        marker,
                    )
                    futures[future] = point
                    started_at[future] = time.monotonic()
                    markers[future] = marker
                else:
                    waiting.append((point, not_before))
            ready = waiting

            if not futures:
                # Everything live is waiting out a backoff delay.
                wake = min(not_before for _, not_before in ready)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            # Sleep until a completion, the nearest per-point deadline,
            # or the nearest backoff expiry — whichever comes first.
            wakeups = [not_before for _, not_before in ready]
            if policy.timeout is not None:
                wakeups.extend(started_at[future] + policy.timeout
                               for future in futures)
            timeout = (max(0.0, min(wakeups) - time.monotonic())
                       if wakeups else None)
            done, _ = wait(set(futures), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            broken: List[Tuple[object, GridPoint, float, BaseException]] = []
            for future in done:
                point = futures.pop(future)
                begun = started_at.pop(future)
                try:
                    seconds, run = future.result()
                except BrokenProcessPool as error:
                    broken.append((future, point, begun, error))
                    continue
                except Exception as error:  # noqa: BLE001 — taxonomy decides
                    markers.pop(future, None)
                    retry_or_fail(point, error, time.monotonic() - begun)
                else:
                    markers.pop(future, None)
                    elapsed[point] += seconds
                    if policy.timeout is not None and seconds > policy.timeout:
                        retry_or_fail(
                            point,
                            SweepTimeoutError(point.label(), seconds,
                                              policy.timeout),
                            0.0,
                        )
                    else:
                        finish(point, seconds, run, attempts[point])

            if policy.timeout is not None:
                now = time.monotonic()
                expired = [future for future in futures
                           if started_at[future] + policy.timeout <= now]
                for future in expired:
                    point = futures.pop(future)
                    begun = started_at.pop(future)
                    markers.pop(future, None)
                    future.cancel()  # running futures stay; result ignored
                    retry_or_fail(
                        point,
                        SweepTimeoutError(point.label(), now - begun,
                                          policy.timeout),
                        now - begun,
                    )

            if broken and pool is not None:
                # The pool is dead: every remaining future died with it.
                for future in list(futures):
                    point = futures.pop(future)
                    begun = started_at.pop(future)
                    broken.append((
                        future, point, begun,
                        BrokenProcessPool(
                            "process pool died with this point in flight"),
                    ))
                culprits = _dead_worker_pids(pool)
                for future, point, begun, error in broken:
                    marker = markers.pop(future, None)
                    pid = _marker_pid(marker)
                    if marker:
                        try:
                            os.unlink(marker)
                        except OSError:
                            pass
                    if pid is None:
                        resubmit_free(point)  # never started
                    elif culprits is None or pid in culprits:
                        retry_or_fail(point, error,
                                      time.monotonic() - begun)
                    else:
                        resubmit_free(point)  # worker exonerated
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        shutil.rmtree(marker_dir, ignore_errors=True)


_CACHE_DEFAULT = object()


def run_grid(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    windows: Sequence[int] = (3,),
    scale: RunScale = QUICK,
    jobs: Optional[int] = None,
    cache: object = _CACHE_DEFAULT,
    progress: Optional[Callable[[str], None]] = None,
    retry: Optional[RetryPolicy] = None,
    strict: bool = True,
    telemetry=None,
    points: Optional[Sequence[GridPoint]] = None,
) -> GridResult:
    """Resolve the full ``benchmarks x designs x windows`` grid.

    Args:
        benchmarks: Table III benchmark names.
        designs: registered design names (see
            :func:`repro.core.designs.design_names`).
        windows: instruction windows; windowless designs (baseline,
            rfc) contribute one point regardless.
        points: explicit grid points to resolve *instead of* the
            ``benchmarks x designs x windows`` cross-product — the
            reentrant entry the sweep service batches through.  Each
            item is a :class:`GridPoint` (or a ``(benchmark, design,
            window)`` tuple); windows are normalized to each design's
            effective window and duplicates collapse, exactly as in
            the cross-product path.
        scale: run size; also the source of every point's memory seed.
        jobs: worker processes; ``None`` uses :func:`default_jobs`,
            ``1`` runs serially in-process (no executor).
        cache: a :class:`RunCache`, ``None`` to disable disk caching for
            this call, or leave unset to use the runner's active cache.
        progress: optional callback receiving one line per resolved run.
        retry: retry/timeout policy for failing points (``None`` uses
            :data:`~repro.experiments.resilience.DEFAULT_POLICY`).
        strict: raise a :class:`~repro.errors.SweepPointError` after
            fan-in if any point failed (every completed result is
            cached first either way); ``False`` returns the partial
            grid with ``failures`` populated.
        telemetry: optional
            :class:`~repro.observe.telemetry.TelemetryWriter` (or any
            object with ``emit(dict)``) receiving the JSONL stream —
            a ``start`` header, one ``point``/``failure`` record per
            grid point as it resolves, and a closing ``summary``
            (written before a strict-mode raise, so a failed sweep
            still leaves a complete stream).
    """
    started = time.perf_counter()
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    policy = DEFAULT_POLICY if retry is None else retry
    disk = runner.get_cache() if cache is _CACHE_DEFAULT else cache
    if disk is not None and not isinstance(disk, RunCache):
        raise ExperimentError("cache must be a RunCache or None")

    if points is not None:
        requested = [point if isinstance(point, GridPoint)
                     else GridPoint(*point) for point in points]
    else:
        requested = [GridPoint(benchmark, design, window)
                     for benchmark in benchmarks
                     for design in designs
                     for window in windows]
    for design in {point.design for point in requested}:
        runner.validate_design(design)

    points = []
    seen = set()
    for point in requested:
        effective = runner.effective_window(point.design, point.window)
        key = (point.benchmark.upper(), point.design, effective)
        if key in seen:
            continue
        seen.add(key)
        points.append(GridPoint(point.benchmark, point.design, effective))
    if not points:
        raise ExperimentError("empty grid: no benchmarks/designs/windows")

    result = GridResult(scale=scale, jobs=jobs, results={})

    if telemetry is not None:
        from ..observe.telemetry import TELEMETRY_SCHEMA_VERSION

        telemetry.emit({
            "type": "start",
            "schema": TELEMETRY_SCHEMA_VERSION,
            "points": len(points),
            "jobs": jobs,
            "benchmarks": sorted({p.benchmark.upper() for p in points}),
            "designs": sorted({p.design for p in points}),
            "windows": sorted({p.window for p in points}),
            "scale": {
                "num_warps": scale.num_warps,
                "trace_scale": scale.trace_scale,
                "memory_seed": scale.memory_seed,
                "num_sms": scale.num_sms,
            },
        })

    def note(record: RunRecord) -> None:
        result.records.append(record)
        if telemetry is not None:
            key = (record.point.benchmark.upper(), record.point.design,
                   record.point.window)
            run = result.results[key]
            record_fields = {
                "type": "point",
                "benchmark": record.point.benchmark.upper(),
                "design": record.point.design,
                "window": record.point.window,
                "source": record.source,
                "seconds": record.seconds,
                "attempts": record.attempts,
                "cycles": run.counters.cycles,
                "instructions": run.counters.instructions,
                "ipc": run.ipc,
            }
            if record.source == "sim":
                # Only a fresh simulation says anything about the
                # engine's fast-forward coverage; memo/cache hits
                # would just replay a stale number.
                record_fields["fast_forwarded_cycles"] = (
                    run.counters.fast_forwarded_cycles
                )
            telemetry.emit(record_fields)
        if progress is not None:
            done = len(result.records) + len(result.failures)
            progress(
                f"[{done}/{len(points)}] "
                f"{record.point.label()} ({record.source}, "
                f"{record.seconds:.2f}s)"
            )

    def note_failure(failure: PointFailure) -> None:
        result.failures.append(failure)
        if telemetry is not None:
            telemetry.emit({
                "type": "failure",
                "benchmark": failure.benchmark.upper(),
                "design": failure.design,
                "window": failure.window,
                "label": failure.label,
                "kind": failure.kind,
                "attempts": failure.attempts,
                "seconds": failure.seconds,
                "error_type": failure.error_type,
                "message": failure.message,
            })
        if progress is not None:
            done = len(result.records) + len(result.failures)
            progress(
                f"[{done}/{len(points)}] {failure.label} FAILED "
                f"({failure.kind}, {failure.attempts} attempt(s): "
                f"{failure.error_type}: {failure.message})"
            )

    # Layer 1 + 2: memo, then disk.
    pending: List[GridPoint] = []
    for point in points:
        key = (point.benchmark.upper(), point.design, point.window)
        memoized = runner.memo_lookup(point.benchmark, point.design,
                                      point.window, scale)
        if memoized is not None:
            result.results[key] = memoized
            note(RunRecord(point, "memo", 0.0))
            continue
        if disk is not None:
            fetch_started = time.perf_counter()
            cached = disk.get(run_key(point.benchmark, point.design,
                                      point.window, scale))
            if cached is not None:
                result.results[key] = cached
                runner.memo_store(point.benchmark, point.design,
                                  point.window, scale, cached)
                note(RunRecord(point, "cache",
                               time.perf_counter() - fetch_started))
                continue
        pending.append(point)

    # Layer 3: simulate what remains.
    def finish(point: GridPoint, seconds: float,
               run: SimulationResult, attempts: int = 1) -> None:
        key = (point.benchmark.upper(), point.design, point.window)
        result.results[key] = run
        runner.memo_store(point.benchmark, point.design, point.window,
                          scale, run)
        if disk is not None:
            disk.put(run_key(point.benchmark, point.design, point.window,
                             scale), run)
        note(RunRecord(point, "sim", seconds, attempts))

    if pending and (jobs == 1 or len(pending) == 1):
        _run_serial(pending, scale, policy, finish, note_failure)
    elif pending:
        _run_parallel(pending, scale, jobs, policy, finish, note_failure)

    result.wall_seconds = time.perf_counter() - started
    if disk is not None:
        result.cache_stats = disk.stats.snapshot()
    if telemetry is not None:
        telemetry.emit({
            "type": "summary",
            "wall_seconds": result.wall_seconds,
            "points": len(points),
            "ok": result.ok,
            "simulated": result.simulated,
            "from_cache": result.from_cache,
            "from_memo": result.from_memo,
            "failed": result.failed,
            "cache": result.cache_stats.as_dict(),
        })
    if strict:
        result.raise_failures()
    return result
