"""Parallel fan-out over the ``benchmark x design x IW`` experiment grid.

``run_grid`` is the sweep engine every figure/table driver routes its
timing runs through: it resolves each grid point against the in-process
memo and the on-disk cache (:mod:`repro.experiments.cache`), then
executes the remaining points — serially for ``jobs=1``, or across a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — and fans
the results back into both cache layers.  Determinism is independent of
parallelism: every point's memory seed comes from its
:class:`~repro.experiments.runner.RunScale`, never from worker identity
or completion order, so ``jobs=8`` and ``jobs=1`` produce bit-identical
results.

The returned :class:`GridResult` carries per-run wall times and
provenance (memo / cache / simulated) plus a cache-counter snapshot, so
callers — and the CI warm-cache smoke test — can verify claims like
"this pass performed zero simulator invocations".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..gpu.sm import SimulationResult
from ..stats.cache import CacheStats
from ..stats.report import format_table
from . import runner
from .cache import RunCache, run_key
from .runner import QUICK, RunScale

#: Environment variable giving the default worker count for sweeps.
JOBS_ENV = "REPRO_JOBS"

_default_jobs: Optional[int] = None


def default_jobs() -> int:
    """The worker count used when ``run_grid`` is called without one."""
    if _default_jobs is not None:
        return _default_jobs
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set (or with ``None`` unset) the process-wide default worker count."""
    global _default_jobs
    _default_jobs = None if jobs is None else max(1, int(jobs))


@contextmanager
def using_jobs(jobs: Optional[int]):
    """Temporarily override the default worker count (CLI plumbing)."""
    previous = _default_jobs
    set_default_jobs(jobs)
    try:
        yield
    finally:
        set_default_jobs(previous)


@dataclass(frozen=True)
class GridPoint:
    """One cell of the experiment grid."""

    benchmark: str
    design: str
    window: int

    def label(self) -> str:
        suffix = f" IW{self.window}" if self.window else ""
        return f"{self.benchmark}/{self.design}{suffix}"


@dataclass(frozen=True)
class RunRecord:
    """Provenance and wall time of one resolved grid point."""

    point: GridPoint
    source: str  # "memo" | "cache" | "sim"
    seconds: float


@dataclass
class GridResult:
    """Everything one ``run_grid`` call resolved."""

    scale: RunScale
    jobs: int
    results: Dict[Tuple[str, str, int], SimulationResult]
    records: List[RunRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def get(self, benchmark: str, design: str,
            window: int = 3) -> SimulationResult:
        """The result of one grid point (raises if it was not in the grid)."""
        key = (benchmark.upper(), design,
               runner.effective_window(design, window))
        try:
            return self.results[key]
        except KeyError:
            raise ExperimentError(
                f"{benchmark}/{design} IW{window} was not part of this grid"
            ) from None

    @property
    def simulated(self) -> int:
        """Points that required a simulator invocation."""
        return sum(1 for record in self.records if record.source == "sim")

    @property
    def from_cache(self) -> int:
        """Points served by the on-disk cache."""
        return sum(1 for record in self.records if record.source == "cache")

    @property
    def from_memo(self) -> int:
        """Points served by the in-process memo."""
        return sum(1 for record in self.records if record.source == "memo")

    def format(self) -> str:
        """Per-run table plus a one-line totals summary."""
        rows = []
        for record in sorted(
            self.records,
            key=lambda r: (r.point.benchmark, r.point.design, r.point.window),
        ):
            result = self.results[(
                record.point.benchmark.upper(), record.point.design,
                record.point.window,
            )]
            rows.append([
                record.point.benchmark,
                record.point.design,
                record.point.window or "-",
                result.counters.cycles,
                f"{result.ipc:.3f}",
                record.source,
                f"{record.seconds:.2f}s",
            ])
        table = format_table(
            ["benchmark", "design", "IW", "cycles", "IPC", "source", "time"],
            rows,
            title=(f"Sweep: {len(self.records)} runs, jobs={self.jobs}, "
                   f"{self.scale.num_warps} warps x{self.scale.trace_scale} "
                   f"seed {self.scale.memory_seed}"),
        )
        summary = (
            f"\n{self.simulated} simulated, {self.from_cache} from disk "
            f"cache, {self.from_memo} memoized in {self.wall_seconds:.2f}s"
            f"\ncache: {self.cache_stats.format()}"
        )
        return table + summary


def _grid_worker(
    args: Tuple[str, str, int, RunScale],
) -> Tuple[float, SimulationResult]:
    """Execute one grid point in a pool worker; returns (seconds, result)."""
    benchmark, design, window, scale = args
    started = time.perf_counter()
    result = runner.execute_run(benchmark, design, window_size=window,
                                scale=scale)
    return time.perf_counter() - started, result


_CACHE_DEFAULT = object()


def run_grid(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    windows: Sequence[int] = (3,),
    scale: RunScale = QUICK,
    jobs: Optional[int] = None,
    cache: object = _CACHE_DEFAULT,
    progress: Optional[Callable[[str], None]] = None,
) -> GridResult:
    """Resolve the full ``benchmarks x designs x windows`` grid.

    Args:
        benchmarks: Table III benchmark names.
        designs: entries of ``DESIGNS`` plus ``"rfc"``.
        windows: instruction windows; designs that ignore the window
            (baseline, rfc) contribute one point regardless.
        scale: run size; also the source of every point's memory seed.
        jobs: worker processes; ``None`` uses :func:`default_jobs`,
            ``1`` runs serially in-process (no executor).
        cache: a :class:`RunCache`, ``None`` to disable disk caching for
            this call, or leave unset to use the runner's active cache.
        progress: optional callback receiving one line per resolved run.
    """
    started = time.perf_counter()
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    disk = runner.get_cache() if cache is _CACHE_DEFAULT else cache
    if disk is not None and not isinstance(disk, RunCache):
        raise ExperimentError("cache must be a RunCache or None")

    for design in designs:
        runner.validate_design(design)

    points: List[GridPoint] = []
    seen = set()
    for benchmark in benchmarks:
        for design in designs:
            for window in windows:
                effective = runner.effective_window(design, window)
                key = (benchmark.upper(), design, effective)
                if key in seen:
                    continue
                seen.add(key)
                points.append(GridPoint(benchmark, design, effective))
    if not points:
        raise ExperimentError("empty grid: no benchmarks/designs/windows")

    result = GridResult(scale=scale, jobs=jobs, results={})

    def note(record: RunRecord) -> None:
        result.records.append(record)
        if progress is not None:
            progress(
                f"[{len(result.records)}/{len(points)}] "
                f"{record.point.label()} ({record.source}, "
                f"{record.seconds:.2f}s)"
            )

    # Layer 1 + 2: memo, then disk.
    pending: List[GridPoint] = []
    for point in points:
        key = (point.benchmark.upper(), point.design, point.window)
        memoized = runner.memo_lookup(point.benchmark, point.design,
                                      point.window, scale)
        if memoized is not None:
            result.results[key] = memoized
            note(RunRecord(point, "memo", 0.0))
            continue
        if disk is not None:
            fetch_started = time.perf_counter()
            cached = disk.get(run_key(point.benchmark, point.design,
                                      point.window, scale))
            if cached is not None:
                result.results[key] = cached
                runner.memo_store(point.benchmark, point.design,
                                  point.window, scale, cached)
                note(RunRecord(point, "cache",
                               time.perf_counter() - fetch_started))
                continue
        pending.append(point)

    # Layer 3: simulate what remains.
    def finish(point: GridPoint, seconds: float,
               run: SimulationResult) -> None:
        key = (point.benchmark.upper(), point.design, point.window)
        result.results[key] = run
        runner.memo_store(point.benchmark, point.design, point.window,
                          scale, run)
        if disk is not None:
            disk.put(run_key(point.benchmark, point.design, point.window,
                             scale), run)
        note(RunRecord(point, "sim", seconds))

    if pending and (jobs == 1 or len(pending) == 1):
        for point in pending:
            seconds, run = _grid_worker(
                (point.benchmark, point.design, point.window, scale)
            )
            finish(point, seconds, run)
    elif pending:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending))
        ) as pool:
            futures = {
                pool.submit(
                    _grid_worker,
                    (point.benchmark, point.design, point.window, scale),
                ): point
                for point in pending
            }
            for future in as_completed(futures):
                seconds, run = future.result()
                finish(futures[future], seconds, run)

    result.wall_seconds = time.perf_counter() - started
    if disk is not None:
        result.cache_stats = disk.stats.snapshot()
    return result
