"""Lane-level study across the benchmark suite (extension).

The scalar model assumes lock-step warps; this study runs each
benchmark kernel through the SIMT reconvergence stack and the lane-wise
executor to report the quantities the abstraction hides: SIMD
efficiency under per-lane divergence and memory-coalescing behaviour.
It validates the substrate and contextualizes the benchmarks (graph
codes diverge, dense kernels do not).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..kernels.suites import benchmark_names, get_profile
from ..kernels.synthetic import generate_kernel
from ..simt.lanes import execute_masked_trace
from ..simt.stack import expand_masked_trace, simd_efficiency
from ..stats.report import format_percent, format_table


@dataclass(frozen=True)
class SimtStudyResult:
    """Per-benchmark lane-level statistics."""

    efficiency: Dict[str, float]
    avg_transactions: Dict[str, float]
    coalesced_fraction: Dict[str, float]

    def average_efficiency(self) -> float:
        return sum(self.efficiency.values()) / len(self.efficiency)

    def format(self) -> str:
        rows = [
            [bench,
             format_percent(self.efficiency[bench]),
             f"{self.avg_transactions[bench]:.2f}",
             format_percent(self.coalesced_fraction[bench])]
            for bench in self.efficiency
        ]
        rows.append(["AVERAGE",
                     format_percent(self.average_efficiency()), "", ""])
        return format_table(
            ["benchmark", "SIMD efficiency", "avg transactions",
             "fully coalesced"],
            rows,
            title="SIMT lane-level study (extension)",
        )


def simt_suite_study(
    benchmarks: Optional[Tuple[str, ...]] = None,
    warps: int = 2,
    seed: int = 5,
    max_instructions: int = 4_000,
) -> SimtStudyResult:
    """Run every benchmark kernel through the SIMT substrate."""
    benchmarks = benchmarks or benchmark_names()
    efficiency: Dict[str, float] = {}
    avg_transactions: Dict[str, float] = {}
    coalesced: Dict[str, float] = {}
    for bench in benchmarks:
        spec = replace(get_profile(bench).spec, loop_iterations=6)
        cfg = generate_kernel(spec)
        efficiencies = []
        stats = None
        for warp_id in range(warps):
            trace = expand_masked_trace(
                cfg, warp_id=warp_id, seed=seed,
                max_instructions=max_instructions,
            )
            efficiencies.append(simd_efficiency(trace))
            result = execute_masked_trace(trace, warp_id=warp_id)
            stats = (result.coalescing if stats is None
                     else stats.merge(result.coalescing))
        efficiency[bench] = sum(efficiencies) / len(efficiencies)
        avg_transactions[bench] = stats.average_transactions() if stats else 0.0
        coalesced[bench] = stats.fully_coalesced_fraction() if stats else 0.0
    return SimtStudyResult(
        efficiency=efficiency,
        avg_transactions=avg_transactions,
        coalesced_fraction=coalesced,
    )
