"""Experiment drivers: one per table and figure of the paper.

Each driver returns a small result object with the series the paper
plots plus a ``format()`` text rendering; the benchmark harness under
``benchmarks/`` and the examples call these.  Timing runs are cached per
process (see :mod:`repro.experiments.runner`), so drivers that share
runs — Figures 10, 12 and 13 all need the same baseline — pay for them
once.  The drivers route their grids through
:func:`~repro.experiments.grid.run_grid`, which adds parallel fan-out
(``jobs=N``), a persistent on-disk run cache
(:class:`~repro.experiments.cache.RunCache`) shared across processes,
and fault-tolerant execution (:mod:`repro.experiments.resilience`):
failing points are retried, then recorded on ``GridResult.failures``
instead of killing the sweep.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheDegradedWarning,
    RunCache,
    run_key,
)
from .figures import (
    fig10_device_ipc,
    fig10_ipc_improvement,
    fig11_halfsize_ipc,
    fig12_oc_residency,
    fig13_energy,
    fig1_onchip_memory,
    fig3_bypass_opportunity,
    fig4_oc_latency,
    fig7_write_destinations,
    fig8_ocu_occupancy,
    fig9_boc_occupancy,
    rfc_comparison,
)
from .grid import GridPoint, GridResult, RunRecord, run_grid
from .registry import EXPERIMENTS, run_experiment
from .resilience import (
    DEFAULT_POLICY,
    NO_RETRY,
    PERMANENT,
    TRANSIENT,
    PointFailure,
    RetryPolicy,
    classify_failure,
)
from .runner import (
    FULL,
    QUICK,
    RunScale,
    cache_stats,
    clear_cache,
    get_cache,
    run_design,
    set_cache,
    simulations_run,
)
from .tables import table1_btree, table2_configuration, table4_overheads

__all__ = [
    "RunScale",
    "QUICK",
    "FULL",
    "run_design",
    "run_grid",
    "clear_cache",
    "cache_stats",
    "get_cache",
    "set_cache",
    "simulations_run",
    "CACHE_SCHEMA_VERSION",
    "CacheDegradedWarning",
    "RunCache",
    "run_key",
    "GridPoint",
    "GridResult",
    "RunRecord",
    "RetryPolicy",
    "PointFailure",
    "DEFAULT_POLICY",
    "NO_RETRY",
    "TRANSIENT",
    "PERMANENT",
    "classify_failure",
    "fig1_onchip_memory",
    "fig3_bypass_opportunity",
    "fig4_oc_latency",
    "fig7_write_destinations",
    "fig8_ocu_occupancy",
    "fig9_boc_occupancy",
    "fig10_device_ipc",
    "fig10_ipc_improvement",
    "fig11_halfsize_ipc",
    "fig12_oc_residency",
    "fig13_energy",
    "rfc_comparison",
    "table1_btree",
    "table2_configuration",
    "table4_overheads",
    "EXPERIMENTS",
    "run_experiment",
]
