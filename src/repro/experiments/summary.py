"""One-shot headline summary: the paper's claims vs this run's numbers.

``headline_summary`` runs the minimal set of simulations needed to
measure every headline claim of the paper's abstract/conclusion and
renders a paper-vs-measured table — the quantitative core of
EXPERIMENTS.md, regenerated live.  Used by ``python -m repro
experiment summary`` and by the release-check bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import bow_wr_config
from ..kernels.suites import benchmark_names
from ..stats.report import format_table
from .figures import (
    fig10_ipc_improvement,
    fig11_halfsize_ipc,
    fig12_oc_residency,
    fig13_energy,
    fig3_bypass_opportunity,
    fig7_write_destinations,
    rfc_comparison,
)
from .grid import run_grid
from .runner import QUICK, RunScale


@dataclass(frozen=True)
class Claim:
    """One headline claim of the paper and our measurement of it."""

    name: str
    paper: str
    measured: str
    holds: bool


@dataclass(frozen=True)
class HeadlineSummary:
    """The paper-vs-measured scorecard."""

    claims: Tuple[Claim, ...]

    @property
    def all_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def format(self) -> str:
        rows = [
            [claim.name, claim.paper, claim.measured,
             "yes" if claim.holds else "NO"]
            for claim in self.claims
        ]
        return format_table(
            ["claim (IW=3)", "paper", "measured", "holds"],
            rows,
            title="Headline scorecard: paper vs this run",
        )


def headline_summary(scale: RunScale = QUICK) -> HeadlineSummary:
    """Measure every abstract-level claim at ``scale``."""
    # One grid warm-up covers every timing run the figure drivers below
    # will ask for, so the whole scorecard parallelizes under --jobs and
    # re-runs from the on-disk cache.
    run_grid(
        benchmark_names(),
        ("baseline", "bow", "bow-wr", "bow-wr-half", "rfc"),
        (3,),
        scale=scale,
    )
    claims: List[Claim] = []

    def add(name: str, paper: str, value: float, fmt: str,
            low: float, high: float) -> None:
        claims.append(Claim(
            name=name, paper=paper, measured=fmt.format(value),
            holds=low <= value <= high,
        ))

    fig3 = fig3_bypass_opportunity(windows=(2, 3), scale=scale)
    add("reads bypassed", "59%", fig3.average_reads(3), "{:.1%}",
        0.49, 0.69)
    add("writes eliminable", "52%", fig3.average_writes(3), "{:.1%}",
        0.40, 0.70)

    bow, bow_wr = fig10_ipc_improvement(windows=(3,), scale=scale)
    add("IPC gain, BOW", "+11%", bow.average(3), "{:+.1%}", 0.05, 0.22)
    add("IPC gain, BOW-WR", "+13%", bow_wr.average(3), "{:+.1%}",
        0.05, 0.22)

    half = fig11_halfsize_ipc(scale=scale)
    add("IPC gain, half-size", "+11%", half.average(3), "{:+.1%}",
        0.05, 0.22)

    energy_bow, energy_wr = fig13_energy(scale=scale)
    add("RF energy saved, BOW", "36%", energy_bow.average_savings(),
        "{:.1%}", 0.25, 0.50)
    add("RF energy saved, BOW-WR", "55%", energy_wr.average_savings(),
        "{:.1%}", 0.45, 0.65)

    fig12 = fig12_oc_residency(windows=(3,), scale=scale)
    add("OC residency reduction", "60%", 1.0 - fig12.average(3),
        "{:.1%}", 0.30, 0.70)

    fig7 = fig7_write_destinations(scale=scale)
    _, _, transient = fig7.averages()
    add("transient operands", "52%", transient, "{:.1%}", 0.40, 0.70)

    rfc = rfc_comparison(scale=scale)
    add("RFC IPC gain", "<2%", rfc.average_rfc_gain(), "{:+.1%}",
        -0.02, 0.06)

    overhead_kb = (
        bow_wr_config(3, half_size=True).total_boc_bytes()
        - 3 * 128 * 32
    ) / 1024
    claims.append(Claim(
        name="added storage, half-size",
        paper="12 KB (4% of RF)",
        measured=f"{overhead_kb:.0f} KB",
        holds=overhead_kb == 12.0,
    ))

    return HeadlineSummary(claims=tuple(claims))
