"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

The SM has several schedulers (four on Pascal, Table II), each owning
the warps whose id is congruent to the scheduler index.  Every cycle a
scheduler proposes an ordering of its ready warps; the issue stage walks
that order and issues up to ``issue_width`` instructions.

GTO keeps issuing from the warp it issued from last (the *greedy* warp)
and falls back to the oldest warp when the greedy one stalls — the
policy in the paper's Table II.  LRR rotates a fair pointer and is
provided for the scheduler-sensitivity ablation.
"""

from __future__ import annotations

from typing import List, Sequence

from ..config import SchedulerPolicy
from ..errors import SimulationError


class WarpSchedulerBase:
    """Shared bookkeeping: which warps this scheduler owns."""

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        if not warp_ids:
            raise SimulationError(f"scheduler {scheduler_id} owns no warps")
        self.scheduler_id = scheduler_id
        self.warp_ids = list(warp_ids)

    def candidate_order(self) -> List[int]:
        """Warp ids in this cycle's issue-priority order."""
        raise NotImplementedError

    def note_issue(self, warp_id: int) -> None:
        """Record that ``warp_id`` issued this cycle."""

    def note_stall(self, warp_id: int) -> None:
        """Record that ``warp_id`` could not issue when tried."""


class GTOScheduler(WarpSchedulerBase):
    """Greedy-then-oldest.

    Oldest is approximated by warp id, which matches GPGPU-Sim's GTO for
    kernels where all warps start together (our launches do).
    """

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        super().__init__(scheduler_id, warp_ids)
        self._greedy: int | None = None
        # The ownership set is fixed, so every possible priority order
        # (oldest-first, or one greedy warp hoisted) can be cached; the
        # issue stage calls candidate_order every cycle.
        self._oldest_first = sorted(self.warp_ids)
        self._members = frozenset(self.warp_ids)
        self._orders: dict = {}

    def candidate_order(self) -> List[int]:
        greedy = self._greedy
        if greedy is None or greedy not in self._members:
            return self._oldest_first
        order = self._orders.get(greedy)
        if order is None:
            order = [greedy] + [w for w in self._oldest_first if w != greedy]
            self._orders[greedy] = order
        return order

    def note_issue(self, warp_id: int) -> None:
        self._greedy = warp_id

    def note_stall(self, warp_id: int) -> None:
        if warp_id == self._greedy:
            self._greedy = None


class TwoLevelScheduler(WarpSchedulerBase):
    """Two-level scheduling (Gebhart et al.).

    Only a small *active set* of warps competes for issue; a warp that
    stalls repeatedly (typically on a long-latency load) is demoted to
    the pending queue and the oldest pending warp takes its slot.  The
    original motivation is a smaller register working set — the same
    observation the RFC design builds on.
    """

    #: Consecutive stalls before a warp is swapped out.
    DEMOTE_AFTER = 2

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int],
                 active_size: int = 4):
        super().__init__(scheduler_id, warp_ids)
        if active_size < 1:
            raise SimulationError(
                f"active_size must be >= 1, got {active_size}"
            )
        ordered = sorted(warp_ids)
        self.active: List[int] = ordered[:active_size]
        self.pending: List[int] = ordered[active_size:]
        self._stalls: dict = {}

    def candidate_order(self) -> List[int]:
        return list(self.active)

    def note_issue(self, warp_id: int) -> None:
        self._stalls[warp_id] = 0
        # Issuing warp moves to the front (greedy within the active set).
        if warp_id in self.active:
            self.active.remove(warp_id)
            self.active.insert(0, warp_id)

    def note_stall(self, warp_id: int) -> None:
        if warp_id not in self.active or not self.pending:
            return
        self._stalls[warp_id] = self._stalls.get(warp_id, 0) + 1
        if self._stalls[warp_id] >= self.DEMOTE_AFTER:
            self._stalls[warp_id] = 0
            self.active.remove(warp_id)
            self.pending.append(warp_id)
            self.active.append(self.pending.pop(0))


class LRRScheduler(WarpSchedulerBase):
    """Loose round-robin: rotate priority one warp per cycle."""

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        super().__init__(scheduler_id, warp_ids)
        self._pointer = 0
        self._ordered = sorted(self.warp_ids)

    def candidate_order(self) -> List[int]:
        ordered = self._ordered
        pivot = self._pointer % len(ordered)
        self._pointer += 1
        return ordered[pivot:] + ordered[:pivot]


def make_scheduler(policy: SchedulerPolicy, scheduler_id: int,
                   warp_ids: Sequence[int],
                   active_size: int = 4) -> WarpSchedulerBase:
    """Factory keyed by the configured policy."""
    if policy is SchedulerPolicy.GTO:
        return GTOScheduler(scheduler_id, warp_ids)
    if policy is SchedulerPolicy.LRR:
        return LRRScheduler(scheduler_id, warp_ids)
    if policy is SchedulerPolicy.TWO_LEVEL:
        return TwoLevelScheduler(scheduler_id, warp_ids,
                                 active_size=active_size)
    raise SimulationError(f"unknown scheduler policy {policy!r}")
