"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

The SM has several schedulers (four on Pascal, Table II), each owning
the warps whose id is congruent to the scheduler index.  Every cycle a
scheduler proposes an ordering of its ready warps; the issue stage walks
that order and issues up to ``issue_width`` instructions.

GTO keeps issuing from the warp it issued from last (the *greedy* warp)
and falls back to the oldest warp when the greedy one stalls — the
policy in the paper's Table II.  LRR rotates a fair pointer and is
provided for the scheduler-sensitivity ablation.
"""

from __future__ import annotations

from typing import List, Sequence

from ..config import SchedulerPolicy
from ..errors import SimulationError


class WarpSchedulerBase:
    """Shared bookkeeping: which warps this scheduler owns."""

    #: True when :meth:`idle_span_limit` can return something other
    #: than ``None`` over the scheduler's lifetime, so the engine's
    #: fast-forward horizon must consult it every idle cycle.  Static
    #: unlimited schedulers (GTO, LRR, an undersubscribed two-level)
    #: keep False and are skipped entirely.
    dynamic_idle_limit = False

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        if not warp_ids:
            raise SimulationError(f"scheduler {scheduler_id} owns no warps")
        self.scheduler_id = scheduler_id
        self.warp_ids = list(warp_ids)

    def candidate_order(self) -> List[int]:
        """Warp ids in this cycle's issue-priority order."""
        raise NotImplementedError

    def note_issue(self, warp_id: int) -> None:
        """Record that ``warp_id`` issued this cycle."""

    def note_stall(self, warp_id: int) -> None:
        """Record that ``warp_id`` could not issue when tried."""

    # -- event-horizon fast-forward hooks -------------------------------
    #
    # During a provably idle span the engine charges stalls in bulk
    # instead of ticking every cycle; these hooks let it replay the
    # scheduler's per-cycle behaviour without calling candidate_order
    # (which may mutate rotation state) once per skipped cycle.

    def idle_span_limit(self) -> int | None:
        """Max skippable idle cycles, or ``None`` for unlimited.

        Return 0 when consecutive stalls change future scheduling
        decisions in ways a bulk update cannot replay (e.g. two-level
        demotion), forcing the engine back to per-cycle stepping.
        """
        return None

    def on_idle_span(self, span: int) -> None:
        """Replay the effect of ``span`` all-stall cycles in bulk."""


class GTOScheduler(WarpSchedulerBase):
    """Greedy-then-oldest.

    Oldest is approximated by warp id, which matches GPGPU-Sim's GTO for
    kernels where all warps start together (our launches do).
    """

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        super().__init__(scheduler_id, warp_ids)
        self._greedy: int | None = None
        # The ownership set is fixed, so every possible priority order
        # (oldest-first, or one greedy warp hoisted) can be cached; the
        # issue stage calls candidate_order every cycle.
        self._oldest_first = sorted(self.warp_ids)
        self._members = frozenset(self.warp_ids)
        self._orders: dict = {}

    def candidate_order(self) -> List[int]:
        greedy = self._greedy
        if greedy is None or greedy not in self._members:
            return self._oldest_first
        order = self._orders.get(greedy)
        if order is None:
            order = [greedy] + [w for w in self._oldest_first if w != greedy]
            self._orders[greedy] = order
        return order

    def note_issue(self, warp_id: int) -> None:
        self._greedy = warp_id

    def note_stall(self, warp_id: int) -> None:
        if warp_id == self._greedy:
            self._greedy = None

    def on_idle_span(self, span: int) -> None:
        # Every owned warp stalls each idle cycle, so the greedy warp
        # (if any) was noted stalled and cleared.
        self._greedy = None


class TwoLevelScheduler(WarpSchedulerBase):
    """Two-level scheduling (Gebhart et al.).

    Only a small *active set* of warps competes for issue; a warp that
    stalls repeatedly (typically on a long-latency load) is demoted to
    the pending queue and the oldest pending warp takes its slot.  The
    original motivation is a smaller register working set — the same
    observation the RFC design builds on.
    """

    #: Consecutive stalls before a warp is swapped out.
    DEMOTE_AFTER = 2

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int],
                 active_size: int = 4):
        super().__init__(scheduler_id, warp_ids)
        if active_size < 1:
            raise SimulationError(
                f"active_size must be >= 1, got {active_size}"
            )
        ordered = sorted(warp_ids)
        self.active: List[int] = ordered[:active_size]
        self.pending: List[int] = ordered[active_size:]
        # The pending queue's *size* is invariant (note_stall swaps one
        # for one), so whether idle_span_limit can ever bite is fixed.
        self.dynamic_idle_limit = bool(self.pending)
        self._stalls: dict = {}

    def candidate_order(self) -> List[int]:
        return list(self.active)

    def note_issue(self, warp_id: int) -> None:
        self._stalls[warp_id] = 0
        # Issuing warp moves to the front (greedy within the active set).
        if warp_id in self.active:
            self.active.remove(warp_id)
            self.active.insert(0, warp_id)

    def note_stall(self, warp_id: int) -> None:
        if warp_id not in self.active or not self.pending:
            return
        self._stalls[warp_id] = self._stalls.get(warp_id, 0) + 1
        if self._stalls[warp_id] >= self.DEMOTE_AFTER:
            self._stalls[warp_id] = 0
            self.active.remove(warp_id)
            self.pending.append(warp_id)
            self.active.append(self.pending.pop(0))

    def idle_span_limit(self) -> int | None:
        # With warps waiting to be promoted, each stalled cycle moves
        # the demotion counters and may reshuffle the active set —
        # per-cycle stepping is the only faithful replay.  Once the
        # pending queue is empty note_stall is a no-op (see above) and
        # idle spans may be skipped freely.
        return 0 if self.pending else None


class LRRScheduler(WarpSchedulerBase):
    """Loose round-robin: rotate priority one warp per cycle."""

    def __init__(self, scheduler_id: int, warp_ids: Sequence[int]):
        super().__init__(scheduler_id, warp_ids)
        self._pointer = 0
        self._ordered = sorted(self.warp_ids)
        # The ownership set is fixed, so all rotations can be cached
        # instead of rebuilt by slicing every cycle.
        self._rotations = [
            self._ordered[pivot:] + self._ordered[:pivot]
            for pivot in range(len(self._ordered))
        ]

    def candidate_order(self) -> List[int]:
        pivot = self._pointer % len(self._ordered)
        self._pointer += 1
        return self._rotations[pivot]

    def on_idle_span(self, span: int) -> None:
        # candidate_order advances the pointer once per cycle whether
        # or not anything issues; replay the skipped rotations.
        self._pointer += span


def make_scheduler(policy: SchedulerPolicy, scheduler_id: int,
                   warp_ids: Sequence[int],
                   active_size: int = 4) -> WarpSchedulerBase:
    """Factory keyed by the configured policy."""
    if policy is SchedulerPolicy.GTO:
        return GTOScheduler(scheduler_id, warp_ids)
    if policy is SchedulerPolicy.LRR:
        return LRRScheduler(scheduler_id, warp_ids)
    if policy is SchedulerPolicy.TWO_LEVEL:
        return TwoLevelScheduler(scheduler_id, warp_ids,
                                 active_size=active_size)
    raise SimulationError(f"unknown scheduler policy {policy!r}")
