"""Register-file bank arbitration.

The RF is split into single-ported banks (Figure 2): each bank serves at
most one access per cycle, and concurrent requests to the same bank
serialize.  The arbiter receives this cycle's read and write requests
and grants at most one per bank, preferring writes (draining the
writeback queue keeps the pipeline from backing up, the usual GPGPU-Sim
choice), then the oldest read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import SimulationError


class AccessRequest:
    """One bank access request.

    A plain ``__slots__`` record rather than a dataclass: requests are
    rebuilt every cycle from collector/queue state, so construction is
    on the engine's hottest path.

    Attributes:
        bank: target bank index.
        warp_id: requesting warp (for accounting and value lookup).
        register_id: architectural register accessed.
        tag: opaque requester handle (collector key or write-queue id)
            handed back with the grant.
        age: request age used for oldest-first arbitration (lower = older).
    """

    __slots__ = ("bank", "warp_id", "register_id", "tag", "age")

    def __init__(self, bank: int, warp_id: int, register_id: int,
                 tag: object, age: int = 0):
        self.bank = bank
        self.warp_id = warp_id
        self.register_id = register_id
        self.tag = tag
        self.age = age

    def __repr__(self) -> str:
        return (
            f"AccessRequest(bank={self.bank}, warp_id={self.warp_id}, "
            f"register_id={self.register_id}, tag={self.tag!r}, "
            f"age={self.age})"
        )


@dataclass
class ArbitrationResult:
    """Outcome of one arbitration cycle."""

    granted_reads: List[AccessRequest] = field(default_factory=list)
    granted_writes: List[AccessRequest] = field(default_factory=list)
    conflicts: int = 0


def _request_age(request: AccessRequest) -> int:
    """Arbitration priority: oldest issue cycle wins the port."""
    return request.age


class BankArbiter:
    """Single-port-per-bank arbitration with write priority."""

    def __init__(self, num_banks: int):
        if num_banks < 1:
            raise SimulationError(f"num_banks must be >= 1, got {num_banks}")
        self.num_banks = num_banks

    def arbitrate(
        self,
        reads: Iterable[AccessRequest],
        writes: Iterable[AccessRequest],
    ) -> ArbitrationResult:
        """Grant at most one access per bank this cycle.

        Denied requests count as conflicts; the caller retries them next
        cycle (requests are regenerated from collector/queue state).
        """
        # Fast paths: a lone request can't conflict with anything, and
        # when every request targets a distinct bank they are all
        # granted as-is — both cases skip the per-bank bucketing and
        # the per-bank age sorts entirely.
        if isinstance(reads, list) and isinstance(writes, list):
            total = len(reads) + len(writes)
            if total == 0:
                return ArbitrationResult()
            if total == 1:
                request = (reads or writes)[0]
                self._check(request)
                if reads:
                    return ArbitrationResult(granted_reads=[request])
                return ArbitrationResult(granted_writes=[request])
            if total <= self.num_banks:
                banks = {request.bank for request in writes}
                for request in reads:
                    banks.add(request.bank)
                if len(banks) == total:
                    if not (min(banks) >= 0 and max(banks) < self.num_banks):
                        for request in writes:
                            self._check(request)
                        for request in reads:
                            self._check(request)
                    return ArbitrationResult(granted_reads=list(reads),
                                             granted_writes=list(writes))
        # Contended path.  The winner per bank is the oldest request,
        # first-arrived on age ties — min() with a stable scan returns
        # exactly what the previous sort-then-[0] did, without sorting
        # the losers.
        by_bank: Dict[int, tuple] = {}
        for request in writes:
            self._check(request)
            bucket = by_bank.get(request.bank)
            if bucket is None:
                bucket = by_bank[request.bank] = ([], [])
            bucket[1].append(request)
        for request in reads:
            self._check(request)
            bucket = by_bank.get(request.bank)
            if bucket is None:
                bucket = by_bank[request.bank] = ([], [])
            bucket[0].append(request)

        result = ArbitrationResult()
        for read_list, write_list in by_bank.values():
            if write_list:
                result.granted_writes.append(
                    write_list[0] if len(write_list) == 1
                    else min(write_list, key=_request_age))
                result.conflicts += len(write_list) - 1 + len(read_list)
            elif read_list:
                result.granted_reads.append(
                    read_list[0] if len(read_list) == 1
                    else min(read_list, key=_request_age))
                result.conflicts += len(read_list) - 1
        return result

    def _check(self, request: AccessRequest) -> None:
        if not 0 <= request.bank < self.num_banks:
            raise SimulationError(
                f"bank {request.bank} out of range [0, {self.num_banks})"
            )
