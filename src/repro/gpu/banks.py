"""Register-file bank arbitration.

The RF is split into single-ported banks (Figure 2): each bank serves at
most one access per cycle, and concurrent requests to the same bank
serialize.  The arbiter receives this cycle's read and write requests
and grants at most one per bank, preferring writes (draining the
writeback queue keeps the pipeline from backing up, the usual GPGPU-Sim
choice), then the oldest read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import SimulationError


class AccessRequest:
    """One bank access request.

    A plain ``__slots__`` record rather than a dataclass: requests are
    rebuilt every cycle from collector/queue state, so construction is
    on the engine's hottest path.

    Attributes:
        bank: target bank index.
        warp_id: requesting warp (for accounting and value lookup).
        register_id: architectural register accessed.
        tag: opaque requester handle (collector key or write-queue id)
            handed back with the grant.
        age: request age used for oldest-first arbitration (lower = older).
    """

    __slots__ = ("bank", "warp_id", "register_id", "tag", "age")

    def __init__(self, bank: int, warp_id: int, register_id: int,
                 tag: object, age: int = 0):
        self.bank = bank
        self.warp_id = warp_id
        self.register_id = register_id
        self.tag = tag
        self.age = age

    def __repr__(self) -> str:
        return (
            f"AccessRequest(bank={self.bank}, warp_id={self.warp_id}, "
            f"register_id={self.register_id}, tag={self.tag!r}, "
            f"age={self.age})"
        )


@dataclass
class ArbitrationResult:
    """Outcome of one arbitration cycle."""

    granted_reads: List[AccessRequest] = field(default_factory=list)
    granted_writes: List[AccessRequest] = field(default_factory=list)
    conflicts: int = 0


class BankArbiter:
    """Single-port-per-bank arbitration with write priority."""

    def __init__(self, num_banks: int):
        if num_banks < 1:
            raise SimulationError(f"num_banks must be >= 1, got {num_banks}")
        self.num_banks = num_banks

    def arbitrate(
        self,
        reads: Iterable[AccessRequest],
        writes: Iterable[AccessRequest],
    ) -> ArbitrationResult:
        """Grant at most one access per bank this cycle.

        Denied requests count as conflicts; the caller retries them next
        cycle (requests are regenerated from collector/queue state).
        """
        by_bank: Dict[int, Dict[str, List[AccessRequest]]] = {}
        for request in writes:
            self._check(request)
            by_bank.setdefault(request.bank, {"r": [], "w": []})["w"].append(request)
        for request in reads:
            self._check(request)
            by_bank.setdefault(request.bank, {"r": [], "w": []})["r"].append(request)

        result = ArbitrationResult()
        for bank_requests in by_bank.values():
            write_list = sorted(bank_requests["w"], key=lambda r: r.age)
            read_list = sorted(bank_requests["r"], key=lambda r: r.age)
            if write_list:
                result.granted_writes.append(write_list[0])
                result.conflicts += len(write_list) - 1 + len(read_list)
            elif read_list:
                result.granted_reads.append(read_list[0])
                result.conflicts += len(read_list) - 1
        return result

    def _check(self, request: AccessRequest) -> None:
        if not 0 <= request.bank < self.num_banks:
            raise SimulationError(
                f"bank {request.bank} out of range [0, {self.num_banks})"
            )
