"""The cycle-level SM engine.

One :class:`SMEngine` simulates a single streaming multiprocessor
running a :class:`~repro.kernels.trace.KernelTrace`.  The engine is a
thin conductor: each cycle it runs four explicit pipeline stages
(:mod:`repro.gpu.stages`) back-to-front so results never skip a stage —
complete, banks (writeback + operand reads), dispatch (+ execute), and
issue.  All mutable pipeline state lives in one shared
:class:`~repro.gpu.stages.EngineState`; static per-instruction facts
are precomputed once per trace by the decode cache
(:mod:`repro.gpu.decode`).

Operand movement is delegated to an
:class:`~repro.gpu.collector.OperandProvider` — the one pluggable
surface that distinguishes the simulated designs (baseline OCUs, BOW
collectors, RFC).  The engine also executes instruction *semantics*
(functional layer): operand values travel through collectors and
forwarding paths exactly as the hardware would move them, and tests
compare final memory/register images across designs to prove bypassing
preserves results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import DeadlockError, SimulationError
from ..isa import Instruction
from ..kernels.trace import KernelTrace
from ..stats.counters import Counters
from ..stats.trace import EventKind
from .banks import BankArbiter
from .collector import BaselineCollectorPool, InflightInstruction, OperandProvider
from .decode import DecodedOp, decode_warp_cached
from .execution import ExecutionUnits
from .memory import CacheMix, MemoryModel
from .regfile import BankedRegisterFile
from .scheduler import make_scheduler
from .scoreboard import Scoreboard
from .stages import (
    BankStage,
    CompleteStage,
    DispatchStage,
    EngineState,
    IssueStage,
    QueuedWrite,
)

#: Cycles without any progress before the engine declares a deadlock.
_DEADLOCK_LIMIT = 20_000


class _WarpState:
    """Issue-side state of one warp.

    Besides the program counter, a warp caches direct references to its
    decode records and its scoreboard views (the *same* set/dict objects
    the :class:`~repro.gpu.scoreboard.Scoreboard` owns), so the issue
    stage checks hazards without per-cycle lookups.
    """

    __slots__ = ("warp_id", "trace", "pc", "control_pending", "end",
                 "decoded", "sb_pending", "sb_reads", "sb_preds",
                 "sb_pred_reads")

    def __init__(self, warp_id: int, trace: List[Instruction]):
        self.warp_id = warp_id
        self.trace = trace
        self.pc = 0
        self.control_pending = False
        self.end = len(trace)
        self.decoded: List[DecodedOp] = []
        self.sb_pending: set = set()
        self.sb_reads: dict = {}
        self.sb_preds: set = set()
        self.sb_pred_reads: dict = {}

    @property
    def done(self) -> bool:
        return self.pc >= self.end

    @property
    def next_instruction(self) -> Optional[Instruction]:
        return None if self.pc >= self.end else self.trace[self.pc]


@dataclass
class SimulationResult:
    """Everything a run produces."""

    counters: Counters
    register_image: Dict[Tuple[int, int], int]
    memory_image: Dict[int, int]

    @property
    def ipc(self) -> float:
        return self.counters.ipc


class SMEngine:
    """Cycle-level simulator of one SM over a kernel trace."""

    def __init__(
        self,
        trace: KernelTrace,
        config: Optional[GPUConfig] = None,
        provider_factory=None,
        memory_seed: int = 0,
        timeline=None,
        preload: Optional[Dict[int, int]] = None,
        recorder=None,
        fast_forward: bool = True,
    ):
        self.config = config or GPUConfig()
        #: Event-horizon fast-forward kill switch.  ``False`` keeps the
        #: original tick-every-cycle loop as the reference path.
        self.fast_forward = bool(fast_forward)
        if trace.num_warps > self.config.max_warps_per_sm:
            raise SimulationError(
                f"{trace.num_warps} warps exceed the SM limit "
                f"{self.config.max_warps_per_sm}"
            )
        self.trace = trace
        self.counters = Counters()
        self.regfile = BankedRegisterFile(self.config)
        self.memory = MemoryModel(
            self.config, seed=memory_seed,
            mix=CacheMix(l1_hit=self.config.mem_l1_hit_rate,
                         l2_hit=self.config.mem_l2_hit_rate),
        )
        if preload:
            # Launch-time input data (absolute addresses; use
            # MemoryModel.thread_address to target a warp's window).
            for address, value in preload.items():
                self.memory.store(address, value)
        self.arbiter = BankArbiter(self.config.num_banks)
        self.units = ExecutionUnits(self.config)
        self.scoreboard = Scoreboard(max(1, trace.num_warps))

        self.warps = [
            _WarpState(warp.warp_id, list(warp.instructions)) for warp in trace
        ]
        self.warps.sort(key=lambda w: w.warp_id)
        self._warp_by_id: Dict[int, _WarpState] = {}
        for warp in self.warps:
            warp.decoded = decode_warp_cached(trace, warp.warp_id,
                                              warp.trace, self.config)
            (warp.sb_pending, warp.sb_reads, warp.sb_preds,
             warp.sb_pred_reads) = (
                self.scoreboard.warp_views(warp.warp_id)
            )
            self._warp_by_id[warp.warp_id] = warp
        self._warp_index_by_id = {
            warp.warp_id: index for index, warp in enumerate(self.warps)
        }

        self.state = EngineState()
        self.state.active_warps = sum(1 for warp in self.warps if warp.end)

        # Warp-uniform predicate file (the lane-accurate version lives in
        # repro.simt): (warp_id, predicate_id) -> bool.
        self.predicates: Dict[Tuple[int, int], bool] = {}
        # Optional per-interval sampler (see repro.stats.timeline).
        self.timeline = timeline
        # Optional cycle-level event recorder (see repro.stats.trace).
        # Every emit site is guarded by one `is not None` check so the
        # untraced hot path does no tracing work at all.
        self.recorder = recorder

        factory = provider_factory or (
            lambda engine: BaselineCollectorPool(
                engine, engine.config.num_operand_collectors
            )
        )
        self.provider: OperandProvider = factory(self)

        self.schedulers = self._build_schedulers()
        self.stages = (
            CompleteStage(self),
            BankStage(self),
            DispatchStage(self),
            IssueStage(self),
        )
        # The fast-forward jump reuses the stall profile the issue
        # stage charged on the (idle) cycle being extended.
        self._issue_stage = self.stages[3]
        # Horizon shortcuts: only schedulers whose idle_span_limit can
        # ever bite are consulted per idle cycle, and a tick-guarded
        # provider's due heap is peeked instead of called.
        self._limit_schedulers = [
            scheduler for scheduler in self.schedulers
            if scheduler.dynamic_idle_limit
        ]
        self._peek_provider_due = getattr(self.provider, "tick_guards", False)

    @property
    def cycle(self) -> int:
        """Current simulated cycle (lives in the shared EngineState)."""
        return self.state.cycle

    @cycle.setter
    def cycle(self, value: int) -> None:
        self.state.cycle = value

    def warp_state(self, warp_id: int) -> _WarpState:
        """The issue-side state of ``warp_id``."""
        try:
            return self._warp_by_id[warp_id]
        except KeyError:
            raise SimulationError(f"unknown warp id {warp_id}") from None

    def _build_schedulers(self):
        groups: Dict[int, List[int]] = {}
        for warp in self.warps:
            groups.setdefault(
                warp.warp_id % self.config.num_schedulers, []
            ).append(warp.warp_id)
        return [
            make_scheduler(self.config.scheduler_policy, sched_id, warp_ids,
                           active_size=self.config.two_level_active_warps)
            for sched_id, warp_ids in sorted(groups.items())
        ]

    # ------------------------------------------------------------------
    # services used by providers
    # ------------------------------------------------------------------

    def enqueue_rf_write(
        self,
        entry: Optional[InflightInstruction],
        value: int,
        warp_id: Optional[int] = None,
        register_id: Optional[int] = None,
        release_on_grant: bool = False,
    ) -> None:
        """Queue a physical RF write.

        The value becomes architecturally visible immediately (a read
        racing the queued write would be served by write-buffer
        forwarding in hardware); the queue entry models only the bank
        port the write will consume.
        """
        if entry is not None:
            warp_id = entry.warp_id
            register_id = entry.inst.dest.id  # type: ignore[union-attr]
        if warp_id is None or register_id is None:
            raise SimulationError("enqueue_rf_write needs a target register")
        self.regfile.poke(warp_id, register_id, value)
        state = self.state
        state.write_age += 1
        queued = QueuedWrite(
            warp_id=warp_id,
            register_id=register_id,
            value=value,
            age=state.write_age,
            bank=self.regfile.bank_of(warp_id, register_id),
            entry=entry if release_on_grant else None,
            release_on_grant=release_on_grant,
        )
        state.write_queue.append(queued)
        state.write_requests.append(queued.request)

    def release_scoreboard(self, entry: InflightInstruction) -> None:
        """Release ``entry``'s destination and retire the instruction."""
        warp = self.warp_state(entry.warp_id)
        # Releasing shrinks this warp's scoreboard views (and may clear
        # its pending branch), so its cached stall outcome is stale.
        self.state.issue_dirty.append(entry.warp_id)
        self.scoreboard.release(entry.warp_id, entry.inst)
        dec = entry.dec
        if dec.is_control if dec is not None else entry.inst.is_control:
            warp.control_pending = False
        self._retire(entry)

    def _retire(self, entry: InflightInstruction) -> None:
        self.state.in_flight -= 1
        counters = self.counters
        counters.instructions += 1
        if self.recorder is not None:
            self.recorder.emit(
                self.state.cycle, EventKind.COMMIT, warp=entry.warp_id,
                trace_index=entry.trace_index, opcode=entry.inst.opcode.name,
            )
        dec = entry.dec
        is_memory = dec.is_memory if dec is not None else entry.inst.is_memory
        if is_memory:
            counters.mem_instructions += 1
        if entry.dispatch_cycle is not None:
            wait = entry.dispatch_cycle - entry.issue_cycle
            lifetime = self.state.cycle - entry.issue_cycle
            counters.oc_wait_cycles += wait
            counters.lifetime_cycles += lifetime
            if is_memory:
                counters.oc_wait_cycles_memory += wait
                counters.lifetime_cycles_memory += lifetime

    def _warp_index(self, warp_id: int) -> int:
        try:
            return self._warp_index_by_id[warp_id]
        except KeyError:
            raise SimulationError(f"unknown warp id {warp_id}") from None

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> SimulationResult:
        """Simulate until every warp drains (or raise on deadlock)."""
        state = self.state
        counters = self.counters
        timeline = self.timeline
        fast_forward = self.fast_forward
        new_cycle = self.units.new_cycle
        provider = self.provider
        complete, banks, dispatch, issue = (
            stage.run for stage in self.stages
        )
        # Tick guards: providers that maintain head-pressure counts (see
        # OperandProvider.tick_guards) let the loop prove whole stages
        # idle from O(1) peeks and skip the calls.  Each guard is exact
        # about *progress* — a skipped stage is one that would have
        # returned False — so counters, events, and state are identical
        # with guards on or off; external providers take every call.
        use_guards = getattr(provider, "tick_guards", False)
        completion_heap = state.completion_heap
        read_heap = state.read_heap
        write_requests = state.write_requests
        inflight_tags = state.inflight_read_tags
        due_heap = provider.due_heap if use_guards else ()
        ready_list = provider.ready_entries() if use_guards else None
        deliver_reads = self.stages[1]._deliver_due_reads
        collect = self.stages[1].collect
        units = self.units
        # Inline mirror of IssueStage's stable-profile cycle (its
        # dirty/occupancy checks plus the O(1) charge) saves two call
        # frames on the most common cycle shape.  It must replicate the
        # stage's fast path exactly, so it only arms when no recorder
        # wants per-cycle stall events; any other cycle falls through
        # to the real issue() call.
        issue_stage = self.stages[3]
        issue_dirty = state.issue_dirty
        issue_replay_ok = getattr(issue_stage, "_replay_ok", False)
        issue_inline = use_guards and self.recorder is None
        idle_cycles = 0
        while state.active_warps or state.in_flight or state.write_queue:
            if state.cycle >= max_cycles:
                raise DeadlockError("max_cycles exceeded", state.cycle)
            cycle = state.cycle = state.cycle + 1
            if units._any:
                new_cycle()
            if use_guards:
                progress = (
                    complete()
                    if completion_heap and completion_heap[0] <= cycle
                    else False
                )
                if read_heap and read_heap[0] <= cycle:
                    progress |= deliver_reads(cycle)
                if (
                    write_requests
                    or provider.heads_pending > len(inflight_tags)
                    or (due_heap and due_heap[0] <= cycle)
                ):
                    progress |= collect(cycle)
                if ready_list:
                    progress |= dispatch()
                profile = issue_stage._profile
                if (
                    issue_inline
                    and profile is not None
                    and not issue_dirty
                    and (state.active_warps or not issue_replay_ok)
                    and (
                        profile.occupancy_gen == state.occupancy_gen
                        or not profile.collector_ids
                    )
                ):
                    # Stable profile: same charge _run_profile's fast
                    # path would make, without entering the stage.
                    profile.occupancy_gen = state.occupancy_gen
                    counters.issue_stalls_scoreboard += profile.n_scoreboard
                    counters.issue_stalls_collector += profile.n_collector
                    issue_stage._pending_idle += 1
                else:
                    progress |= issue()
            else:
                progress = complete() | banks() | dispatch() | issue()
            counters.cycles = cycle
            if timeline is not None:
                timeline.maybe_sample(
                    cycle, counters,
                    self.regfile.reads, self.regfile.writes,
                )
            if progress:
                idle_cycles = 0
            else:
                idle_cycles += 1
                if idle_cycles > _DEADLOCK_LIMIT:
                    raise DeadlockError("no forward progress", state.cycle)
                if fast_forward:
                    span = self._fast_forward_span(idle_cycles, max_cycles)
                    if span > 0:
                        idle_cycles += self._apply_fast_forward(span)
        self.provider.drain()
        self._drain_write_queue()
        counters.rf_reads = self.regfile.reads
        counters.rf_writes = self.regfile.writes
        if timeline is not None:
            # The drain tail (provider flush + residual writes) falls
            # between sampling-grid points; emit one final sample so the
            # series always reaches the end of the run.
            timeline.finalize(
                counters.cycles, counters,
                self.regfile.reads, self.regfile.writes,
            )
        return SimulationResult(
            counters=counters,
            register_image=self.regfile.snapshot(),
            memory_image=self.memory.image_snapshot(),
        )

    # ------------------------------------------------------------------
    # event-horizon fast-forward
    # ------------------------------------------------------------------

    def _fast_forward_span(self, idle_cycles: int, max_cycles: int) -> int:
        """How many provably idle cycles follow the current one.

        The horizon is the earliest future cycle at which *anything*
        could change: the next scheduled completion, the next bank/
        crossbar read delivery, the provider's next internal event
        (e.g. an RFC hit delivery), a scheduler whose bulk behaviour is
        not derivable (two-level demotion), or the deadlock /
        ``max_cycles`` boundaries — those last cycles must be simulated
        (or reached) per-cycle so the raise fires with the reference
        cycle number.  Every cycle strictly before the horizon is idle
        by construction, so the loop may jump to ``horizon - 1`` and
        charge the span in bulk.
        """
        state = self.state
        cycle = state.cycle
        # Jumping *to* max_cycles is fine: the loop-top check then
        # raises with the same cycle stamp as the per-cycle path.
        horizon = min(
            max_cycles + 1,
            cycle + (_DEADLOCK_LIMIT - idle_cycles) + 1,
        )
        # The stages drain every due heap head when it falls due, so at
        # this point (after the cycle's stages ran) a bare peek is the
        # exact earliest future event — no stale-head sweep needed.
        heap = state.completion_heap
        if heap and heap[0] < horizon:
            horizon = heap[0]
        heap = state.read_heap
        if heap and heap[0] < horizon:
            horizon = heap[0]
        if self._peek_provider_due:
            heap = self.provider.due_heap
            if heap and heap[0] < horizon:
                horizon = heap[0]
        else:
            due = self.provider.next_event_cycle()
            if due is not None and due < horizon:
                horizon = due
        for scheduler in self._limit_schedulers:
            limit = scheduler.idle_span_limit()
            if limit is not None and cycle + 1 + limit < horizon:
                horizon = cycle + 1 + limit
        return horizon - 1 - cycle

    def _apply_fast_forward(self, span: int) -> int:
        """Charge ``span`` skipped idle cycles in bulk; returns the span.

        Replays exactly what the per-cycle loop would have recorded for
        each skipped cycle: one issue-stall counter bump and one
        (coalesced, ``count=span``) ISSUE_STALL event per stalled warp,
        dispatch-rotor advance when ready entries exist, exec-busy
        stalls for ready-but-undispatchable entries, scheduler and
        provider bulk hooks, and the owed timeline samples.

        The issue profile is the stall log the issue stage charged on
        the idle cycle being extended: issue-relevant state only
        changes at an issue, a dispatch, or a scoreboard release, all
        of which make their cycle a progress cycle — so across a
        provably idle span the per-cycle walk would re-derive exactly
        those charges.  The dispatch side is re-derived here instead,
        because a provider-internal delivery (e.g. an RFC cache hit)
        can make an entry ready without counting as progress; if any
        ready entry could actually dispatch, the jump is aborted and
        the caller falls back to per-cycle stepping — a bulk charge
        must never guess.
        """
        state = self.state
        provider = self.provider
        recorder = self.recorder
        counters = self.counters
        profile = self._issue_stage.current_stalls()
        ready = provider.ready_entries()
        blocked = []
        if ready:
            undispatched_mem = state.undispatched_mem
            can_dispatch = self.units.can_dispatch_bucket
            for entry in ready:
                dec = entry.dec
                if dec.is_memory:
                    pending = undispatched_mem.get(entry.warp_id)
                    if pending and min(pending) != entry.trace_index:
                        continue
                if can_dispatch(dec.bucket):
                    return 0
                blocked.append(entry)

        start = state.cycle
        state.cycle += span
        counters.cycles = state.cycle
        counters.fast_forwarded_cycles += span
        stamp = start + 1  # coalesced events carry the first skipped cycle
        for warp_id, reason, pc, opcode_name in profile:
            if reason == "scoreboard":
                counters.issue_stalls_scoreboard += span
            else:
                counters.issue_stalls_collector += span
            if recorder is not None:
                recorder.emit(
                    stamp, EventKind.ISSUE_STALL, warp=warp_id,
                    reason=reason, trace_index=pc,
                    opcode=opcode_name, count=span,
                )
        for entry in blocked:
            counters.exec_busy_stalls += span
            if recorder is not None:
                recorder.emit(
                    stamp, EventKind.DISPATCH_STALL, warp=entry.warp_id,
                    reason="exec_busy", trace_index=entry.trace_index,
                    opcode=entry.dec.opcode_name, count=span,
                )
        if ready:
            state.dispatch_rotor += span
        for scheduler in self.schedulers:
            scheduler.on_idle_span(span)
        provider.on_fast_forward(span)
        if self.timeline is not None:
            self.timeline.advance(
                start, state.cycle, counters,
                self.regfile.reads, self.regfile.writes,
            )
        return span

    def _finished(self) -> bool:
        state = self.state
        return (
            state.active_warps == 0
            and state.in_flight == 0
            and not state.write_queue
        )

    def _drain_write_queue(self) -> None:
        """Flush writes left after the last instruction retires."""
        for queued in self.state.write_queue:
            self.regfile.write(queued.warp_id, queued.register_id, queued.value)
            self.counters.cycles += 1  # each residual write costs a port cycle
            if self.recorder is not None:
                self.recorder.emit(
                    self.counters.cycles, EventKind.WRITEBACK,
                    warp=queued.warp_id, reason="drain",
                    register=queued.register_id,
                )
        self.state.write_queue.clear()
        self.state.write_requests.clear()


def simulate_baseline(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
    fast_forward: bool = True,
) -> SimulationResult:
    """Run the unmodified-GPU configuration over ``trace``."""
    engine = SMEngine(trace, config=config, memory_seed=memory_seed,
                      preload=preload, recorder=recorder,
                      fast_forward=fast_forward)
    return engine.run()
