"""The cycle-level SM engine.

One :class:`SMEngine` simulates a single streaming multiprocessor
running a :class:`~repro.kernels.trace.KernelTrace`.  The pipeline per
cycle, processed back-to-front so results never skip a stage:

1. **writeback** — queued RF writes arbitrate for bank ports together
   with operand reads; granted writes may release the scoreboard.
2. **complete** — functional units finishing this cycle hand results to
   the operand provider, which routes them (RF queue / collector / both,
   depending on the design).
3. **dispatch** — instructions whose operands are complete go to a
   functional unit, round-robin across warps, limited by unit widths.
4. **collect** — collectors request missing operands; the bank arbiter
   grants at most one access per bank.
5. **issue** — schedulers pick warps (GTO by default); the next trace
   instruction issues when the scoreboard is clear, the provider has
   room, and no branch is unresolved.

The engine also executes instruction *semantics* (functional layer):
operand values travel through collectors and forwarding paths exactly as
the hardware would move them, and tests compare final memory/register
images across designs to prove bypassing preserves results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import DeadlockError, SimulationError
from ..isa import Instruction, OpClass
from ..isa.registers import SINK_REGISTER
from ..kernels.trace import KernelTrace
from ..stats.counters import Counters
from ..stats.trace import EventKind
from .banks import AccessRequest, BankArbiter
from .collector import BaselineCollectorPool, InflightInstruction, OperandProvider
from .execution import ExecutionUnits, latency_for
from .memory import MemoryModel
from .regfile import BankedRegisterFile
from .scheduler import make_scheduler
from .scoreboard import Scoreboard

#: Cycles without any progress before the engine declares a deadlock.
_DEADLOCK_LIMIT = 20_000


@dataclass
class _QueuedWrite:
    """One pending RF write awaiting a bank port."""

    warp_id: int
    register_id: int
    value: int
    age: int
    entry: Optional[InflightInstruction] = None
    release_on_grant: bool = False


@dataclass
class _WarpState:
    """Issue-side state of one warp."""

    warp_id: int
    trace: List[Instruction]
    pc: int = 0
    control_pending: bool = False

    @property
    def done(self) -> bool:
        return self.pc >= len(self.trace)

    @property
    def next_instruction(self) -> Optional[Instruction]:
        return None if self.done else self.trace[self.pc]


@dataclass
class SimulationResult:
    """Everything a run produces."""

    counters: Counters
    register_image: Dict[Tuple[int, int], int]
    memory_image: Dict[int, int]

    @property
    def ipc(self) -> float:
        return self.counters.ipc


class SMEngine:
    """Cycle-level simulator of one SM over a kernel trace."""

    def __init__(
        self,
        trace: KernelTrace,
        config: Optional[GPUConfig] = None,
        provider_factory=None,
        memory_seed: int = 0,
        timeline=None,
        preload: Optional[Dict[int, int]] = None,
        recorder=None,
    ):
        self.config = config or GPUConfig()
        if trace.num_warps > self.config.max_warps_per_sm:
            raise SimulationError(
                f"{trace.num_warps} warps exceed the SM limit "
                f"{self.config.max_warps_per_sm}"
            )
        self.trace = trace
        self.counters = Counters()
        self.regfile = BankedRegisterFile(self.config)
        self.memory = MemoryModel(self.config, seed=memory_seed)
        if preload:
            # Launch-time input data (absolute addresses; use
            # MemoryModel.thread_address to target a warp's window).
            for address, value in preload.items():
                self.memory.store(address, value)
        self.arbiter = BankArbiter(self.config.num_banks)
        self.units = ExecutionUnits(self.config)
        self.scoreboard = Scoreboard(max(1, trace.num_warps))

        self.warps = [
            _WarpState(warp.warp_id, list(warp.instructions)) for warp in trace
        ]
        self.warps.sort(key=lambda w: w.warp_id)
        self._warp_index_by_id = {
            warp.warp_id: index for index, warp in enumerate(self.warps)
        }

        factory = provider_factory or (
            lambda engine: BaselineCollectorPool(
                engine, engine.config.num_operand_collectors
            )
        )
        self.provider: OperandProvider = factory(self)

        self.schedulers = self._build_schedulers()

        self.cycle = 0
        self._write_queue: List[_QueuedWrite] = []
        self._completions: Dict[int, List[Tuple[InflightInstruction, Optional[int]]]] = {}
        self._in_flight = 0
        self._dispatch_rotor = 0
        self._write_age = 0
        # Granted reads in flight through the bank/crossbar pipeline:
        # delivery cycle -> [(tag, warp_id, register_id)].
        self._reads_in_flight: Dict[int, List[Tuple[object, int, int]]] = {}
        self._inflight_read_tags: set = set()
        # Per-warp issued-but-undispatched memory instructions: memory
        # effects apply at dispatch, so dispatching them in program order
        # preserves same-address load/store ordering within a warp.
        self._undispatched_mem: Dict[int, set] = {}
        # Warp-uniform predicate file (the lane-accurate version lives in
        # repro.simt): (warp_id, predicate_id) -> bool.
        self.predicates: Dict[Tuple[int, int], bool] = {}
        # Optional per-interval sampler (see repro.stats.timeline).
        self.timeline = timeline
        # Optional cycle-level event recorder (see repro.stats.trace).
        # Every emit site below is guarded by one `is not None` check so
        # the untraced hot path does no tracing work at all.
        self.recorder = recorder

    def _build_schedulers(self):
        groups: Dict[int, List[int]] = {}
        for warp in self.warps:
            groups.setdefault(
                warp.warp_id % self.config.num_schedulers, []
            ).append(warp.warp_id)
        return [
            make_scheduler(self.config.scheduler_policy, sched_id, warp_ids,
                           active_size=self.config.two_level_active_warps)
            for sched_id, warp_ids in sorted(groups.items())
        ]

    # ------------------------------------------------------------------
    # services used by providers
    # ------------------------------------------------------------------

    def enqueue_rf_write(
        self,
        entry: Optional[InflightInstruction],
        value: int,
        warp_id: Optional[int] = None,
        register_id: Optional[int] = None,
        release_on_grant: bool = False,
    ) -> None:
        """Queue a physical RF write.

        The value becomes architecturally visible immediately (a read
        racing the queued write would be served by write-buffer
        forwarding in hardware); the queue entry models only the bank
        port the write will consume.
        """
        if entry is not None:
            warp_id = entry.warp_id
            register_id = entry.inst.dest.id  # type: ignore[union-attr]
        if warp_id is None or register_id is None:
            raise SimulationError("enqueue_rf_write needs a target register")
        self.regfile.poke(warp_id, register_id, value)
        self._write_age += 1
        self._write_queue.append(
            _QueuedWrite(
                warp_id=warp_id,
                register_id=register_id,
                value=value,
                age=self._write_age,
                entry=entry if release_on_grant else None,
                release_on_grant=release_on_grant,
            )
        )

    def release_scoreboard(self, entry: InflightInstruction) -> None:
        """Release ``entry``'s destination and retire the instruction."""
        warp = self.warps[self._warp_index(entry.warp_id)]
        self.scoreboard.release(entry.warp_id, entry.inst)
        if entry.inst.is_control:
            warp.control_pending = False
        self._retire(entry)

    def _retire(self, entry: InflightInstruction) -> None:
        self._in_flight -= 1
        self.counters.instructions += 1
        if self.recorder is not None:
            self.recorder.emit(
                self.cycle, EventKind.COMMIT, warp=entry.warp_id,
                trace_index=entry.trace_index, opcode=entry.inst.opcode.name,
            )
        if entry.inst.is_memory:
            self.counters.mem_instructions += 1
        if entry.dispatch_cycle is not None:
            wait = entry.dispatch_cycle - entry.issue_cycle
            lifetime = self.cycle - entry.issue_cycle
            self.counters.oc_wait_cycles += wait
            self.counters.lifetime_cycles += lifetime
            if entry.inst.is_memory:
                self.counters.oc_wait_cycles_memory += wait
                self.counters.lifetime_cycles_memory += lifetime

    def _warp_index(self, warp_id: int) -> int:
        try:
            return self._warp_index_by_id[warp_id]
        except KeyError:
            raise SimulationError(f"unknown warp id {warp_id}") from None

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> SimulationResult:
        """Simulate until every warp drains (or raise on deadlock)."""
        idle_cycles = 0
        while not self._finished():
            if self.cycle >= max_cycles:
                raise DeadlockError("max_cycles exceeded", self.cycle)
            progress = self._step()
            idle_cycles = 0 if progress else idle_cycles + 1
            if idle_cycles > _DEADLOCK_LIMIT:
                raise DeadlockError("no forward progress", self.cycle)
        self.provider.drain()
        self._drain_write_queue()
        self.counters.rf_reads = self.regfile.reads
        self.counters.rf_writes = self.regfile.writes
        if self.timeline is not None:
            # The drain tail (provider flush + residual writes) falls
            # between sampling-grid points; emit one final sample so the
            # series always reaches the end of the run.
            self.timeline.finalize(
                self.counters.cycles, self.counters,
                self.regfile.reads, self.regfile.writes,
            )
        return SimulationResult(
            counters=self.counters,
            register_image=self.regfile.snapshot(),
            memory_image=self.memory.image_snapshot(),
        )

    def _finished(self) -> bool:
        return (
            all(warp.done for warp in self.warps)
            and self._in_flight == 0
            and not self._write_queue
        )

    def _step(self) -> bool:
        """Advance one cycle; returns whether any event happened."""
        self.cycle += 1
        self.units.new_cycle()
        progress = False

        progress |= self._complete_stage()
        progress |= self._memory_and_bank_stage()
        progress |= self._dispatch_stage()
        progress |= self._issue_stage()
        self.counters.cycles = self.cycle
        if self.timeline is not None:
            self.timeline.maybe_sample(
                self.cycle, self.counters,
                self.regfile.reads, self.regfile.writes,
            )
        return progress

    # -- completion -------------------------------------------------------

    def _complete_stage(self) -> bool:
        finishing = self._completions.pop(self.cycle, None)
        if not finishing:
            return False
        for entry, value in finishing:
            self.provider.on_complete(entry, value)
        return True

    # -- banks: reads + writes arbitrate together ---------------------------

    def _memory_and_bank_stage(self) -> bool:
        delivered = self._deliver_due_reads()
        reads = [
            request
            for request in self.provider.read_requests(self.cycle)
            if request.tag not in self._inflight_read_tags
        ]
        writes = [
            AccessRequest(
                bank=self.regfile.bank_of(qw.warp_id, qw.register_id),
                warp_id=qw.warp_id,
                register_id=qw.register_id,
                tag=index,
                age=qw.age,
            )
            for index, qw in enumerate(self._write_queue)
        ]
        if not reads and not writes:
            return delivered

        result = self.arbiter.arbitrate(reads, writes)
        self.counters.bank_conflicts += result.conflicts
        if self.recorder is not None and result.conflicts:
            self.recorder.emit(self.cycle, EventKind.BANK_CONFLICT,
                               count=result.conflicts)

        granted_write_indexes = sorted(
            (request.tag for request in result.granted_writes), reverse=True
        )
        for index in granted_write_indexes:
            queued = self._write_queue.pop(index)
            self.regfile.write(queued.warp_id, queued.register_id, queued.value)
            if self.recorder is not None:
                self.recorder.emit(
                    self.cycle, EventKind.WRITEBACK, warp=queued.warp_id,
                    reason="granted", register=queued.register_id,
                    bank=self.regfile.bank_of(queued.warp_id,
                                              queued.register_id),
                )
            if queued.release_on_grant and queued.entry is not None:
                self.release_scoreboard(queued.entry)

        # Granted reads occupy the bank port now; the data lands in the
        # collector after the bank/crossbar pipeline latency.
        due = self.cycle + max(1, self.config.rf_read_latency)
        for request in result.granted_reads:
            self._inflight_read_tags.add(request.tag)
            self._reads_in_flight.setdefault(due, []).append(
                (request.tag, request.warp_id, request.register_id)
            )

        return bool(result.granted_reads or result.granted_writes or delivered)

    def _deliver_due_reads(self) -> bool:
        due = self._reads_in_flight.pop(self.cycle, None)
        if not due:
            return False
        width = self.config.crossbar_width
        if width and len(due) > width:
            # The crossbar moves at most `width` operands per cycle;
            # the overflow slips to the next cycle.
            due, deferred = due[:width], due[width:]
            self._reads_in_flight.setdefault(self.cycle + 1, []).extend(
                deferred
            )
        for tag, warp_id, register_id in due:
            self._inflight_read_tags.discard(tag)
            value = self.regfile.read(warp_id, register_id)
            self.provider.deliver(tag, value)
        return True

    def _drain_write_queue(self) -> None:
        """Flush writes left after the last instruction retires."""
        for queued in self._write_queue:
            self.regfile.write(queued.warp_id, queued.register_id, queued.value)
            self.counters.cycles += 1  # each residual write costs a port cycle
            if self.recorder is not None:
                self.recorder.emit(
                    self.counters.cycles, EventKind.WRITEBACK,
                    warp=queued.warp_id, reason="drain",
                    register=queued.register_id,
                )
        self._write_queue.clear()

    # -- dispatch -----------------------------------------------------------

    def _dispatch_stage(self) -> bool:
        ready = self.provider.ready_entries()
        if not ready:
            return False
        # Round-robin across warps (paper SS IV-A), oldest-first per warp.
        ready.sort(key=lambda e: (e.warp_id, e.issue_cycle, e.trace_index))
        warp_order = sorted({entry.warp_id for entry in ready})
        if warp_order:
            rotor = self._dispatch_rotor % len(warp_order)
            warp_order = warp_order[rotor:] + warp_order[:rotor]
            self._dispatch_rotor += 1
        by_warp: Dict[int, List[InflightInstruction]] = {}
        for entry in ready:
            by_warp.setdefault(entry.warp_id, []).append(entry)

        dispatched = False
        for warp_id in warp_order:
            for entry in by_warp[warp_id]:
                if entry.inst.is_memory and not self._memory_order_clear(entry):
                    continue
                if not self.units.can_dispatch(entry.inst.op_class):
                    self.counters.exec_busy_stalls += 1
                    if self.recorder is not None:
                        self.recorder.emit(
                            self.cycle, EventKind.DISPATCH_STALL,
                            warp=entry.warp_id, reason="exec_busy",
                            trace_index=entry.trace_index,
                            opcode=entry.inst.opcode.name,
                        )
                    continue
                self.units.dispatch(entry.inst.op_class)
                self.provider.on_dispatch(entry)
                entry.dispatch_cycle = self.cycle
                if self.recorder is not None:
                    self.recorder.emit(
                        self.cycle, EventKind.DISPATCH, warp=entry.warp_id,
                        trace_index=entry.trace_index,
                        opcode=entry.inst.opcode.name,
                    )
                self.scoreboard.release_reads(entry.warp_id, entry.inst)
                if entry.inst.is_memory:
                    self._undispatched_mem[entry.warp_id].discard(
                        entry.trace_index
                    )
                if entry.inst.is_control:
                    # The next PC is determined once the branch leaves the
                    # collector; issue of the successor may resume.
                    self.warps[self._warp_index(entry.warp_id)].control_pending = False
                self._start_execution(entry)
                dispatched = True
        return dispatched

    def _memory_order_clear(self, entry: InflightInstruction) -> bool:
        """Is ``entry`` the oldest undispatched memory op of its warp?"""
        pending = self._undispatched_mem.get(entry.warp_id)
        return not pending or min(pending) == entry.trace_index

    def _start_execution(self, entry: InflightInstruction) -> None:
        inst = entry.inst
        if inst.is_memory:
            latency = self.memory.latency(inst, entry.warp_id, entry.trace_index)
        else:
            latency = latency_for(inst, self.config)
        value = self._execute(entry)
        finish = self.cycle + max(1, latency)
        self._completions.setdefault(finish, []).append((entry, value))

    def _guard_satisfied(self, entry: InflightInstruction) -> bool:
        guard = entry.inst.predicate
        if guard is None:
            return True
        value = self.predicates.get((entry.warp_id, guard.id), False)
        return (not value) if guard.negated else value

    def _execute(self, entry: InflightInstruction) -> Optional[int]:
        """Functional semantics using the *collected* operand values."""
        inst = entry.inst
        if not self._guard_satisfied(entry):
            # Predicated off: consumes the pipeline slot, produces nothing.
            return None
        operands = [
            entry.operand_values.get(slot, 0)
            for slot in range(len(inst.sources))
        ]
        while len(operands) < 3:
            operands.append(inst.immediate or 0)

        if inst.is_load:
            address = self.memory.thread_address(entry.warp_id, operands[0])
            return self.memory.load(address)
        if inst.is_store:
            address = self.memory.thread_address(entry.warp_id, operands[0])
            self.memory.store(address, operands[1])
            return None
        if inst.is_control or inst.op_class is OpClass.NOP:
            return None
        if inst.opcode.semantic is None:
            raise SimulationError(f"no semantics for {inst.opcode.name}")
        if inst.dest is None:
            return None
        value = inst.opcode.semantic(operands[0], operands[1], operands[2])
        if inst.pred_dest is not None:
            self.predicates[(entry.warp_id, inst.pred_dest.id)] = bool(value)
        return value

    # -- issue ----------------------------------------------------------------

    def _issue_stage(self) -> bool:
        issued_any = False
        warp_by_id = {warp.warp_id: warp for warp in self.warps}
        for scheduler in self.schedulers:
            budget = self.config.issue_width_per_scheduler
            for warp_id in scheduler.candidate_order():
                if budget == 0:
                    break
                warp = warp_by_id[warp_id]
                issued_here = 0
                while budget > 0 and self._try_issue(warp):
                    issued_here += 1
                    budget -= 1
                    issued_any = True
                if issued_here:
                    scheduler.note_issue(warp_id)
                else:
                    # Drained warps must report stalls too: a two-level
                    # scheduler has to swap them out of the active set
                    # or pending warps would starve.
                    scheduler.note_stall(warp_id)
        return issued_any

    def _try_issue(self, warp: _WarpState) -> bool:
        inst = warp.next_instruction
        if inst is None or warp.control_pending:
            return False
        if not self.scoreboard.can_issue(warp.warp_id, inst):
            self.counters.issue_stalls_scoreboard += 1
            if self.recorder is not None:
                self.recorder.emit(
                    self.cycle, EventKind.ISSUE_STALL, warp=warp.warp_id,
                    reason="scoreboard", trace_index=warp.pc,
                    opcode=inst.opcode.name,
                )
            return False
        if not self.provider.can_accept(warp.warp_id):
            self.counters.issue_stalls_collector += 1
            if self.recorder is not None:
                self.recorder.emit(
                    self.cycle, EventKind.ISSUE_STALL, warp=warp.warp_id,
                    reason="collector", trace_index=warp.pc,
                    opcode=inst.opcode.name,
                )
            return False

        entry = InflightInstruction(
            warp_id=warp.warp_id,
            trace_index=warp.pc,
            inst=inst,
            issue_cycle=self.cycle,
        )
        self.scoreboard.reserve(warp.warp_id, inst)
        self.scoreboard.reserve_reads(warp.warp_id, inst)
        self.provider.insert(entry)
        if inst.is_memory:
            self._undispatched_mem.setdefault(warp.warp_id, set()).add(warp.pc)
        warp.pc += 1
        self._in_flight += 1
        self.counters.issued += 1
        if self.recorder is not None:
            self.recorder.emit(
                self.cycle, EventKind.ISSUE, warp=warp.warp_id,
                trace_index=entry.trace_index, opcode=inst.opcode.name,
            )
        if inst.is_control:
            warp.control_pending = True
        return True


def simulate_baseline(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
) -> SimulationResult:
    """Run the unmodified-GPU configuration over ``trace``."""
    engine = SMEngine(trace, config=config, memory_seed=memory_seed,
                      preload=preload, recorder=recorder)
    return engine.run()
