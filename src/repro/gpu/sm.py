"""The cycle-level SM engine.

One :class:`SMEngine` simulates a single streaming multiprocessor
running a :class:`~repro.kernels.trace.KernelTrace`.  The engine is a
thin conductor: each cycle it runs four explicit pipeline stages
(:mod:`repro.gpu.stages`) back-to-front so results never skip a stage —
complete, banks (writeback + operand reads), dispatch (+ execute), and
issue.  All mutable pipeline state lives in one shared
:class:`~repro.gpu.stages.EngineState`; static per-instruction facts
are precomputed once per trace by the decode cache
(:mod:`repro.gpu.decode`).

Operand movement is delegated to an
:class:`~repro.gpu.collector.OperandProvider` — the one pluggable
surface that distinguishes the simulated designs (baseline OCUs, BOW
collectors, RFC).  The engine also executes instruction *semantics*
(functional layer): operand values travel through collectors and
forwarding paths exactly as the hardware would move them, and tests
compare final memory/register images across designs to prove bypassing
preserves results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import DeadlockError, SimulationError
from ..isa import Instruction
from ..kernels.trace import KernelTrace
from ..stats.counters import Counters
from ..stats.trace import EventKind
from .banks import BankArbiter
from .collector import BaselineCollectorPool, InflightInstruction, OperandProvider
from .decode import DecodedOp, decode_warp
from .execution import ExecutionUnits
from .memory import MemoryModel
from .regfile import BankedRegisterFile
from .scheduler import make_scheduler
from .scoreboard import Scoreboard
from .stages import (
    BankStage,
    CompleteStage,
    DispatchStage,
    EngineState,
    IssueStage,
    QueuedWrite,
)

#: Cycles without any progress before the engine declares a deadlock.
_DEADLOCK_LIMIT = 20_000


class _WarpState:
    """Issue-side state of one warp.

    Besides the program counter, a warp caches direct references to its
    decode records and its scoreboard views (the *same* set/dict objects
    the :class:`~repro.gpu.scoreboard.Scoreboard` owns), so the issue
    stage checks hazards without per-cycle lookups.
    """

    __slots__ = ("warp_id", "trace", "pc", "control_pending", "end",
                 "decoded", "sb_pending", "sb_reads", "sb_preds",
                 "sb_pred_reads")

    def __init__(self, warp_id: int, trace: List[Instruction]):
        self.warp_id = warp_id
        self.trace = trace
        self.pc = 0
        self.control_pending = False
        self.end = len(trace)
        self.decoded: List[DecodedOp] = []
        self.sb_pending: set = set()
        self.sb_reads: dict = {}
        self.sb_preds: set = set()
        self.sb_pred_reads: dict = {}

    @property
    def done(self) -> bool:
        return self.pc >= self.end

    @property
    def next_instruction(self) -> Optional[Instruction]:
        return None if self.pc >= self.end else self.trace[self.pc]


@dataclass
class SimulationResult:
    """Everything a run produces."""

    counters: Counters
    register_image: Dict[Tuple[int, int], int]
    memory_image: Dict[int, int]

    @property
    def ipc(self) -> float:
        return self.counters.ipc


class SMEngine:
    """Cycle-level simulator of one SM over a kernel trace."""

    def __init__(
        self,
        trace: KernelTrace,
        config: Optional[GPUConfig] = None,
        provider_factory=None,
        memory_seed: int = 0,
        timeline=None,
        preload: Optional[Dict[int, int]] = None,
        recorder=None,
    ):
        self.config = config or GPUConfig()
        if trace.num_warps > self.config.max_warps_per_sm:
            raise SimulationError(
                f"{trace.num_warps} warps exceed the SM limit "
                f"{self.config.max_warps_per_sm}"
            )
        self.trace = trace
        self.counters = Counters()
        self.regfile = BankedRegisterFile(self.config)
        self.memory = MemoryModel(self.config, seed=memory_seed)
        if preload:
            # Launch-time input data (absolute addresses; use
            # MemoryModel.thread_address to target a warp's window).
            for address, value in preload.items():
                self.memory.store(address, value)
        self.arbiter = BankArbiter(self.config.num_banks)
        self.units = ExecutionUnits(self.config)
        self.scoreboard = Scoreboard(max(1, trace.num_warps))

        self.warps = [
            _WarpState(warp.warp_id, list(warp.instructions)) for warp in trace
        ]
        self.warps.sort(key=lambda w: w.warp_id)
        self._warp_by_id: Dict[int, _WarpState] = {}
        for warp in self.warps:
            warp.decoded = decode_warp(warp.warp_id, warp.trace, self.config)
            (warp.sb_pending, warp.sb_reads, warp.sb_preds,
             warp.sb_pred_reads) = (
                self.scoreboard.warp_views(warp.warp_id)
            )
            self._warp_by_id[warp.warp_id] = warp
        self._warp_index_by_id = {
            warp.warp_id: index for index, warp in enumerate(self.warps)
        }

        self.state = EngineState()
        self.state.active_warps = sum(1 for warp in self.warps if warp.end)

        # Warp-uniform predicate file (the lane-accurate version lives in
        # repro.simt): (warp_id, predicate_id) -> bool.
        self.predicates: Dict[Tuple[int, int], bool] = {}
        # Optional per-interval sampler (see repro.stats.timeline).
        self.timeline = timeline
        # Optional cycle-level event recorder (see repro.stats.trace).
        # Every emit site is guarded by one `is not None` check so the
        # untraced hot path does no tracing work at all.
        self.recorder = recorder

        factory = provider_factory or (
            lambda engine: BaselineCollectorPool(
                engine, engine.config.num_operand_collectors
            )
        )
        self.provider: OperandProvider = factory(self)

        self.schedulers = self._build_schedulers()
        self.stages = (
            CompleteStage(self),
            BankStage(self),
            DispatchStage(self),
            IssueStage(self),
        )

    @property
    def cycle(self) -> int:
        """Current simulated cycle (lives in the shared EngineState)."""
        return self.state.cycle

    @cycle.setter
    def cycle(self, value: int) -> None:
        self.state.cycle = value

    def warp_state(self, warp_id: int) -> _WarpState:
        """The issue-side state of ``warp_id``."""
        try:
            return self._warp_by_id[warp_id]
        except KeyError:
            raise SimulationError(f"unknown warp id {warp_id}") from None

    def _build_schedulers(self):
        groups: Dict[int, List[int]] = {}
        for warp in self.warps:
            groups.setdefault(
                warp.warp_id % self.config.num_schedulers, []
            ).append(warp.warp_id)
        return [
            make_scheduler(self.config.scheduler_policy, sched_id, warp_ids,
                           active_size=self.config.two_level_active_warps)
            for sched_id, warp_ids in sorted(groups.items())
        ]

    # ------------------------------------------------------------------
    # services used by providers
    # ------------------------------------------------------------------

    def enqueue_rf_write(
        self,
        entry: Optional[InflightInstruction],
        value: int,
        warp_id: Optional[int] = None,
        register_id: Optional[int] = None,
        release_on_grant: bool = False,
    ) -> None:
        """Queue a physical RF write.

        The value becomes architecturally visible immediately (a read
        racing the queued write would be served by write-buffer
        forwarding in hardware); the queue entry models only the bank
        port the write will consume.
        """
        if entry is not None:
            warp_id = entry.warp_id
            register_id = entry.inst.dest.id  # type: ignore[union-attr]
        if warp_id is None or register_id is None:
            raise SimulationError("enqueue_rf_write needs a target register")
        self.regfile.poke(warp_id, register_id, value)
        state = self.state
        state.write_age += 1
        state.write_queue.append(
            QueuedWrite(
                warp_id=warp_id,
                register_id=register_id,
                value=value,
                age=state.write_age,
                bank=self.regfile.bank_of(warp_id, register_id),
                entry=entry if release_on_grant else None,
                release_on_grant=release_on_grant,
            )
        )

    def release_scoreboard(self, entry: InflightInstruction) -> None:
        """Release ``entry``'s destination and retire the instruction."""
        warp = self.warp_state(entry.warp_id)
        self.scoreboard.release(entry.warp_id, entry.inst)
        if entry.inst.is_control:
            warp.control_pending = False
        self._retire(entry)

    def _retire(self, entry: InflightInstruction) -> None:
        self.state.in_flight -= 1
        counters = self.counters
        counters.instructions += 1
        if self.recorder is not None:
            self.recorder.emit(
                self.state.cycle, EventKind.COMMIT, warp=entry.warp_id,
                trace_index=entry.trace_index, opcode=entry.inst.opcode.name,
            )
        is_memory = entry.inst.is_memory
        if is_memory:
            counters.mem_instructions += 1
        if entry.dispatch_cycle is not None:
            wait = entry.dispatch_cycle - entry.issue_cycle
            lifetime = self.state.cycle - entry.issue_cycle
            counters.oc_wait_cycles += wait
            counters.lifetime_cycles += lifetime
            if is_memory:
                counters.oc_wait_cycles_memory += wait
                counters.lifetime_cycles_memory += lifetime

    def _warp_index(self, warp_id: int) -> int:
        try:
            return self._warp_index_by_id[warp_id]
        except KeyError:
            raise SimulationError(f"unknown warp id {warp_id}") from None

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> SimulationResult:
        """Simulate until every warp drains (or raise on deadlock)."""
        state = self.state
        counters = self.counters
        timeline = self.timeline
        new_cycle = self.units.new_cycle
        complete, banks, dispatch, issue = (
            stage.run for stage in self.stages
        )
        idle_cycles = 0
        while state.active_warps or state.in_flight or state.write_queue:
            if state.cycle >= max_cycles:
                raise DeadlockError("max_cycles exceeded", state.cycle)
            state.cycle += 1
            new_cycle()
            progress = complete() | banks() | dispatch() | issue()
            counters.cycles = state.cycle
            if timeline is not None:
                timeline.maybe_sample(
                    state.cycle, counters,
                    self.regfile.reads, self.regfile.writes,
                )
            if progress:
                idle_cycles = 0
            else:
                idle_cycles += 1
                if idle_cycles > _DEADLOCK_LIMIT:
                    raise DeadlockError("no forward progress", state.cycle)
        self.provider.drain()
        self._drain_write_queue()
        counters.rf_reads = self.regfile.reads
        counters.rf_writes = self.regfile.writes
        if timeline is not None:
            # The drain tail (provider flush + residual writes) falls
            # between sampling-grid points; emit one final sample so the
            # series always reaches the end of the run.
            timeline.finalize(
                counters.cycles, counters,
                self.regfile.reads, self.regfile.writes,
            )
        return SimulationResult(
            counters=counters,
            register_image=self.regfile.snapshot(),
            memory_image=self.memory.image_snapshot(),
        )

    def _finished(self) -> bool:
        state = self.state
        return (
            state.active_warps == 0
            and state.in_flight == 0
            and not state.write_queue
        )

    def _drain_write_queue(self) -> None:
        """Flush writes left after the last instruction retires."""
        for queued in self.state.write_queue:
            self.regfile.write(queued.warp_id, queued.register_id, queued.value)
            self.counters.cycles += 1  # each residual write costs a port cycle
            if self.recorder is not None:
                self.recorder.emit(
                    self.counters.cycles, EventKind.WRITEBACK,
                    warp=queued.warp_id, reason="drain",
                    register=queued.register_id,
                )
        self.state.write_queue.clear()


def simulate_baseline(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
) -> SimulationResult:
    """Run the unmodified-GPU configuration over ``trace``."""
    engine = SMEngine(trace, config=config, memory_seed=memory_seed,
                      preload=preload, recorder=recorder)
    return engine.run()
