"""Execution units: dispatch-width limits and completion scheduling.

Units are fully pipelined (initiation interval one), so the structural
constraint is dispatch width per class per cycle — four ALU groups, one
SFU, one memory unit in the Pascal-like default.  Completion times are
tracked in a cycle-indexed map the engine drains.
"""

from __future__ import annotations

from typing import Dict

from ..config import GPUConfig
from ..errors import SimulationError
from ..isa import Instruction, OpClass


def latency_for(inst: Instruction, config: GPUConfig) -> int:
    """Fixed execution latency of a non-memory instruction.

    Memory latencies are sampled per access by the memory model; control
    instructions take an ALU-like resolution latency plus a small branch
    penalty.
    """
    op_class = inst.op_class
    if op_class is OpClass.ALU:
        return config.alu_latency
    if op_class is OpClass.SFU:
        return config.sfu_latency
    if op_class is OpClass.CONTROL:
        return config.alu_latency + 2
    if op_class is OpClass.NOP:
        return 1
    raise SimulationError(f"latency_for called for memory op {inst.opcode.name}")


#: Dispatch-bucket indices.  ``DecodedOp.bucket`` carries one of these
#: so the per-cycle budget check is two list indexings instead of dict
#: lookups keyed by enum members (enum ``__hash__`` is measurable
#: overhead on the hottest dispatch path).  Control and NOP resolve in
#: the scheduler/branch unit; model them as sharing the ALU ports.
BUCKET_ALU, BUCKET_SFU, BUCKET_MEM = 0, 1, 2

_BUCKET_OF: Dict[OpClass, int] = {
    OpClass.ALU: BUCKET_ALU,
    OpClass.SFU: BUCKET_SFU,
    OpClass.MEM_LOAD: BUCKET_MEM,
    OpClass.MEM_STORE: BUCKET_MEM,
    OpClass.CONTROL: BUCKET_ALU,
    OpClass.NOP: BUCKET_ALU,
}


class ExecutionUnits:
    """Per-class dispatch-width tracker for one cycle."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self._capacity = [
            config.num_alu_units,  # BUCKET_ALU
            config.num_sfu_units,  # BUCKET_SFU
            config.num_mem_units,  # BUCKET_MEM
        ]
        self._used = [0, 0, 0]
        # True when any dispatch happened since the last reset; lets
        # the engine skip new_cycle() on untouched cycles.
        self._any = False

    def new_cycle(self) -> None:
        """Reset this cycle's dispatch budget."""
        if self._any:
            used = self._used
            used[0] = used[1] = used[2] = 0
            self._any = False

    def _bucket(self, op_class: OpClass) -> int:
        return _BUCKET_OF[op_class]

    def can_dispatch(self, op_class: OpClass) -> bool:
        bucket = _BUCKET_OF[op_class]
        return self._used[bucket] < self._capacity[bucket]

    def dispatch(self, op_class: OpClass) -> None:
        if not self.can_dispatch(op_class):
            raise SimulationError(f"dispatch over capacity for {op_class}")
        self._used[_BUCKET_OF[op_class]] += 1
        self._any = True

    # -- decoded fast path: the caller already holds the bucket ---------

    def can_dispatch_bucket(self, bucket: int) -> bool:
        """`can_dispatch` for a pre-bucketed class (decode-cache path)."""
        return self._used[bucket] < self._capacity[bucket]

    def dispatch_bucket(self, bucket: int) -> None:
        """`dispatch` for a pre-bucketed class the caller just checked."""
        self._used[bucket] += 1
        self._any = True
