"""Execution units: dispatch-width limits and completion scheduling.

Units are fully pipelined (initiation interval one), so the structural
constraint is dispatch width per class per cycle — four ALU groups, one
SFU, one memory unit in the Pascal-like default.  Completion times are
tracked in a cycle-indexed map the engine drains.
"""

from __future__ import annotations

from typing import Dict

from ..config import GPUConfig
from ..errors import SimulationError
from ..isa import Instruction, OpClass


def latency_for(inst: Instruction, config: GPUConfig) -> int:
    """Fixed execution latency of a non-memory instruction.

    Memory latencies are sampled per access by the memory model; control
    instructions take an ALU-like resolution latency plus a small branch
    penalty.
    """
    op_class = inst.op_class
    if op_class is OpClass.ALU:
        return config.alu_latency
    if op_class is OpClass.SFU:
        return config.sfu_latency
    if op_class is OpClass.CONTROL:
        return config.alu_latency + 2
    if op_class is OpClass.NOP:
        return 1
    raise SimulationError(f"latency_for called for memory op {inst.opcode.name}")


class ExecutionUnits:
    """Per-class dispatch-width tracker for one cycle."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self._capacity = {
            OpClass.ALU: config.num_alu_units,
            OpClass.SFU: config.num_sfu_units,
            OpClass.MEM_LOAD: config.num_mem_units,
            OpClass.MEM_STORE: config.num_mem_units,
            # Control and NOP resolve in the scheduler/branch unit; model
            # them as sharing the ALU dispatch ports.
            OpClass.CONTROL: config.num_alu_units,
            OpClass.NOP: config.num_alu_units,
        }
        self._used: Dict[OpClass, int] = {}

    def new_cycle(self) -> None:
        """Reset this cycle's dispatch budget."""
        self._used = {}

    def _bucket(self, op_class: OpClass) -> OpClass:
        if op_class in (OpClass.MEM_LOAD, OpClass.MEM_STORE):
            return OpClass.MEM_LOAD
        if op_class in (OpClass.CONTROL, OpClass.NOP):
            return OpClass.ALU
        return op_class

    def can_dispatch(self, op_class: OpClass) -> bool:
        bucket = self._bucket(op_class)
        return self._used.get(bucket, 0) < self._capacity[bucket]

    def dispatch(self, op_class: OpClass) -> None:
        bucket = self._bucket(op_class)
        if not self.can_dispatch(op_class):
            raise SimulationError(f"dispatch over capacity for {op_class}")
        self._used[bucket] = self._used.get(bucket, 0) + 1

    # -- decoded fast path: the caller already holds the bucket ---------

    def can_dispatch_bucket(self, bucket: OpClass) -> bool:
        """`can_dispatch` for a pre-bucketed class (decode-cache path)."""
        return self._used.get(bucket, 0) < self._capacity[bucket]

    def dispatch_bucket(self, bucket: OpClass) -> None:
        """`dispatch` for a pre-bucketed class the caller just checked."""
        self._used[bucket] = self._used.get(bucket, 0) + 1
