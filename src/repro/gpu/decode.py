"""Per-instruction decode cache: static facts computed once per trace.

Every cycle the engine and the operand providers need the same small
facts about an instruction — which registers it reads, which banks they
live in, whether it writes the RF, its execution-unit bucket, its fixed
latency, its writeback hint.  All of that is static per (warp,
instruction): deriving it per cycle through ``Instruction``'s property
chain (`inst.opcode.op_class`, `Register.id`, ...) is pure hot-loop
overhead.

:func:`decode_warp` precomputes it into :class:`DecodedOp` records —
one per trace position — that the pipeline stages and providers index
directly.  Bank ids are warp-dependent (``bank_of(warp, reg)``), which
is why decoding is per-warp rather than per-static-instruction.

Decoding is a pure read of the instruction; it never changes what the
engine simulates, only where the facts are looked up.
"""

from __future__ import annotations

from typing import List, Sequence

from ..config import GPUConfig
from ..isa import Instruction, OpClass, WritebackHint
from ..isa.registers import SINK_REGISTER
from .execution import BUCKET_ALU, BUCKET_MEM, BUCKET_SFU, latency_for


class DecodedOp:
    """Static metadata of one trace position of one warp.

    Attributes:
        inst: the decoded :class:`~repro.isa.Instruction`.
        opcode_name: ``inst.opcode.name`` (trace-event payloads).
        op_class: the instruction's :class:`~repro.isa.OpClass`.
        bucket: execution-unit dispatch bucket index (one of the
            ``BUCKET_*`` constants in :mod:`repro.gpu.execution`;
            memory ops share the memory unit, control/NOP the ALU
            ports).
        is_memory / is_load / is_store / is_control: class tests.
        num_sources: register source-operand count.
        source_ids: source register ids, in operand-slot order.
        source_banks: bank of each source for the owning warp.
        dest_id: destination register id (``None`` when the opcode
            writes nothing; the sink register keeps its raw id here).
        rf_dest_id: destination id when it is a *real* RF register —
            ``None`` for no-dest opcodes and for the ``$o127`` sink.
            This is the id the scoreboard and the writeback path track.
        dest_bank: bank of ``rf_dest_id`` for the owning warp.
        imm_pad: the operand-slot padding value (``immediate or 0``).
        semantic: the opcode's semantic callable (may be ``None``).
        latency: fixed execution latency; ``None`` for memory ops,
            whose latency the memory model samples per access.
        guard_id / guard_negated: guarding predicate, when present.
        pred_dest_id: predicate register written, when present.
        hint: the BOW-WR writeback hint.
        hint_rf_only / hint_oc_only: hint identity tests, precomputed.
    """

    __slots__ = (
        "inst", "opcode_name", "op_class", "bucket",
        "is_memory", "is_load", "is_store", "is_control", "is_nop",
        "num_sources", "source_ids", "source_banks",
        "dest_id", "rf_dest_id", "dest_bank",
        "imm_pad", "semantic", "latency",
        "guard_id", "guard_negated", "pred_dest_id",
        "hint", "hint_rf_only", "hint_oc_only",
    )

    def __init__(self, warp_id: int, inst: Instruction, config: GPUConfig):
        opcode = inst.opcode
        op_class = opcode.op_class
        self.inst = inst
        self.opcode_name = opcode.name
        self.op_class = op_class
        self.is_memory = op_class.is_memory
        self.is_load = op_class is OpClass.MEM_LOAD
        self.is_store = op_class is OpClass.MEM_STORE
        self.is_control = op_class.is_control
        self.is_nop = op_class is OpClass.NOP
        if self.is_memory:
            self.bucket = BUCKET_MEM
            self.latency = None
        else:
            self.bucket = (
                BUCKET_SFU if op_class is OpClass.SFU else BUCKET_ALU
            )
            self.latency = latency_for(inst, config)
        self.num_sources = len(inst.sources)
        self.source_ids = tuple(src.id for src in inst.sources)
        self.source_banks = tuple(
            config.bank_of(warp_id, reg_id) for reg_id in self.source_ids
        )
        dest = inst.dest
        self.dest_id = None if dest is None else dest.id
        if dest is None or dest == SINK_REGISTER:
            self.rf_dest_id = None
            self.dest_bank = None
        else:
            self.rf_dest_id = dest.id
            self.dest_bank = config.bank_of(warp_id, dest.id)
        self.imm_pad = inst.immediate or 0
        self.semantic = opcode.semantic
        guard = inst.predicate
        self.guard_id = None if guard is None else guard.id
        self.guard_negated = guard is not None and guard.negated
        self.pred_dest_id = (
            None if inst.pred_dest is None else inst.pred_dest.id
        )
        self.hint = inst.hint
        self.hint_rf_only = inst.hint is WritebackHint.RF_ONLY
        self.hint_oc_only = inst.hint is WritebackHint.OC_ONLY

    def __repr__(self) -> str:
        return f"DecodedOp({self.opcode_name}, sources={self.source_ids})"


def decode_op(warp_id: int, inst: Instruction,
              config: GPUConfig) -> DecodedOp:
    """Decode one instruction for ``warp_id`` (provider fallback path)."""
    return DecodedOp(warp_id, inst, config)


def decode_warp(warp_id: int, instructions: Sequence[Instruction],
                config: GPUConfig) -> List[DecodedOp]:
    """Decode a warp's whole trace, indexable by trace position."""
    return [DecodedOp(warp_id, inst, config) for inst in instructions]


#: Attribute used to stash per-(config, warp) decode results on a
#: KernelTrace.  Decoding is a pure function of (warp_id, instructions,
#: config) and traces are treated as immutable once built, so repeated
#: engines over the same trace object (benchmark rounds, design sweeps,
#: fast-forward parity runs) can share one decode.
_CACHE_ATTR = "_decoded_ops_cache"


def decode_warp_cached(trace, warp_id: int,
                       instructions: Sequence[Instruction],
                       config: GPUConfig) -> List[DecodedOp]:
    """Like :func:`decode_warp`, memoized on the owning trace object.

    The cache key is ``(config, warp_id)`` — :class:`GPUConfig` is a
    frozen (hashable) dataclass, and bank mapping is warp-dependent.
    Falls back to plain decoding when the trace object refuses
    attribute assignment (e.g. a slotted stand-in in tests).
    """
    cache = getattr(trace, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        try:
            setattr(trace, _CACHE_ATTR, cache)
        except (AttributeError, TypeError):
            return decode_warp(warp_id, instructions, config)
    key = (config, warp_id)
    decoded = cache.get(key)
    if decoded is None:
        decoded = cache[key] = decode_warp(warp_id, instructions, config)
    return decoded
