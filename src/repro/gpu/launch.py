"""Kernel launches across multiple SMs.

The paper's background (SS II) describes the GPU execution model: a
kernel is decomposed into thread blocks, thread blocks are assigned to
SMs, and each SM schedules its warps independently.  The evaluation
itself is per-SM (SMs share only the L2/DRAM, which our latency model
folds into per-access draws), so a launch is simulated as independent
per-SM runs whose counters are aggregated and whose finish time is the
slowest SM.

This is the entry point for whole-GPU numbers: speedups measured here
match the per-SM figures when thread blocks are balanced, and expose
load imbalance when they are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import GPUConfig
from ..errors import SimulationError
from ..kernels.trace import KernelTrace, WarpTrace
from ..stats.counters import Counters
from .sm import SimulationResult


@dataclass(frozen=True)
class LaunchResult:
    """Outcome of a multi-SM kernel launch.

    Attributes:
        per_sm: each SM's simulation result, keyed by SM id.
        counters: aggregated event counts (cycles = slowest SM).
    """

    per_sm: Dict[int, SimulationResult]
    counters: Counters

    @property
    def ipc_per_sm(self) -> float:
        """Aggregate IPC normalized per SM (comparable to one-SM runs)."""
        if not self.per_sm or self.counters.cycles == 0:
            return 0.0
        return (self.counters.instructions
                / self.counters.cycles / len(self.per_sm))

    @property
    def finish_cycle(self) -> int:
        return self.counters.cycles

    def load_imbalance(self) -> float:
        """Slowest SM's cycles over the mean (1.0 = perfectly balanced)."""
        cycles = [r.counters.cycles for r in self.per_sm.values()]
        mean = sum(cycles) / len(cycles)
        return max(cycles) / mean if mean else 0.0


def partition_warps(
    trace: KernelTrace,
    num_sms: int,
    warps_per_block: int = 4,
) -> Dict[int, KernelTrace]:
    """Assign thread blocks (groups of warps) to SMs round-robin.

    Consecutive ``warps_per_block`` warps form one thread block — the
    unit of SM assignment, as in the execution model of SS II.  Warp ids
    are renumbered per SM so each SM sees a dense launch.
    """
    if num_sms < 1:
        raise SimulationError(f"num_sms must be >= 1, got {num_sms}")
    if warps_per_block < 1:
        raise SimulationError(
            f"warps_per_block must be >= 1, got {warps_per_block}"
        )
    warps = sorted(trace.warps, key=lambda w: w.warp_id)
    blocks = [
        warps[i:i + warps_per_block]
        for i in range(0, len(warps), warps_per_block)
    ]
    assignment: Dict[int, List[WarpTrace]] = {}
    for index, block in enumerate(blocks):
        assignment.setdefault(index % num_sms, []).extend(block)

    partitioned: Dict[int, KernelTrace] = {}
    for sm_id, sm_warps in sorted(assignment.items()):
        renumbered = [
            WarpTrace(warp_id=slot, instructions=warp.instructions)
            for slot, warp in enumerate(sm_warps)
        ]
        partitioned[sm_id] = KernelTrace(
            name=f"{trace.name}@sm{sm_id}", warps=renumbered
        )
    return partitioned


def simulate_launch(
    trace: KernelTrace,
    design: str = "baseline",
    num_sms: int = 4,
    warps_per_block: int = 4,
    window_size: int = 3,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
) -> LaunchResult:
    """Simulate a kernel launch across ``num_sms`` SMs.

    Each SM runs the given design independently over its share of the
    thread blocks; counters are summed and the launch finishes when the
    slowest SM does.
    """
    from ..core.bow_sm import simulate_design

    partitioned = partition_warps(trace, num_sms, warps_per_block)
    per_sm: Dict[int, SimulationResult] = {}
    total = Counters()
    slowest = 0
    for sm_id, sm_trace in partitioned.items():
        result = simulate_design(
            design, sm_trace, window_size=window_size, config=config,
            memory_seed=memory_seed + sm_id,
        )
        per_sm[sm_id] = result
        total = total + result.counters
        slowest = max(slowest, result.counters.cycles)
    total.cycles = slowest
    return LaunchResult(per_sm=per_sm, counters=total)
