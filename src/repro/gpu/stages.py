"""Pipeline stages of the SM engine.

:class:`~repro.gpu.sm.SMEngine` processes one cycle back-to-front so
results never skip a stage; each step of that reverse walk is an
explicit stage object here, all sharing one typed :class:`EngineState`:

1. :class:`CompleteStage` — functional units finishing this cycle hand
   results to the operand provider, which routes them (RF queue /
   collector / both, depending on the design).
2. :class:`BankStage` — queued RF writes arbitrate for bank ports
   together with the provider's operand reads; granted writes may
   release the scoreboard, granted reads enter the bank/crossbar
   pipeline and deliver after ``rf_read_latency``.
3. :class:`DispatchStage` — instructions whose operands are complete go
   to a functional unit, round-robin across warps, limited by unit
   widths; execution semantics run here and schedule a completion.
4. :class:`IssueStage` — schedulers pick warps (GTO by default); the
   next trace instruction issues when the scoreboard is clear, the
   provider has room, and no branch is unresolved.

The stages read static per-instruction facts from the decode cache
(:mod:`repro.gpu.decode`) instead of re-deriving them per cycle; the
simulated machine is cycle-for-cycle identical to the pre-stage engine.
Stage objects hold only references into the engine — all mutable
per-run state lives in :class:`EngineState`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..stats.trace import EventKind
from .banks import AccessRequest
from .collector import InflightInstruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sm import SMEngine


class QueuedWrite:
    """One pending RF write awaiting a bank port."""

    __slots__ = ("warp_id", "register_id", "value", "age", "bank",
                 "entry", "release_on_grant", "request")

    def __init__(self, warp_id: int, register_id: int, value: int, age: int,
                 bank: int, entry: Optional[InflightInstruction] = None,
                 release_on_grant: bool = False):
        self.warp_id = warp_id
        self.register_id = register_id
        self.value = value
        self.age = age
        self.bank = bank
        self.entry = entry
        self.release_on_grant = release_on_grant
        # The bank request is immutable for the write's whole queue
        # life, so it is built once here instead of every cycle the
        # write waits for a port.  Its tag is the QueuedWrite itself.
        self.request = AccessRequest(
            bank=bank, warp_id=warp_id, register_id=register_id,
            tag=self, age=age,
        )


class EngineState:
    """All mutable per-run pipeline state, shared by the stages.

    Attributes:
        cycle: current simulated cycle (0 before the first step).
        write_queue: RF writes awaiting a bank port, oldest first.
        completions: finish cycle -> [(entry, result value)].
        reads_in_flight: granted reads in the bank/crossbar pipeline,
            delivery cycle -> [(tag, warp_id, register_id)].
        inflight_read_tags: tags of granted-but-undelivered reads (the
            provider must not re-request them).
        in_flight: issued-but-unretired instruction count.
        active_warps: warps that still have instructions to issue.
        dispatch_rotor: round-robin pivot of the dispatch stage.
        write_age: monotonic age stamp for write arbitration.
        undispatched_mem: per-warp trace indexes of issued-but-
            undispatched memory ops (dispatch keeps program order so
            same-address load/store ordering holds within a warp).
        completion_heap: min-heap of the due cycles present in
            ``completions`` — the engine's event-horizon loop peeks it
            for the earliest future completion in O(1).
        read_heap: min-heap of the due cycles present in
            ``reads_in_flight``.
        issue_dirty: warp ids whose issue-relevant state (pc,
            scoreboard views, ``control_pending``) changed since the
            issue stage last derived their hazard outcome.  Dispatches
            and scoreboard releases append here; the issue stage
            consumes the list every cycle, so it stays short.  Warps
            not on the list provably stall exactly as they did last
            cycle, which lets the issue stage patch a cached stall
            profile instead of re-walking every warp.
    """

    __slots__ = ("cycle", "write_queue", "write_requests", "completions",
                 "reads_in_flight", "inflight_read_tags", "in_flight",
                 "active_warps", "dispatch_rotor", "write_age",
                 "undispatched_mem", "completion_heap", "read_heap",
                 "issue_dirty", "occupancy_gen")

    def __init__(self) -> None:
        self.cycle = 0
        self.write_queue: List[QueuedWrite] = []
        # Mirror of write_queue's prebuilt AccessRequests, maintained
        # incrementally so the bank stage never rebuilds it per cycle.
        self.write_requests: List[AccessRequest] = []
        self.completions: Dict[
            int, List[Tuple[InflightInstruction, Optional[int]]]
        ] = {}
        self.reads_in_flight: Dict[int, List[Tuple[object, int, int]]] = {}
        self.inflight_read_tags: Set[object] = set()
        self.in_flight = 0
        self.active_warps = 0
        self.dispatch_rotor = 0
        self.write_age = 0
        self.undispatched_mem: Dict[int, Set[int]] = {}
        self.completion_heap: List[int] = []
        self.read_heap: List[int] = []
        self.issue_dirty: List[int] = []
        # Generation of provider occupancy (inserts and dispatches):
        # the key for cached "collector" stall outcomes.
        self.occupancy_gen = 0


def next_due_cycle(heap: List[int], table: Dict[int, list],
                   cycle: int) -> Optional[int]:
    """The earliest due cycle after ``cycle``, discarding stale heads.

    A heap entry goes stale when its bucket was drained at its due
    cycle (the dict key is popped but the heap entry stays); stale
    heads are lazily removed here and by the stages' per-cycle hygiene
    pops, so the peek stays amortized O(log n).
    """
    while heap:
        due = heap[0]
        if due <= cycle or due not in table:
            heappop(heap)
            continue
        return due
    return None


class _Stage:
    """A pipeline stage bound to one engine."""

    __slots__ = ("engine", "state")

    def __init__(self, engine: "SMEngine"):
        self.engine = engine
        self.state = engine.state

    def run(self) -> bool:
        """Process one cycle; returns whether any event happened."""
        raise NotImplementedError


class CompleteStage(_Stage):
    """Hand finishing results to the provider for writeback routing."""

    __slots__ = ()

    def run(self) -> bool:
        state = self.state
        cycle = state.cycle
        heap = state.completion_heap
        if not heap or heap[0] > cycle:
            # Nothing can be due: every completions key is on the heap.
            return False
        while heap and heap[0] <= cycle:
            heappop(heap)
        finishing = state.completions.pop(cycle, None)
        if not finishing:
            return False
        on_complete = self.engine.provider.on_complete
        for entry, value in finishing:
            on_complete(entry, value)
        return True


class BankStage(_Stage):
    """Reads and writes arbitrate together for the single-ported banks."""

    __slots__ = ("_read_due_delta", "_crossbar_width", "_read_requests",
                 "_filter_inflight", "_arbitrate", "_num_banks",
                 "_check_request")

    def __init__(self, engine: "SMEngine"):
        super().__init__(engine)
        self._read_due_delta = max(1, engine.config.rf_read_latency)
        self._crossbar_width = engine.config.crossbar_width
        self._read_requests = engine.provider.read_requests
        # Providers that declare prefilters_inflight skip already-granted
        # tags themselves; others get the engine-level safety filter.
        self._filter_inflight = not getattr(
            engine.provider, "prefilters_inflight", False
        )
        # The arbiter is fixed at engine construction; bind its entry
        # points once instead of chasing engine.arbiter every cycle.
        self._arbitrate = engine.arbiter.arbitrate
        self._num_banks = engine.arbiter.num_banks
        self._check_request = engine.arbiter._check

    def run(self) -> bool:
        cycle = self.state.cycle
        return self._deliver_due_reads(cycle) | self.collect(cycle)

    def collect(self, cycle: int) -> bool:
        """The request/arbitrate half of the stage (deliveries aside).

        The engine's tick-guarded loop calls the two halves separately —
        deliveries only when the read heap says something is due,
        collection only when a head is requestable, a write waits, or a
        provider-internal delivery lands this cycle.
        """
        engine = self.engine
        state = self.state
        tags = state.inflight_read_tags
        reads = self._read_requests(cycle)
        if tags and reads and self._filter_inflight:
            reads = [request for request in reads if request.tag not in tags]
        writes = state.write_requests
        if not reads and len(writes) == 1:
            # Lone write: nothing to conflict with, grant in place —
            # the same bookkeeping the granted_writes loop below does,
            # minus the arbitration round trip.
            request = writes[0]
            if not 0 <= request.bank < self._num_banks:
                self._check_request(request)  # raises
            queued = request.tag
            state.write_queue.remove(queued)
            del writes[0]
            engine.regfile.write(queued.warp_id, queued.register_id,
                                 queued.value)
            recorder = engine.recorder
            if recorder is not None:
                recorder.emit(
                    cycle, EventKind.WRITEBACK, warp=queued.warp_id,
                    reason="granted", register=queued.register_id,
                    bank=queued.bank,
                )
            if queued.release_on_grant and queued.entry is not None:
                engine.release_scoreboard(queued.entry)
            return True
        if not writes:
            if not reads:
                return False
            if len(reads) == 1:
                # Lone read: nothing to conflict with, grant in place
                # without building an ArbitrationResult.
                request = reads[0]
                if not 0 <= request.bank < self._num_banks:
                    self._check_request(request)  # raises
                due = cycle + self._read_due_delta
                pending = state.reads_in_flight.get(due)
                if pending is None:
                    pending = state.reads_in_flight[due] = []
                    heappush(state.read_heap, due)
                tags.add(request.tag)
                pending.append(
                    (request.tag, request.warp_id, request.register_id)
                )
                return True

        result = self._arbitrate(reads, writes)
        recorder = engine.recorder
        engine.counters.bank_conflicts += result.conflicts
        if recorder is not None and result.conflicts:
            recorder.emit(cycle, EventKind.BANK_CONFLICT,
                          count=result.conflicts)

        if result.granted_writes:
            regfile_write = engine.regfile.write
            write_queue = state.write_queue
            for request in result.granted_writes:
                queued = request.tag
                write_queue.remove(queued)
                writes.remove(request)
                regfile_write(queued.warp_id, queued.register_id,
                              queued.value)
                if recorder is not None:
                    recorder.emit(
                        cycle, EventKind.WRITEBACK, warp=queued.warp_id,
                        reason="granted", register=queued.register_id,
                        bank=queued.bank,
                    )
                if queued.release_on_grant and queued.entry is not None:
                    engine.release_scoreboard(queued.entry)

        if result.granted_reads:
            # Granted reads occupy the bank port now; the data lands in
            # the collector after the bank/crossbar pipeline latency.
            due = cycle + self._read_due_delta
            pending = state.reads_in_flight.get(due)
            if pending is None:
                pending = state.reads_in_flight[due] = []
                heappush(state.read_heap, due)
            for request in result.granted_reads:
                tags.add(request.tag)
                pending.append(
                    (request.tag, request.warp_id, request.register_id)
                )
            return True
        return bool(result.granted_writes)

    def _deliver_due_reads(self, cycle: int) -> bool:
        state = self.state
        heap = state.read_heap
        if not heap or heap[0] > cycle:
            # Nothing can be due: every reads_in_flight key is on the heap.
            return False
        while heap and heap[0] <= cycle:
            heappop(heap)
        due = state.reads_in_flight.pop(cycle, None)
        if not due:
            return False
        engine = self.engine
        width = self._crossbar_width
        if width and len(due) > width:
            # The crossbar moves at most `width` operands per cycle;
            # the overflow slips to the next cycle.
            due, deferred = due[:width], due[width:]
            overflow = state.reads_in_flight.get(cycle + 1)
            if overflow is None:
                overflow = state.reads_in_flight[cycle + 1] = []
                heappush(heap, cycle + 1)
            overflow.extend(deferred)
        discard = state.inflight_read_tags.discard
        regfile_read = engine.regfile.read
        deliver = engine.provider.deliver
        for tag, warp_id, register_id in due:
            discard(tag)
            deliver(tag, regfile_read(warp_id, register_id))
        return True


def _dispatch_age(entry):
    """Oldest-first dispatch order within one warp's ready bucket."""
    return (entry.issue_cycle, entry.trace_index)


class DispatchStage(_Stage):
    """Send operand-complete instructions to the functional units."""

    __slots__ = ("_ready_entries",)

    def __init__(self, engine: "SMEngine"):
        super().__init__(engine)
        self._ready_entries = engine.provider.ready_entries

    def run(self) -> bool:
        engine = self.engine
        ready = self._ready_entries()
        if not ready:
            return False
        state = self.state
        cycle = state.cycle
        counters = engine.counters
        recorder = engine.recorder
        units = engine.units
        undispatched_mem = state.undispatched_mem
        if len(ready) > 1:
            # Round-robin across warps (paper SS IV-A), oldest-first
            # per warp.  ``ready`` is the provider's own list, so order
            # (and iterate) a copy — on_dispatch mutates the original.
            # Grouping first and sorting the (tiny) per-warp buckets
            # orders exactly like one global (warp, issue, trace) sort
            # — (issue_cycle, trace_index) is unique within a warp —
            # without building a key tuple per entry.
            by_warp: Dict[int, List[InflightInstruction]] = {}
            for entry in ready:
                bucket = by_warp.get(entry.warp_id)
                if bucket is None:
                    bucket = by_warp[entry.warp_id] = []
                bucket.append(entry)
            warp_order = sorted(by_warp)
            rotor = state.dispatch_rotor % len(warp_order)
            warp_order = warp_order[rotor:] + warp_order[:rotor]
            for bucket in by_warp.values():
                if len(bucket) > 1:
                    bucket.sort(key=_dispatch_age)
            ready = [
                entry
                for warp_id in warp_order
                for entry in by_warp[warp_id]
            ]
        else:
            ready = (ready[0],)
        # A lone entry needs no ordering, but the rotor still advances:
        # it only ticks on cycles with ready entries, exactly as before.
        state.dispatch_rotor += 1

        dispatched = False
        on_dispatch = engine.provider.on_dispatch
        for entry in ready:
            warp_id = entry.warp_id
            dec = entry.dec
            if dec.is_memory:
                # Memory effects apply at dispatch: only the oldest
                # undispatched memory op of the warp may go.
                pending = undispatched_mem.get(warp_id)
                if pending and min(pending) != entry.trace_index:
                    continue
            bucket = dec.bucket
            if not units.can_dispatch_bucket(bucket):
                counters.exec_busy_stalls += 1
                if recorder is not None:
                    recorder.emit(
                        cycle, EventKind.DISPATCH_STALL,
                        warp=warp_id, reason="exec_busy",
                        trace_index=entry.trace_index,
                        opcode=dec.opcode_name,
                    )
                continue
            units.dispatch_bucket(bucket)
            on_dispatch(entry)
            state.occupancy_gen += 1
            entry.dispatch_cycle = cycle
            if recorder is not None:
                recorder.emit(
                    cycle, EventKind.DISPATCH, warp=warp_id,
                    trace_index=entry.trace_index,
                    opcode=dec.opcode_name,
                )
            # Drop the scoreboard's WAR reader marks: the operands
            # are collected, and the guard is sampled this cycle
            # (in _execute), so younger writers may proceed.
            warp_state = engine.warp_state(warp_id)
            # Dispatch drops this warp's WAR reader marks, may resolve
            # its branch, and frees a provider slot — issue-relevant.
            state.issue_dirty.append(warp_id)
            reads = warp_state.sb_reads
            for reg_id in dec.source_ids:
                remaining = reads.get(reg_id, 0) - 1
                if remaining > 0:
                    reads[reg_id] = remaining
                else:
                    reads.pop(reg_id, None)
            if dec.guard_id is not None:
                pred_reads = warp_state.sb_pred_reads
                remaining = pred_reads.get(dec.guard_id, 0) - 1
                if remaining > 0:
                    pred_reads[dec.guard_id] = remaining
                else:
                    pred_reads.pop(dec.guard_id, None)
            if dec.is_memory:
                undispatched_mem[warp_id].discard(entry.trace_index)
            if dec.is_control:
                # The next PC is determined once the branch leaves
                # the collector; issue of the successor may resume.
                warp_state.control_pending = False
            self._start_execution(entry, dec)
            dispatched = True
        return dispatched

    def _start_execution(self, entry: InflightInstruction, dec) -> None:
        engine = self.engine
        state = self.state
        if dec.is_memory:
            latency = engine.memory.latency(dec.inst, entry.warp_id,
                                            entry.trace_index)
        else:
            latency = dec.latency
        value = self._execute(entry, dec)
        finish = state.cycle + (latency if latency > 1 else 1)
        bucket = state.completions.get(finish)
        if bucket is None:
            bucket = state.completions[finish] = []
            heappush(state.completion_heap, finish)
        bucket.append((entry, value))

    def _execute(self, entry: InflightInstruction, dec) -> Optional[int]:
        """Functional semantics using the *collected* operand values."""
        engine = self.engine
        warp_id = entry.warp_id
        if dec.guard_id is not None:
            value = engine.predicates.get((warp_id, dec.guard_id), False)
            if not (not value if dec.guard_negated else value):
                # Predicated off: consumes the slot, produces nothing.
                return None
        get = entry.operand_values.get
        num_sources = dec.num_sources
        pad = dec.imm_pad
        # Unrolled operand materialization (two sources is by far the
        # common shape): same values the generic pad loop would build.
        if num_sources == 2:
            operands = (get(0, 0), get(1, 0), pad)
        elif num_sources == 1:
            operands = (get(0, 0), pad, pad)
        elif num_sources == 0:
            operands = (pad, pad, pad)
        else:
            operands = (get(0, 0), get(1, 0), get(2, 0))

        if dec.is_load:
            address = engine.memory.thread_address(warp_id, operands[0])
            return engine.memory.load(address)
        if dec.is_store:
            address = engine.memory.thread_address(warp_id, operands[0])
            engine.memory.store(address, operands[1])
            return None
        if dec.is_control or dec.is_nop:
            return None
        if dec.semantic is None:
            from ..errors import SimulationError

            raise SimulationError(f"no semantics for {dec.opcode_name}")
        if dec.dest_id is None:
            return None
        value = dec.semantic(operands[0], operands[1], operands[2])
        if dec.pred_dest_id is not None:
            engine.predicates[(warp_id, dec.pred_dest_id)] = bool(value)
        return value


class _IssueProfile:
    """Per-warp hazard-walk outcomes, patched in place across cycles.

    ``slots`` holds one ``[warp, charge]`` pair per schedulable warp in
    walk order (scheduler by scheduler); ``charge`` is ``None``
    (drained / branch pending, nothing to charge) or the
    ``(warp_id, reason, pc, opcode)`` stall record.  ``bounds`` marks
    each scheduler's ``(start, end)`` span of ``slots``, with
    per-scheduler stall sums in ``sched_sb`` / ``sched_col`` and the
    grand totals in ``n_scoreboard`` / ``n_collector`` — so both a
    fully stable cycle and an untouched scheduler inside a sparse walk
    charge in O(1).  ``collector_ids`` tracks which warps are
    collector-stalled (the only outcomes that depend on provider
    occupancy); ``occupancy_gen`` is the occupancy generation the
    profile was last validated against.
    """

    __slots__ = ("slots", "index", "bounds", "sched_of", "sched_sb",
                 "sched_col", "n_scoreboard", "n_collector",
                 "collector_ids", "occupancy_gen")

    def __init__(self, slots, bounds, occupancy_gen):
        self.slots = slots
        self.bounds = bounds
        self.index = {
            pair[0].warp_id: i for i, pair in enumerate(slots)
        }
        sched_of = {}
        sched_sb = []
        sched_col = []
        collector_ids = set()
        for sched_idx, (start, end) in enumerate(bounds):
            n_sb = 0
            n_col = 0
            for warp, charge in slots[start:end]:
                sched_of[warp.warp_id] = sched_idx
                if charge is None:
                    continue
                if charge[1] == "scoreboard":
                    n_sb += 1
                else:
                    n_col += 1
                    collector_ids.add(warp.warp_id)
            sched_sb.append(n_sb)
            sched_col.append(n_col)
        self.sched_of = sched_of
        self.sched_sb = sched_sb
        self.sched_col = sched_col
        self.n_scoreboard = sum(sched_sb)
        self.n_collector = sum(sched_col)
        self.collector_ids = collector_ids
        self.occupancy_gen = occupancy_gen

    def patch(self, warp_id: int, outcome) -> None:
        """Replace one warp's outcome, keeping the sums consistent."""
        slot = self.slots[self.index[warp_id]]
        old = slot[1]
        if old is outcome:
            return
        sched_idx = self.sched_of[warp_id]
        if old is not None:
            if old[1] == "scoreboard":
                self.n_scoreboard -= 1
                self.sched_sb[sched_idx] -= 1
            else:
                self.n_collector -= 1
                self.sched_col[sched_idx] -= 1
                self.collector_ids.discard(warp_id)
        if outcome is not None:
            if outcome[1] == "scoreboard":
                self.n_scoreboard += 1
                self.sched_sb[sched_idx] += 1
            else:
                self.n_collector += 1
                self.sched_col[sched_idx] += 1
                self.collector_ids.add(warp_id)
        slot[1] = outcome


#: Sentinel: the re-derived warp could issue, so this cycle must run a
#: real (sparse) walk.
_ISSUABLE = object()


class IssueStage(_Stage):
    """Schedulers pick warps; hazard-free instructions enter collectors.

    The full hazard walk touches every schedulable warp every cycle,
    which dominates the engine's per-cycle cost during long memory
    stalls.  Its outcome, however, is a pure function of issue-relevant
    state — warp PCs, ``control_pending``, the scoreboard views, and
    provider occupancy — all of which only change at an issue, a
    dispatch, or a scoreboard release.  The engine records *which*
    warps those events touched in ``EngineState.issue_dirty``, so after
    one fruitless walk this stage keeps an :class:`_IssueProfile` and,
    instead of re-walking, re-derives only the dirty warps and patches
    the profile.  A stable stall cycle charges its counters from the
    precomputed sums in O(1); a cycle where one completion released one
    warp costs one hazard re-check instead of a full walk; and when a
    re-derived warp turns out issuable, a *sparse* walk runs: it visits
    the scheduler order as usual but performs the hazard checks only
    for warps whose outcome could have moved (the dirty ones and the
    collector-stalled ones), charging every other warp straight from
    the profile — the profile itself is patched with what the walk
    learns, so it survives issue cycles instead of being rebuilt by a
    full walk afterwards.  Warps the walk leaves in an unknown state
    (they issued, or the issue budget ran out mid-warp) are marked
    dirty for the next cycle.  The cache never guesses: every charge
    either comes from a live hazard check or from an outcome proven
    unchanged since one.

    The O(1) stall path replays the walk's scheduler side effects
    through ``on_idle_span(1)`` — exactly the bulk-idle contract the
    fast-forward path uses — which is only valid for schedulers whose
    ``idle_span_limit()`` is statically ``None`` (greedy reset, LRR
    pointer advance).  A two-level scheduler with a pending set mutates
    state per ``note_stall``, so profiling is disabled for it up front
    and every cycle takes the full walk.
    """

    __slots__ = ("_issue_width", "_replay_ok", "_profile", "last_stalls",
                 "_member_sets", "_pending_idle")

    def __init__(self, engine: "SMEngine"):
        super().__init__(engine)
        self._issue_width = engine.config.issue_width_per_scheduler
        # idle_span_limit() is a static property of each scheduler (a
        # two-level pending set never changes size), so one check at
        # construction decides profile eligibility for the whole run.
        self._replay_ok = all(
            scheduler.idle_span_limit() is None
            for scheduler in engine.schedulers
        )
        self._profile: Optional[_IssueProfile] = None
        # Ownership is fixed, so each scheduler's member set can back a
        # fast "does this scheduler hold any live warp" test.
        self._member_sets = [
            frozenset(scheduler.warp_ids)
            for scheduler in engine.schedulers
        ]
        # Stall charges of the most recent full walk; the fast-forward
        # jump reads current_stalls() (profile-aware) instead.
        self.last_stalls: List[tuple] = []
        # All-stall cycles whose per-scheduler bulk-idle hooks are still
        # owed.  on_idle_span spans compose additively (greedy reset is
        # idempotent, LRR pointers sum), so the O(1) stall path just
        # counts cycles here and the batch is flushed the moment any
        # walk is about to consult scheduler state (candidate_order).
        self._pending_idle = 0

    def current_stalls(self) -> List[tuple]:
        """The stall charges of the cycle just simulated.

        The fast-forward jump replays these (coalesced) for every
        skipped cycle: across a provably idle span nothing
        issue-relevant can change, so the per-cycle walk would re-derive
        exactly the same charges.
        """
        profile = self._profile
        if profile is not None:
            return [
                charge for _, charge in profile.slots if charge is not None
            ]
        return self.last_stalls

    def _derive_outcome(self, warp, can_accept):
        """One warp's walk outcome: a charge tuple, None, or _ISSUABLE."""
        pc = warp.pc
        if pc >= warp.end or warp.control_pending:
            return None
        dec = warp.decoded[pc]
        sb_pending = warp.sb_pending
        for reg_id in dec.source_ids:
            if reg_id in sb_pending:  # RAW
                return (warp.warp_id, "scoreboard", pc, dec.opcode_name)
        dest_id = dec.rf_dest_id
        if dest_id is not None and (
            dest_id in sb_pending  # WAW
            or warp.sb_reads.get(dest_id)  # WAR
        ):
            return (warp.warp_id, "scoreboard", pc, dec.opcode_name)
        if dec.guard_id is not None and dec.guard_id in warp.sb_preds:
            return (warp.warp_id, "scoreboard", pc, dec.opcode_name)
        if dec.pred_dest_id is not None and (
            dec.pred_dest_id in warp.sb_preds
            or warp.sb_pred_reads.get(dec.pred_dest_id)
        ):
            return (warp.warp_id, "scoreboard", pc, dec.opcode_name)
        if not can_accept(warp.warp_id):
            return (warp.warp_id, "collector", pc, dec.opcode_name)
        return _ISSUABLE

    def _run_profile(self, profile: _IssueProfile) -> bool:
        """Charge the cached profile, patching dirty warps first."""
        engine = self.engine
        state = self.state
        dirty = state.issue_dirty
        occ = state.occupancy_gen
        collector_ids = profile.collector_ids
        occ_moved = occ != profile.occupancy_gen and collector_ids
        if dirty or occ_moved:
            provider = engine.provider
            can_accept = provider.can_accept
            index = profile.index
            slots = profile.slots
            derive = self._derive_outcome
            seen = set()
            live = set()
            for warp_id in dirty:
                if warp_id in seen:
                    continue
                seen.add(warp_id)
                outcome = derive(slots[index[warp_id]][0], can_accept)
                if outcome is _ISSUABLE:
                    live.add(warp_id)  # re-derived live by the walk
                else:
                    profile.patch(warp_id, outcome)
            dirty.clear()
            if occ_moved:
                # Occupancy moved (an issue filled or a dispatch freed
                # a unit).  Non-dirty collector-stalled warps kept their
                # scoreboard outcome (stalls there outrank acceptance),
                # so only the acceptance half needs a re-check — and a
                # shared pool answers it once for every warp.
                if provider.shared_pool:
                    for warp_id in collector_ids:
                        if warp_id not in seen:
                            if can_accept(warp_id):
                                live.update(
                                    w for w in collector_ids
                                    if w not in seen
                                )
                            break
                else:
                    for warp_id in collector_ids:
                        if warp_id not in seen and can_accept(warp_id):
                            live.add(warp_id)
            if live:
                # seen minus live = warps just proven still-stalled;
                # the sparse walk may skip their hazard checks too.
                return self._sparse_walk(profile, seen - live, live)
        profile.occupancy_gen = occ
        counters = engine.counters
        counters.issue_stalls_scoreboard += profile.n_scoreboard
        counters.issue_stalls_collector += profile.n_collector
        recorder = engine.recorder
        if recorder is not None:
            cycle = state.cycle
            for _, charge in profile.slots:
                if charge is not None:
                    recorder.emit(
                        cycle, EventKind.ISSUE_STALL, warp=charge[0],
                        reason=charge[1], trace_index=charge[2],
                        opcode=charge[3],
                    )
        self._pending_idle += 1
        return False

    def _sparse_walk(self, profile: _IssueProfile, settled: set,
                     live: set) -> bool:
        """A real walk that hazard-checks only warps that may move.

        ``settled`` holds the dirty warps whose re-derivation just
        proved them still stalled; ``live`` the ones found issuable.
        Every other warp gets a live check only if it is
        collector-stalled (an issue here consumes provider slots
        mid-walk); the rest provably charge the same stall as the
        profile records, so the walk takes them from the cache.
        Scheduler calls, budget accounting, and event emission follow
        the full walk exactly — including stopping the moment a
        scheduler's budget runs out, after which the remaining warps of
        that scheduler are neither charged nor noted, just as the full
        walk leaves them unvisited.  A scheduler that owns no *live*
        warp cannot issue this cycle (settled warps just re-derived
        stalled, collector-stalled warps can only stay stalled while
        the walk fills provider slots, unmoved warps provably repeat),
        so it stalls wholesale: its members charge from the
        per-scheduler profile sums — which patch() keeps current — and
        its only side effect is the bulk-idle hook, with no per-warp
        visits at all.
        """
        engine = self.engine
        state = self.state
        counters = engine.counters
        recorder = engine.recorder
        provider = engine.provider
        can_accept = provider.can_accept
        insert = provider.insert
        cycle = state.cycle
        issue_width = self._issue_width
        slots = profile.slots
        index = profile.index
        dirty = state.issue_dirty
        collector_ids = profile.collector_ids
        bounds = profile.bounds
        issued_any = False
        pending_idle = self._pending_idle
        if pending_idle:
            # Owed bulk-idle spans must land before candidate_order is
            # consulted (greedy reset, LRR pointer advance).
            self._pending_idle = 0
            for scheduler in engine.schedulers:
                scheduler.on_idle_span(pending_idle)
        for sched_idx, scheduler in enumerate(engine.schedulers):
            if live.isdisjoint(self._member_sets[sched_idx]):
                # No member of this scheduler can issue this cycle, so
                # every member stalls exactly as the (patched) profile
                # records: issues in *other* schedulers only consume
                # provider slots, which can't unstall anyone.  The
                # whole scheduler charges in O(1) like an idle cycle.
                counters.issue_stalls_scoreboard += (
                    profile.sched_sb[sched_idx])
                counters.issue_stalls_collector += (
                    profile.sched_col[sched_idx])
                if recorder is not None:
                    start, end = bounds[sched_idx]
                    for _warp, charge in slots[start:end]:
                        if charge is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL,
                                warp=charge[0], reason=charge[1],
                                trace_index=charge[2], opcode=charge[3],
                            )
                scheduler.on_idle_span(1)
                continue
            budget = issue_width
            note_stall = scheduler.note_stall
            for warp_id in scheduler.candidate_order():
                if budget == 0:
                    break
                if warp_id in settled:
                    # Just re-derived against this cycle's state: the
                    # recorded outcome is current, take it below.
                    pass
                elif warp_id in live or warp_id in collector_ids:
                    # A live check: found issuable just now, or
                    # collector-stalled (issues this walk consume
                    # provider slots mid-walk).
                    if warp_id not in live and not can_accept(warp_id):
                        # Not dirty, so the scoreboard half of its
                        # profiled outcome is still current; with the
                        # provider still full it recharges the recorded
                        # collector stall — no hazard re-derivation.
                        note_stall(warp_id)
                        charge = slots[index[warp_id]][1]
                        counters.issue_stalls_collector += 1
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL,
                                warp=charge[0], reason=charge[1],
                                trace_index=charge[2], opcode=charge[3],
                            )
                        continue
                    live.discard(warp_id)
                    slot = slots[index[warp_id]]
                    warp = slot[0]
                    issued_here = 0
                    fresh_charge = None
                    decoded = warp.decoded
                    sb_pending = warp.sb_pending
                    sb_reads = warp.sb_reads
                    sb_preds = warp.sb_preds
                    sb_pred_reads = warp.sb_pred_reads
                    while budget > 0:
                        pc = warp.pc
                        if pc >= warp.end or warp.control_pending:
                            break
                        dec = decoded[pc]
                        stalled = False
                        for reg_id in dec.source_ids:
                            if reg_id in sb_pending:
                                stalled = True  # RAW
                                break
                        dest_id = dec.rf_dest_id
                        if not stalled:
                            if dest_id is not None and (
                                dest_id in sb_pending  # WAW
                                or sb_reads.get(dest_id)  # WAR
                            ):
                                stalled = True
                            elif (dec.guard_id is not None
                                  and dec.guard_id in sb_preds):
                                stalled = True
                            elif dec.pred_dest_id is not None and (
                                dec.pred_dest_id in sb_preds
                                or sb_pred_reads.get(dec.pred_dest_id)
                            ):
                                stalled = True
                        if stalled:
                            counters.issue_stalls_scoreboard += 1
                            fresh_charge = (
                                warp_id, "scoreboard", pc, dec.opcode_name
                            )
                            if recorder is not None:
                                recorder.emit(
                                    cycle, EventKind.ISSUE_STALL,
                                    warp=warp_id, reason="scoreboard",
                                    trace_index=pc, opcode=dec.opcode_name,
                                )
                            break
                        if not can_accept(warp_id):
                            counters.issue_stalls_collector += 1
                            fresh_charge = (
                                warp_id, "collector", pc, dec.opcode_name
                            )
                            if recorder is not None:
                                recorder.emit(
                                    cycle, EventKind.ISSUE_STALL,
                                    warp=warp_id, reason="collector",
                                    trace_index=pc, opcode=dec.opcode_name,
                                )
                            break

                        entry = InflightInstruction(warp_id, pc, dec.inst,
                                                    cycle, dec=dec)
                        if dest_id is not None:
                            sb_pending.add(dest_id)
                        if dec.pred_dest_id is not None:
                            sb_preds.add(dec.pred_dest_id)
                        for reg_id in dec.source_ids:
                            sb_reads[reg_id] = sb_reads.get(reg_id, 0) + 1
                        if dec.guard_id is not None:
                            sb_pred_reads[dec.guard_id] = (
                                sb_pred_reads.get(dec.guard_id, 0) + 1)
                        insert(entry)
                        state.occupancy_gen += 1
                        if dec.is_memory:
                            state.undispatched_mem.setdefault(
                                warp_id, set()
                            ).add(pc)
                        warp.pc = pc + 1
                        if pc + 1 == warp.end:
                            state.active_warps -= 1
                        state.in_flight += 1
                        counters.issued += 1
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE, warp=warp_id,
                                trace_index=pc, opcode=dec.opcode_name,
                            )
                        if dec.is_control:
                            warp.control_pending = True
                        issued_here += 1
                        budget -= 1
                        issued_any = True
                    if issued_here:
                        scheduler.note_issue(warp_id)
                    else:
                        note_stall(warp_id)
                    if fresh_charge is not None or (
                        warp.pc >= warp.end or warp.control_pending
                    ):
                        # The while loop ended on a definite outcome
                        # (a stall, drained, or a pending branch) —
                        # record it so the next cycle starts current.
                        profile.patch(warp_id, fresh_charge)
                    else:
                        # Budget ran out mid-warp: its next outcome is
                        # unknown, re-derive it next cycle.
                        profile.patch(warp_id, None)
                        dirty.append(warp_id)
                    continue
                else:
                    note_stall(warp_id)
                    charge = slots[index[warp_id]][1]
                    if charge is None:
                        continue
                    if charge[1] == "scoreboard":
                        counters.issue_stalls_scoreboard += 1
                    else:
                        counters.issue_stalls_collector += 1
                    if recorder is not None:
                        recorder.emit(
                            cycle, EventKind.ISSUE_STALL, warp=charge[0],
                            reason=charge[1], trace_index=charge[2],
                            opcode=charge[3],
                        )
                    continue
                # settled warp: charge the freshly patched outcome.
                note_stall(warp_id)
                charge = slots[index[warp_id]][1]
                if charge is not None:
                    if charge[1] == "scoreboard":
                        counters.issue_stalls_scoreboard += 1
                    else:
                        counters.issue_stalls_collector += 1
                    if recorder is not None:
                        recorder.emit(
                            cycle, EventKind.ISSUE_STALL, warp=charge[0],
                            reason=charge[1], trace_index=charge[2],
                            opcode=charge[3],
                        )
        if live:
            # Issuable warps the walk never reached (an earlier warp
            # consumed their scheduler's budget): their profile slots
            # are stale and their dirty marks were consumed above, so
            # re-mark them for the next cycle.
            dirty.extend(live)
        # The walk issued (the warp that triggered it is reached with
        # budget in hand unless an earlier warp issued first), so the
        # provider occupancy moved; leaving occupancy_gen stale makes
        # the next cycle re-derive the collector-stalled warps.
        return issued_any

    def run(self) -> bool:
        state = self.state
        if state.active_warps == 0 and self._replay_ok:
            # Drain phase: every warp has issued its last instruction,
            # so the walk can never charge a stall again — only the
            # schedulers' idle bookkeeping remains, and for replay-ok
            # schedulers that is exactly the bulk-idle hook.
            self._profile = None
            self.last_stalls = ()
            state.issue_dirty.clear()
            self._pending_idle += 1
            return False
        profile = self._profile
        if profile is not None:
            return self._run_profile(profile)
        return self._walk()

    def _walk(self) -> bool:
        engine = self.engine
        state = self.state
        counters = engine.counters
        recorder = engine.recorder
        provider = engine.provider
        can_accept = provider.can_accept
        insert = provider.insert
        cycle = state.cycle
        warp_by_id = engine._warp_by_id
        issue_width = self._issue_width
        issued_any = False
        stall_log: List[tuple] = []
        visited: List[list] = []
        bounds: List[tuple] = []
        pending_idle = self._pending_idle
        if pending_idle:
            # Owed bulk-idle spans land before candidate_order is read.
            self._pending_idle = 0
            for scheduler in engine.schedulers:
                scheduler.on_idle_span(pending_idle)
        for scheduler in engine.schedulers:
            bound_start = len(visited)
            budget = issue_width
            note_stall = scheduler.note_stall
            for warp_id in scheduler.candidate_order():
                if budget == 0:
                    break
                warp = warp_by_id[warp_id]
                issued_here = 0
                fresh_charge = None
                decoded = warp.decoded
                sb_pending = warp.sb_pending
                sb_reads = warp.sb_reads
                sb_preds = warp.sb_preds
                sb_pred_reads = warp.sb_pred_reads
                while budget > 0:
                    pc = warp.pc
                    if pc >= warp.end or warp.control_pending:
                        break
                    dec = decoded[pc]
                    # Scoreboard: RAW / WAW / WAR / predicate hazards.
                    stalled = False
                    for reg_id in dec.source_ids:
                        if reg_id in sb_pending:
                            stalled = True  # RAW
                            break
                    dest_id = dec.rf_dest_id
                    if not stalled:
                        if dest_id is not None and (
                            dest_id in sb_pending  # WAW
                            or sb_reads.get(dest_id)  # WAR
                        ):
                            stalled = True
                        elif (dec.guard_id is not None
                              and dec.guard_id in sb_preds):
                            stalled = True  # guard not resolved yet
                        elif dec.pred_dest_id is not None and (
                            dec.pred_dest_id in sb_preds  # predicate WAW
                            # predicate WAR: an older guard reader has
                            # not sampled its guard at dispatch yet
                            or sb_pred_reads.get(dec.pred_dest_id)
                        ):
                            stalled = True
                    if stalled:
                        counters.issue_stalls_scoreboard += 1
                        fresh_charge = (
                            warp_id, "scoreboard", pc, dec.opcode_name
                        )
                        stall_log.append(fresh_charge)
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL, warp=warp_id,
                                reason="scoreboard", trace_index=pc,
                                opcode=dec.opcode_name,
                            )
                        break
                    if not can_accept(warp_id):
                        counters.issue_stalls_collector += 1
                        fresh_charge = (
                            warp_id, "collector", pc, dec.opcode_name
                        )
                        stall_log.append(fresh_charge)
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL, warp=warp_id,
                                reason="collector", trace_index=pc,
                                opcode=dec.opcode_name,
                            )
                        break

                    entry = InflightInstruction(warp_id, pc, dec.inst,
                                                cycle, dec=dec)
                    if dest_id is not None:
                        sb_pending.add(dest_id)
                    if dec.pred_dest_id is not None:
                        sb_preds.add(dec.pred_dest_id)
                    for reg_id in dec.source_ids:
                        sb_reads[reg_id] = sb_reads.get(reg_id, 0) + 1
                    if dec.guard_id is not None:
                        sb_pred_reads[dec.guard_id] = (
                            sb_pred_reads.get(dec.guard_id, 0) + 1)
                    insert(entry)
                    state.occupancy_gen += 1
                    if dec.is_memory:
                        state.undispatched_mem.setdefault(
                            warp_id, set()
                        ).add(pc)
                    warp.pc = pc + 1
                    if pc + 1 == warp.end:
                        state.active_warps -= 1
                    state.in_flight += 1
                    counters.issued += 1
                    if recorder is not None:
                        recorder.emit(
                            cycle, EventKind.ISSUE, warp=warp_id,
                            trace_index=pc, opcode=dec.opcode_name,
                        )
                    if dec.is_control:
                        warp.control_pending = True
                    issued_here += 1
                    budget -= 1
                    issued_any = True
                if issued_here:
                    scheduler.note_issue(warp_id)
                else:
                    # Drained warps must report stalls too: a two-level
                    # scheduler has to swap them out of the active set
                    # or pending warps would starve.
                    note_stall(warp_id)
                    visited.append([warp, fresh_charge])
            bounds.append((bound_start, len(visited)))
        self.last_stalls = stall_log
        # The walk ran against live state, so pending dirty marks are
        # consumed regardless of outcome.
        state.issue_dirty.clear()
        if not issued_any and self._replay_ok:
            # A fruitless walk visited every schedulable warp (the
            # budget was never consumed): its outcome list is a
            # complete, patchable profile for the following cycles.
            self._profile = _IssueProfile(visited, bounds,
                                          state.occupancy_gen)
        return issued_any
