"""Pipeline stages of the SM engine.

:class:`~repro.gpu.sm.SMEngine` processes one cycle back-to-front so
results never skip a stage; each step of that reverse walk is an
explicit stage object here, all sharing one typed :class:`EngineState`:

1. :class:`CompleteStage` — functional units finishing this cycle hand
   results to the operand provider, which routes them (RF queue /
   collector / both, depending on the design).
2. :class:`BankStage` — queued RF writes arbitrate for bank ports
   together with the provider's operand reads; granted writes may
   release the scoreboard, granted reads enter the bank/crossbar
   pipeline and deliver after ``rf_read_latency``.
3. :class:`DispatchStage` — instructions whose operands are complete go
   to a functional unit, round-robin across warps, limited by unit
   widths; execution semantics run here and schedule a completion.
4. :class:`IssueStage` — schedulers pick warps (GTO by default); the
   next trace instruction issues when the scoreboard is clear, the
   provider has room, and no branch is unresolved.

The stages read static per-instruction facts from the decode cache
(:mod:`repro.gpu.decode`) instead of re-deriving them per cycle; the
simulated machine is cycle-for-cycle identical to the pre-stage engine.
Stage objects hold only references into the engine — all mutable
per-run state lives in :class:`EngineState`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..stats.trace import EventKind
from .banks import AccessRequest
from .collector import InflightInstruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sm import SMEngine


class QueuedWrite:
    """One pending RF write awaiting a bank port."""

    __slots__ = ("warp_id", "register_id", "value", "age", "bank",
                 "entry", "release_on_grant")

    def __init__(self, warp_id: int, register_id: int, value: int, age: int,
                 bank: int, entry: Optional[InflightInstruction] = None,
                 release_on_grant: bool = False):
        self.warp_id = warp_id
        self.register_id = register_id
        self.value = value
        self.age = age
        self.bank = bank
        self.entry = entry
        self.release_on_grant = release_on_grant


class EngineState:
    """All mutable per-run pipeline state, shared by the stages.

    Attributes:
        cycle: current simulated cycle (0 before the first step).
        write_queue: RF writes awaiting a bank port, oldest first.
        completions: finish cycle -> [(entry, result value)].
        reads_in_flight: granted reads in the bank/crossbar pipeline,
            delivery cycle -> [(tag, warp_id, register_id)].
        inflight_read_tags: tags of granted-but-undelivered reads (the
            provider must not re-request them).
        in_flight: issued-but-unretired instruction count.
        active_warps: warps that still have instructions to issue.
        dispatch_rotor: round-robin pivot of the dispatch stage.
        write_age: monotonic age stamp for write arbitration.
        undispatched_mem: per-warp trace indexes of issued-but-
            undispatched memory ops (dispatch keeps program order so
            same-address load/store ordering holds within a warp).
    """

    __slots__ = ("cycle", "write_queue", "completions", "reads_in_flight",
                 "inflight_read_tags", "in_flight", "active_warps",
                 "dispatch_rotor", "write_age", "undispatched_mem")

    def __init__(self) -> None:
        self.cycle = 0
        self.write_queue: List[QueuedWrite] = []
        self.completions: Dict[
            int, List[Tuple[InflightInstruction, Optional[int]]]
        ] = {}
        self.reads_in_flight: Dict[int, List[Tuple[object, int, int]]] = {}
        self.inflight_read_tags: Set[object] = set()
        self.in_flight = 0
        self.active_warps = 0
        self.dispatch_rotor = 0
        self.write_age = 0
        self.undispatched_mem: Dict[int, Set[int]] = {}


class _Stage:
    """A pipeline stage bound to one engine."""

    __slots__ = ("engine", "state")

    def __init__(self, engine: "SMEngine"):
        self.engine = engine
        self.state = engine.state

    def run(self) -> bool:
        """Process one cycle; returns whether any event happened."""
        raise NotImplementedError


class CompleteStage(_Stage):
    """Hand finishing results to the provider for writeback routing."""

    __slots__ = ()

    def run(self) -> bool:
        state = self.state
        finishing = state.completions.pop(state.cycle, None)
        if not finishing:
            return False
        on_complete = self.engine.provider.on_complete
        for entry, value in finishing:
            on_complete(entry, value)
        return True


class BankStage(_Stage):
    """Reads and writes arbitrate together for the single-ported banks."""

    __slots__ = ("_read_due_delta",)

    def __init__(self, engine: "SMEngine"):
        super().__init__(engine)
        self._read_due_delta = max(1, engine.config.rf_read_latency)

    def run(self) -> bool:
        engine = self.engine
        state = self.state
        cycle = state.cycle
        delivered = self._deliver_due_reads(cycle)
        tags = state.inflight_read_tags
        reads = engine.provider.read_requests(cycle)
        if tags and reads:
            reads = [request for request in reads if request.tag not in tags]
        write_queue = state.write_queue
        if write_queue:
            writes = [
                AccessRequest(
                    bank=qw.bank,
                    warp_id=qw.warp_id,
                    register_id=qw.register_id,
                    tag=index,
                    age=qw.age,
                )
                for index, qw in enumerate(write_queue)
            ]
        else:
            writes = []
        if not reads and not writes:
            return delivered

        result = engine.arbiter.arbitrate(reads, writes)
        recorder = engine.recorder
        engine.counters.bank_conflicts += result.conflicts
        if recorder is not None and result.conflicts:
            recorder.emit(cycle, EventKind.BANK_CONFLICT,
                          count=result.conflicts)

        if result.granted_writes:
            regfile_write = engine.regfile.write
            for index in sorted(
                (request.tag for request in result.granted_writes),
                reverse=True,
            ):
                queued = write_queue.pop(index)
                regfile_write(queued.warp_id, queued.register_id,
                              queued.value)
                if recorder is not None:
                    recorder.emit(
                        cycle, EventKind.WRITEBACK, warp=queued.warp_id,
                        reason="granted", register=queued.register_id,
                        bank=queued.bank,
                    )
                if queued.release_on_grant and queued.entry is not None:
                    engine.release_scoreboard(queued.entry)

        if result.granted_reads:
            # Granted reads occupy the bank port now; the data lands in
            # the collector after the bank/crossbar pipeline latency.
            due = cycle + self._read_due_delta
            pending = state.reads_in_flight.setdefault(due, [])
            for request in result.granted_reads:
                tags.add(request.tag)
                pending.append(
                    (request.tag, request.warp_id, request.register_id)
                )
            return True
        return bool(result.granted_writes or delivered)

    def _deliver_due_reads(self, cycle: int) -> bool:
        state = self.state
        due = state.reads_in_flight.pop(cycle, None)
        if not due:
            return False
        engine = self.engine
        width = engine.config.crossbar_width
        if width and len(due) > width:
            # The crossbar moves at most `width` operands per cycle;
            # the overflow slips to the next cycle.
            due, deferred = due[:width], due[width:]
            state.reads_in_flight.setdefault(cycle + 1, []).extend(deferred)
        discard = state.inflight_read_tags.discard
        regfile_read = engine.regfile.read
        deliver = engine.provider.deliver
        for tag, warp_id, register_id in due:
            discard(tag)
            deliver(tag, regfile_read(warp_id, register_id))
        return True


class DispatchStage(_Stage):
    """Send operand-complete instructions to the functional units."""

    __slots__ = ()

    def run(self) -> bool:
        engine = self.engine
        ready = engine.provider.ready_entries()
        if not ready:
            return False
        state = self.state
        cycle = state.cycle
        counters = engine.counters
        recorder = engine.recorder
        units = engine.units
        undispatched_mem = state.undispatched_mem
        # Round-robin across warps (paper SS IV-A), oldest-first per warp.
        ready.sort(key=lambda e: (e.warp_id, e.issue_cycle, e.trace_index))
        warp_order = sorted({entry.warp_id for entry in ready})
        rotor = state.dispatch_rotor % len(warp_order)
        warp_order = warp_order[rotor:] + warp_order[:rotor]
        state.dispatch_rotor += 1
        by_warp: Dict[int, List[InflightInstruction]] = {}
        for entry in ready:
            by_warp.setdefault(entry.warp_id, []).append(entry)

        dispatched = False
        for warp_id in warp_order:
            for entry in by_warp[warp_id]:
                dec = entry.dec
                if dec.is_memory:
                    # Memory effects apply at dispatch: only the oldest
                    # undispatched memory op of the warp may go.
                    pending = undispatched_mem.get(warp_id)
                    if pending and min(pending) != entry.trace_index:
                        continue
                bucket = dec.bucket
                if not units.can_dispatch_bucket(bucket):
                    counters.exec_busy_stalls += 1
                    if recorder is not None:
                        recorder.emit(
                            cycle, EventKind.DISPATCH_STALL,
                            warp=warp_id, reason="exec_busy",
                            trace_index=entry.trace_index,
                            opcode=dec.opcode_name,
                        )
                    continue
                units.dispatch_bucket(bucket)
                engine.provider.on_dispatch(entry)
                entry.dispatch_cycle = cycle
                if recorder is not None:
                    recorder.emit(
                        cycle, EventKind.DISPATCH, warp=warp_id,
                        trace_index=entry.trace_index,
                        opcode=dec.opcode_name,
                    )
                # Drop the scoreboard's WAR reader marks: the operands
                # are collected, and the guard is sampled this cycle
                # (in _execute), so younger writers may proceed.
                warp_state = engine.warp_state(warp_id)
                reads = warp_state.sb_reads
                for reg_id in dec.source_ids:
                    remaining = reads.get(reg_id, 0) - 1
                    if remaining > 0:
                        reads[reg_id] = remaining
                    else:
                        reads.pop(reg_id, None)
                if dec.guard_id is not None:
                    pred_reads = warp_state.sb_pred_reads
                    remaining = pred_reads.get(dec.guard_id, 0) - 1
                    if remaining > 0:
                        pred_reads[dec.guard_id] = remaining
                    else:
                        pred_reads.pop(dec.guard_id, None)
                if dec.is_memory:
                    undispatched_mem[warp_id].discard(entry.trace_index)
                if dec.is_control:
                    # The next PC is determined once the branch leaves
                    # the collector; issue of the successor may resume.
                    engine.warp_state(warp_id).control_pending = False
                self._start_execution(entry, dec)
                dispatched = True
        return dispatched

    def _start_execution(self, entry: InflightInstruction, dec) -> None:
        engine = self.engine
        state = self.state
        if dec.is_memory:
            latency = engine.memory.latency(dec.inst, entry.warp_id,
                                            entry.trace_index)
        else:
            latency = dec.latency
        value = self._execute(entry, dec)
        finish = state.cycle + (latency if latency > 1 else 1)
        state.completions.setdefault(finish, []).append((entry, value))

    def _execute(self, entry: InflightInstruction, dec) -> Optional[int]:
        """Functional semantics using the *collected* operand values."""
        engine = self.engine
        warp_id = entry.warp_id
        if dec.guard_id is not None:
            value = engine.predicates.get((warp_id, dec.guard_id), False)
            if not (not value if dec.guard_negated else value):
                # Predicated off: consumes the slot, produces nothing.
                return None
        operand_values = entry.operand_values
        operands = [operand_values.get(slot, 0)
                    for slot in range(dec.num_sources)]
        while len(operands) < 3:
            operands.append(dec.imm_pad)

        if dec.is_load:
            address = engine.memory.thread_address(warp_id, operands[0])
            return engine.memory.load(address)
        if dec.is_store:
            address = engine.memory.thread_address(warp_id, operands[0])
            engine.memory.store(address, operands[1])
            return None
        if dec.is_control or dec.is_nop:
            return None
        if dec.semantic is None:
            from ..errors import SimulationError

            raise SimulationError(f"no semantics for {dec.opcode_name}")
        if dec.dest_id is None:
            return None
        value = dec.semantic(operands[0], operands[1], operands[2])
        if dec.pred_dest_id is not None:
            engine.predicates[(warp_id, dec.pred_dest_id)] = bool(value)
        return value


class IssueStage(_Stage):
    """Schedulers pick warps; hazard-free instructions enter collectors."""

    __slots__ = ("_issue_width",)

    def __init__(self, engine: "SMEngine"):
        super().__init__(engine)
        self._issue_width = engine.config.issue_width_per_scheduler

    def run(self) -> bool:
        engine = self.engine
        state = self.state
        counters = engine.counters
        recorder = engine.recorder
        provider = engine.provider
        can_accept = provider.can_accept
        insert = provider.insert
        cycle = state.cycle
        warp_by_id = engine._warp_by_id
        issue_width = self._issue_width
        issued_any = False
        for scheduler in engine.schedulers:
            budget = issue_width
            for warp_id in scheduler.candidate_order():
                if budget == 0:
                    break
                warp = warp_by_id[warp_id]
                issued_here = 0
                decoded = warp.decoded
                sb_pending = warp.sb_pending
                sb_reads = warp.sb_reads
                sb_preds = warp.sb_preds
                sb_pred_reads = warp.sb_pred_reads
                while budget > 0:
                    pc = warp.pc
                    if pc >= warp.end or warp.control_pending:
                        break
                    dec = decoded[pc]
                    # Scoreboard: RAW / WAW / WAR / predicate hazards.
                    stalled = False
                    for reg_id in dec.source_ids:
                        if reg_id in sb_pending:
                            stalled = True  # RAW
                            break
                    dest_id = dec.rf_dest_id
                    if not stalled:
                        if dest_id is not None and (
                            dest_id in sb_pending  # WAW
                            or sb_reads.get(dest_id)  # WAR
                        ):
                            stalled = True
                        elif (dec.guard_id is not None
                              and dec.guard_id in sb_preds):
                            stalled = True  # guard not resolved yet
                        elif dec.pred_dest_id is not None and (
                            dec.pred_dest_id in sb_preds  # predicate WAW
                            # predicate WAR: an older guard reader has
                            # not sampled its guard at dispatch yet
                            or sb_pred_reads.get(dec.pred_dest_id)
                        ):
                            stalled = True
                    if stalled:
                        counters.issue_stalls_scoreboard += 1
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL, warp=warp_id,
                                reason="scoreboard", trace_index=pc,
                                opcode=dec.opcode_name,
                            )
                        break
                    if not can_accept(warp_id):
                        counters.issue_stalls_collector += 1
                        if recorder is not None:
                            recorder.emit(
                                cycle, EventKind.ISSUE_STALL, warp=warp_id,
                                reason="collector", trace_index=pc,
                                opcode=dec.opcode_name,
                            )
                        break

                    entry = InflightInstruction(warp_id, pc, dec.inst,
                                                cycle, dec=dec)
                    if dest_id is not None:
                        sb_pending.add(dest_id)
                    if dec.pred_dest_id is not None:
                        sb_preds.add(dec.pred_dest_id)
                    for reg_id in dec.source_ids:
                        sb_reads[reg_id] = sb_reads.get(reg_id, 0) + 1
                    if dec.guard_id is not None:
                        sb_pred_reads[dec.guard_id] = (
                            sb_pred_reads.get(dec.guard_id, 0) + 1)
                    insert(entry)
                    if dec.is_memory:
                        state.undispatched_mem.setdefault(
                            warp_id, set()
                        ).add(pc)
                    warp.pc = pc + 1
                    if pc + 1 == warp.end:
                        state.active_warps -= 1
                    state.in_flight += 1
                    counters.issued += 1
                    if recorder is not None:
                        recorder.emit(
                            cycle, EventKind.ISSUE, warp=warp_id,
                            trace_index=pc, opcode=dec.opcode_name,
                        )
                    if dec.is_control:
                        warp.control_pending = True
                    issued_here += 1
                    budget -= 1
                    issued_any = True
                if issued_here:
                    scheduler.note_issue(warp_id)
                else:
                    # Drained warps must report stalls too: a two-level
                    # scheduler has to swap them out of the active set
                    # or pending warps would starve.
                    scheduler.note_stall(warp_id)
        return issued_any
