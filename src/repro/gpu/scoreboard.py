"""Per-warp scoreboard: RAW/WAW hazard tracking at issue.

The paper relies on the scoreboard to guarantee that two dependent
instructions are never simultaneously resident in an operand collector
(SS IV-A): an instruction only issues once every register it reads or
writes has no pending producer.  This is the standard GPU in-order-issue
scoreboard.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import SimulationError
from ..isa import Instruction
from ..isa.registers import SINK_REGISTER


class Scoreboard:
    """Pending destination registers per warp.

    Warp ids need not be dense (launches may occupy arbitrary slots);
    state is created on first touch.
    """

    def __init__(self, num_warps: int):
        if num_warps < 1:
            raise SimulationError(f"num_warps must be >= 1, got {num_warps}")
        self._pending: Dict[int, Set[int]] = {w: set() for w in range(num_warps)}
        # Registers with in-flight *readers* (issued, operands not yet
        # collected), reference-counted: a writer must not overtake them
        # (WAR through the register file).
        self._pending_reads: Dict[int, Dict[int, int]] = {}
        # Predicate registers with in-flight producers (set.* compares):
        # a guarded instruction must wait for its guard.
        self._pending_preds: Dict[int, Set[int]] = {}
        # Predicate registers with in-flight *guard readers* (issued,
        # guard not yet sampled at dispatch), reference-counted: a
        # predicate writer must not overtake them (predicate WAR — the
        # exact analog of ``_pending_reads`` for the predicate file).
        self._pending_pred_reads: Dict[int, Dict[int, int]] = {}

    def _warp(self, warp_id: int) -> Set[int]:
        if warp_id not in self._pending:
            self._pending[warp_id] = set()
        return self._pending[warp_id]

    def _warp_reads(self, warp_id: int) -> Dict[int, int]:
        if warp_id not in self._pending_reads:
            self._pending_reads[warp_id] = {}
        return self._pending_reads[warp_id]

    def _warp_preds(self, warp_id: int) -> Set[int]:
        if warp_id not in self._pending_preds:
            self._pending_preds[warp_id] = set()
        return self._pending_preds[warp_id]

    def _warp_pred_reads(self, warp_id: int) -> Dict[int, int]:
        if warp_id not in self._pending_pred_reads:
            self._pending_pred_reads[warp_id] = {}
        return self._pending_pred_reads[warp_id]

    def warp_views(self, warp_id: int):
        """Direct references to ``warp_id``'s hazard state.

        Returns ``(pending_dests, pending_reads, pending_preds,
        pending_pred_reads)`` — the *live* set/dict objects this
        scoreboard mutates, so the engine's issue stage can check and
        update hazards without per-cycle method dispatch.  The
        scoreboard's own API (`reserve`, `release`, ...) stays
        consistent with any change made through a view, because they
        are the same objects.
        """
        return (
            self._warp(warp_id),
            self._warp_reads(warp_id),
            self._warp_preds(warp_id),
            self._warp_pred_reads(warp_id),
        )

    def can_issue(self, warp_id: int, inst: Instruction) -> bool:
        """True when ``inst`` has no RAW, WAW or WAR hazard in ``warp_id``."""
        pending = self._warp(warp_id)
        for src in inst.sources:
            if src.id in pending:
                return False  # RAW
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            if inst.dest.id in pending:
                return False  # WAW
            if self._warp_reads(warp_id).get(inst.dest.id):
                return False  # WAR: an earlier reader has not collected yet
        pending_preds = self._warp_preds(warp_id)
        if inst.predicate is not None and inst.predicate.id in pending_preds:
            return False  # guard not resolved yet
        if inst.pred_dest is not None:
            if inst.pred_dest.id in pending_preds:
                return False  # predicate WAW
            if self._warp_pred_reads(warp_id).get(inst.pred_dest.id):
                return False  # predicate WAR: an earlier guard reader
                #               has not sampled its guard yet
        return True

    def reserve(self, warp_id: int, inst: Instruction) -> None:
        """Mark ``inst``'s destinations pending (called at issue)."""
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            pending = self._warp(warp_id)
            if inst.dest.id in pending:
                raise SimulationError(
                    f"warp {warp_id}: double reservation of $r{inst.dest.id}"
                )
            pending.add(inst.dest.id)
        if inst.pred_dest is not None:
            self._warp_preds(warp_id).add(inst.pred_dest.id)

    def release(self, warp_id: int, inst: Instruction) -> None:
        """Clear ``inst``'s destinations (called when values are visible)."""
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            self._warp(warp_id).discard(inst.dest.id)
        if inst.pred_dest is not None:
            self._warp_preds(warp_id).discard(inst.pred_dest.id)

    def reserve_reads(self, warp_id: int, inst: Instruction) -> None:
        """Mark ``inst``'s sources as having an in-flight reader (at issue).

        A guarding predicate is a source too: it is sampled at dispatch,
        so a younger predicate writer must not overtake it.
        """
        reads = self._warp_reads(warp_id)
        for src in inst.sources:
            reads[src.id] = reads.get(src.id, 0) + 1
        if inst.predicate is not None:
            pred_reads = self._warp_pred_reads(warp_id)
            pred_reads[inst.predicate.id] = (
                pred_reads.get(inst.predicate.id, 0) + 1)

    def release_reads(self, warp_id: int, inst: Instruction) -> None:
        """Drop the reader marks (called once operands are collected)."""
        reads = self._warp_reads(warp_id)
        for src in inst.sources:
            remaining = reads.get(src.id, 0) - 1
            if remaining > 0:
                reads[src.id] = remaining
            else:
                reads.pop(src.id, None)
        if inst.predicate is not None:
            pred_reads = self._warp_pred_reads(warp_id)
            remaining = pred_reads.get(inst.predicate.id, 0) - 1
            if remaining > 0:
                pred_reads[inst.predicate.id] = remaining
            else:
                pred_reads.pop(inst.predicate.id, None)

    def pending_count(self, warp_id: int) -> int:
        return len(self._warp(warp_id))

    def is_idle(self) -> bool:
        """No pending writes anywhere (used by drain/termination checks)."""
        return all(not pending for pending in self._pending.values())
