"""The banked register file: storage, bank mapping, and access counts.

Holds architecturally-visible register values per warp (used by the
functional layer of the simulator to verify that bypassing never changes
results) and counts the physical accesses the energy model bills.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import GPUConfig


class BankedRegisterFile:
    """Register storage split across single-ported banks.

    Values default to a deterministic per-register seed so kernels
    reading registers they never wrote still behave reproducibly (real
    kernels read launch-time state we do not model).
    """

    def __init__(self, config: GPUConfig):
        self.config = config
        self._values: Dict[Tuple[int, int], int] = {}
        self.reads = 0
        self.writes = 0

    def bank_of(self, warp_id: int, register_id: int) -> int:
        """Bank serving ``register_id`` of ``warp_id``."""
        return self.config.bank_of(warp_id, register_id)

    @staticmethod
    def _initial_value(warp_id: int, register_id: int) -> int:
        # Deterministic, distinct per (warp, register): stands in for the
        # launch-time state (thread ids, kernel params) real kernels see.
        return (warp_id * 2654435761 + register_id * 40503 + 17) & 0xFFFFFFFF

    def read(self, warp_id: int, register_id: int) -> int:
        """A physical bank read."""
        self.reads += 1
        return self.peek(warp_id, register_id)

    def write(self, warp_id: int, register_id: int, value: int) -> None:
        """A physical bank write."""
        self.writes += 1
        self._values[(warp_id, register_id)] = value & 0xFFFFFFFF

    def peek(self, warp_id: int, register_id: int) -> int:
        """Read a value without counting a physical access."""
        key = (warp_id, register_id)
        if key not in self._values:
            self._values[key] = self._initial_value(warp_id, register_id)
        return self._values[key]

    def poke(self, warp_id: int, register_id: int, value: int) -> None:
        """Update a value without counting a physical access.

        Used to keep the RF architecturally coherent when the physical
        write is modeled separately (a queued writeback's port usage is
        billed when the bank grants it, but the value must be visible to
        any read that the queue would forward to).
        """
        self._values[(warp_id, register_id)] = value & 0xFFFFFFFF

    def snapshot(self) -> Dict[Tuple[int, int], int]:
        """A copy of the current register state (tests compare designs)."""
        return dict(self._values)
