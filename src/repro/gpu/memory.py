"""Latency model for the memory hierarchy.

The paper's IPC effects hinge on the operand-collection stage, not on a
detailed cache model, so memory is modeled as per-access latency drawn
from a fixed hit/miss mix (L1 / L2 / DRAM for global accesses, fixed
latency for shared memory).  Sampling is deterministic in the run seed
and the access identity, so baseline and BOW runs of the same trace see
*identical* memory behaviour — differences between designs are then
attributable purely to the register-file subsystem.

Loads return deterministic data derived from the address, and stores are
recorded in a memory image; tests compare images across designs to prove
bypassing does not change results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import GPUConfig
from ..errors import SimulationError
from ..isa import Instruction, MemSpace


def _mix_hash(*parts: int) -> int:
    """A small deterministic integer hash (splitmix-style)."""
    state = 0x9E3779B97F4A7C15
    for part in parts:
        state ^= (part & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15
        state = (state * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 27
    return state


@dataclass(frozen=True)
class CacheMix:
    """Probability mix of where a global access hits."""

    l1_hit: float = 0.55
    l2_hit: float = 0.30

    def __post_init__(self) -> None:
        if self.l1_hit < 0 or self.l2_hit < 0 or self.l1_hit + self.l2_hit > 1.0:
            raise SimulationError(
                f"invalid cache mix: l1={self.l1_hit} l2={self.l2_hit}"
            )


class MemoryModel:
    """Deterministic latency + data model for loads and stores."""

    def __init__(self, config: GPUConfig, seed: int = 0,
                 mix: Optional[CacheMix] = None):
        self.config = config
        self.seed = seed
        self.mix = mix or CacheMix()
        self._image: Dict[int, int] = {}

    def latency(self, inst: Instruction, warp_id: int, trace_index: int) -> int:
        """Latency of one memory access, deterministic per access identity."""
        space = inst.mem_space
        if space is None:
            raise SimulationError(f"{inst.opcode.name} is not a memory op")
        if space is MemSpace.SHARED:
            return self.config.shared_mem_latency
        if space is MemSpace.LOCAL:
            return self.config.mem_l1_hit_latency
        draw = (_mix_hash(self.seed, warp_id, trace_index) % 10_000) / 10_000.0
        if draw < self.mix.l1_hit:
            return self.config.mem_l1_hit_latency
        if draw < self.mix.l1_hit + self.mix.l2_hit:
            return self.config.mem_l2_hit_latency
        return self.config.mem_global_latency

    @staticmethod
    def thread_address(warp_id: int, address: int) -> int:
        """Fold the warp id into an address.

        Warps get disjoint 20-bit address windows, standing in for
        per-thread addressing; disjointness makes the final memory image
        independent of cross-warp interleaving, so runs of different
        designs are comparable store-for-store.
        """
        return ((address & 0x000FFFFF) | (warp_id << 20)) & 0xFFFFFFFF

    def load(self, address: int) -> int:
        """Data at ``address``: stored value, else a deterministic pattern."""
        address &= 0xFFFFFFFF
        if address in self._image:
            return self._image[address]
        return _mix_hash(address) & 0xFFFFFFFF

    def store(self, address: int, value: int) -> None:
        self._image[address & 0xFFFFFFFF] = value & 0xFFFFFFFF

    def image_snapshot(self) -> Dict[int, int]:
        """Copy of all stored locations (tests compare across designs)."""
        return dict(self._image)
