"""Full-device simulation: a parallel dispatcher over per-SM engines.

The paper evaluates BOW on a whole TITAN X — every SM running its share
of the launch's thread blocks (CTAs) — while the per-SM engine
(:mod:`repro.gpu.sm`) models exactly one SM.  This module closes that
gap: :func:`simulate_device` partitions a :class:`KernelTrace` into
per-SM sub-launches, executes the independent :class:`SMEngine`
instances — serially, on a thread pool, or on a
:class:`~concurrent.futures.ProcessPoolExecutor` — and aggregates a
:class:`DeviceResult` whose counters describe the *device*: total
instructions over the finish time of the slowest SM.

Three properties make device runs trustworthy:

* **Deterministic partitioning.**  CTAs (groups of ``warps_per_cta``
  consecutive warps) are assigned round-robin, rotated by the run seed
  — the same ``(trace, num_sms, seed)`` always yields the same
  per-SM sub-launches, independent of worker count or executor kind.
* **Placement-invariant memory behaviour.**  Sub-launches keep their
  *global* warp ids, and every SM's :class:`~repro.gpu.memory.MemoryModel`
  uses the same seed; since latency draws are keyed by
  ``(seed, warp_id, trace_index)``, a warp sees identical memory
  behaviour wherever it lands.  Register and memory images stay keyed
  by global warp identity, so aggregation is a disjoint merge.
* **Drain/retry execution semantics** (mirroring the sweep engine of
  :mod:`repro.experiments.grid`): completed SM results are always
  collected before any raise, transient failures are retried per a
  :class:`~repro.experiments.resilience.RetryPolicy` with deterministic
  backoff, and a broken process pool is rebuilt with its in-flight SMs
  resubmitted.

``num_sms=1`` is an exact identity: the single partition holds every
warp in launch order with the run's own memory seed, so a one-SM device
run is cycle-for-cycle bit-identical to :func:`simulate_design` (the
test suite asserts this for every registered design).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import SimulationError
from ..kernels.trace import KernelTrace, WarpTrace
from ..stats.counters import Counters
from .sm import SimulationResult

#: Executor kinds :func:`simulate_device` accepts.
EXECUTORS = ("serial", "thread", "process")

#: Warps per CTA (thread block) when the caller does not say: 4 warps =
#: 128 threads, the common CTA shape of the paper's Table III kernels.
DEFAULT_WARPS_PER_CTA = 4


@dataclass(frozen=True)
class SMPartition:
    """One SM's share of a launch.

    Attributes:
        sm_id: the SM slot (0-based).
        trace: the sub-launch — warps keep their *global* ids.
        warp_ids: global warp ids resident on this SM, sorted.
        cta_ids: CTA indices assigned to this SM, sorted.
    """

    sm_id: int
    trace: KernelTrace
    warp_ids: Tuple[int, ...]
    cta_ids: Tuple[int, ...]


@dataclass(frozen=True)
class DevicePartition:
    """A full launch split across SMs.

    Only SMs that received at least one CTA appear in ``sms``;
    ``idle_sms`` counts the slots the launch could not fill.
    """

    num_sms: int
    warps_per_cta: int
    seed: int
    sms: Tuple[SMPartition, ...]

    @property
    def idle_sms(self) -> int:
        return self.num_sms - len(self.sms)

    @property
    def num_ctas(self) -> int:
        return sum(len(sm.cta_ids) for sm in self.sms)


def partition_launch(
    trace: KernelTrace,
    num_sms: int,
    seed: int = 0,
    warps_per_cta: int = DEFAULT_WARPS_PER_CTA,
) -> DevicePartition:
    """Assign the launch's CTAs to SMs round-robin, rotated by ``seed``.

    Consecutive ``warps_per_cta`` warps (in warp-id order) form one CTA
    — the unit of SM assignment, as in the execution model of the
    paper's SS II.  CTA ``i`` lands on SM ``(i + seed) % num_sms``, so
    the partition is deterministic in ``(trace, num_sms, seed)`` and
    nothing else.  Warps keep their global ids (see the module
    docstring for why that matters).
    """
    if num_sms < 1:
        raise SimulationError(f"num_sms must be >= 1, got {num_sms}")
    if warps_per_cta < 1:
        raise SimulationError(
            f"warps_per_cta must be >= 1, got {warps_per_cta}"
        )
    warps = sorted(trace.warps, key=lambda warp: warp.warp_id)
    ctas = [
        warps[index:index + warps_per_cta]
        for index in range(0, len(warps), warps_per_cta)
    ]
    assignment: Dict[int, List[int]] = {}
    for cta_id in range(len(ctas)):
        assignment.setdefault((cta_id + seed) % num_sms, []).append(cta_id)

    partitions = []
    for sm_id in sorted(assignment):
        sm_warps: List[WarpTrace] = []
        for cta_id in assignment[sm_id]:
            sm_warps.extend(ctas[cta_id])
        sm_warps.sort(key=lambda warp: warp.warp_id)
        partitions.append(SMPartition(
            sm_id=sm_id,
            trace=KernelTrace(name=f"{trace.name}@sm{sm_id}",
                              warps=sm_warps),
            warp_ids=tuple(warp.warp_id for warp in sm_warps),
            cta_ids=tuple(assignment[sm_id]),
        ))
    return DevicePartition(num_sms=num_sms, warps_per_cta=warps_per_cta,
                           seed=seed, sms=tuple(partitions))


def merge_counters(per_sm: List[Counters]) -> Counters:
    """Device-level rollup: field-wise sums, except ``cycles`` = max.

    Summing cycles would describe serialized SMs; a device finishes
    when its slowest SM does, so the merged ``ipc`` property is device
    IPC (total instructions over the device finish time).
    """
    merged = Counters()
    for counters in per_sm:
        for item in fields(Counters):
            setattr(merged, item.name,
                    getattr(merged, item.name) + getattr(counters, item.name))
    merged.cycles = max((c.cycles for c in per_sm), default=0)
    return merged


@dataclass
class DeviceResult:
    """Everything a device run produces.

    ``counters`` is the device rollup (:func:`merge_counters`), so
    ``ipc`` is device IPC; ``per_sm`` keeps each SM's own
    :class:`SimulationResult` for per-SM analysis, and
    ``register_image`` / ``memory_image`` are the disjoint merges over
    global warp identity.  ``attempts`` records the dispatcher's
    execution attempts per SM (1 unless the retry policy re-ran one);
    ``recorders`` holds per-SM trace recorders when a
    ``recorder_factory`` was supplied.
    """

    design: str
    partition: DevicePartition
    per_sm: Dict[int, SimulationResult]
    counters: Counters
    register_image: Dict[Tuple[int, int], int]
    memory_image: Dict[int, int]
    wall_seconds: float = 0.0
    attempts: Optional[Dict[int, int]] = None
    recorders: Optional[Dict[int, object]] = None

    @property
    def num_sms(self) -> int:
        return self.partition.num_sms

    @property
    def ipc(self) -> float:
        """Device IPC: total instructions / slowest SM's cycles."""
        return self.counters.ipc

    @property
    def ipc_per_sm(self) -> float:
        """Device IPC normalized per *occupied* SM (one-SM comparable)."""
        if not self.per_sm or not self.counters.cycles:
            return 0.0
        return self.ipc / len(self.per_sm)

    def load_imbalance(self) -> float:
        """Slowest SM's cycles over the mean (1.0 = perfectly balanced).

        When every SM reports zero cycles the SMs are degenerate but
        *balanced* — each did exactly as much work as the mean — so the
        ratio is 1.0, keeping the "1.0 = perfectly balanced" contract.
        An empty device (no occupied SMs) has no load to compare and
        returns 0.0.
        """
        cycles = [r.counters.cycles for r in self.per_sm.values()]
        if not cycles:
            return 0.0
        mean = sum(cycles) / len(cycles)
        return max(cycles) / mean if mean else 1.0

    def to_simulation_result(self) -> SimulationResult:
        """The device run as one :class:`SimulationResult`.

        This is what the experiment layer caches and serializes: the
        merged counters (device IPC semantics) plus the merged images.
        For ``num_sms=1`` it is bit-identical to the single-SM result.
        """
        return SimulationResult(
            counters=self.counters,
            register_image=self.register_image,
            memory_image=self.memory_image,
        )

    def format(self) -> str:
        """Per-SM rollup table plus the device headline."""
        from ..stats.report import format_table

        rows = []
        for sm_id in sorted(self.per_sm):
            result = self.per_sm[sm_id]
            partition = next(sm for sm in self.partition.sms
                             if sm.sm_id == sm_id)
            stalls = (result.counters.issue_stalls_scoreboard
                      + result.counters.issue_stalls_collector)
            rows.append([
                sm_id, len(partition.warp_ids), len(partition.cta_ids),
                result.counters.cycles, result.counters.instructions,
                f"{result.ipc:.3f}", stalls,
                result.counters.bypassed_reads,
            ])
        table = format_table(
            ["SM", "warps", "CTAs", "cycles", "instructions", "IPC",
             "issue stalls", "BOC hits"],
            rows,
            title=(f"Device: {self.design}, {self.num_sms} SM(s) "
                   f"({self.partition.idle_sms} idle), "
                   f"{self.partition.num_ctas} CTA(s) "
                   f"x{self.partition.warps_per_cta} warps"),
        )
        return (
            f"{table}\n"
            f"device IPC {self.ipc:.3f} "
            f"({self.ipc_per_sm:.3f}/SM over {len(self.per_sm)} occupied), "
            f"finish cycle {self.counters.cycles}, "
            f"load imbalance {self.load_imbalance():.3f}"
        )


def _run_sm(args: Tuple[str, KernelTrace, int, Optional[GPUConfig], int, bool],
            recorder=None) -> Tuple[float, SimulationResult]:
    """Simulate one SM partition; the unit of (possibly remote) dispatch."""
    design, sm_trace, window_size, config, memory_seed, fast_forward = args
    from ..core.bow_sm import simulate_design

    started = time.perf_counter()
    result = simulate_design(design, sm_trace, window_size=window_size,
                             config=config, memory_seed=memory_seed,
                             recorder=recorder, fast_forward=fast_forward)
    return time.perf_counter() - started, result


def default_device_jobs(num_sms: int) -> int:
    """A sensible worker count for ``num_sms`` SMs on this machine."""
    return max(1, min(num_sms, os.cpu_count() or 1))


def _dispatch_serial(work, policy, finish, fail, recorder_for=None):
    """Resolve the SM partitions in-process, honouring the retry policy."""
    for sm_id, args in work:
        attempts = 0
        while True:
            attempts += 1
            try:
                seconds, result = _run_sm(
                    args,
                    None if recorder_for is None else recorder_for(sm_id),
                )
            except Exception as error:  # noqa: BLE001 — taxonomy decides
                from ..experiments.resilience import classify_failure

                if policy.should_retry(classify_failure(error), attempts):
                    time.sleep(policy.delay(attempts))
                    continue
                fail(sm_id, attempts, error)
            else:
                finish(sm_id, attempts, result)
            break


def _dispatch_pool(work, policy, finish, fail, jobs, executor,
                   recorder_for=None):
    """Fan the SM partitions over a worker pool, drain-then-retry style.

    Mirrors the sweep engine's semantics at SM granularity: completed
    futures are always drained (their results kept) before anything
    else; failed SMs are retried per the policy with deterministic
    backoff; a ``BrokenProcessPool`` rebuilds the pool and resubmits
    every in-flight SM (each charged the attempt it lost).
    """
    from ..experiments.resilience import classify_failure

    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor as PoolClass
    else:
        PoolClass = ProcessPoolExecutor

    attempts: Dict[int, int] = {sm_id: 0 for sm_id, _ in work}
    args_by_sm = dict(work)
    #: (sm_id, earliest submission time) — backoff delays live here.
    ready: List[Tuple[int, float]] = [(sm_id, 0.0) for sm_id, _ in work]
    futures: Dict[object, int] = {}
    pool = None

    def submit(pool, sm_id):
        attempts[sm_id] += 1
        recorder = None if recorder_for is None else recorder_for(sm_id)
        futures[pool.submit(_run_sm, args_by_sm[sm_id], recorder)] = sm_id

    def retry_or_fail(sm_id, error):
        if policy.should_retry(classify_failure(error), attempts[sm_id]):
            ready.append((sm_id, time.monotonic()
                          + policy.delay(attempts[sm_id])))
        else:
            fail(sm_id, attempts[sm_id], error)

    try:
        while ready or futures:
            now = time.monotonic()
            if pool is None and ready:
                pool = PoolClass(max_workers=min(jobs, max(1, len(ready))))
            waiting = []
            for sm_id, not_before in ready:
                if not_before <= now:
                    submit(pool, sm_id)
                else:
                    waiting.append((sm_id, not_before))
            ready = waiting

            if not futures:
                wake = min(not_before for _, not_before in ready)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in done:
                sm_id = futures.pop(future)
                try:
                    seconds, result = future.result()
                except BrokenProcessPool as error:
                    pool_broke = True
                    retry_or_fail(sm_id, error)
                except Exception as error:  # noqa: BLE001 — taxonomy decides
                    retry_or_fail(sm_id, error)
                else:
                    finish(sm_id, attempts[sm_id], result)

            if pool_broke and pool is not None:
                # The pool died: every in-flight SM died with it.
                for future in list(futures):
                    sm_id = futures.pop(future)
                    retry_or_fail(sm_id, BrokenProcessPool(
                        "process pool died with this SM in flight"))
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def simulate_device(
    design: str,
    trace: KernelTrace,
    num_sms: Optional[int] = None,
    window_size: int = 3,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    seed: Optional[int] = None,
    warps_per_cta: int = DEFAULT_WARPS_PER_CTA,
    jobs: int = 1,
    executor: str = "thread",
    retry=None,
    recorder_factory: Optional[Callable[[int], object]] = None,
    progress: Optional[Callable[[str], None]] = None,
    fast_forward: bool = True,
) -> DeviceResult:
    """Simulate ``design`` over ``trace`` at device scale.

    Args:
        design: a registered design name
            (:func:`repro.core.designs.design_names`).
        trace: the full launch; CTAs are formed from consecutive warps.
        num_sms: SM count; ``None`` uses ``config.num_sms`` (Table II:
            the full TITAN X).
        window_size: instruction window for BOW designs.
        config: per-SM machine configuration (shared by every SM).
        memory_seed: seed of every SM's memory-latency model — shared,
            so a warp's memory behaviour is placement-invariant.
        seed: partition rotation seed; ``None`` uses ``memory_seed``
            (the run seed keys the CTA scheduler).
        warps_per_cta: warps per thread block (the assignment unit).
        jobs: dispatcher worker count; 1 runs the SMs serially
            in-process regardless of ``executor``.
        executor: ``"serial"``, ``"thread"`` or ``"process"`` — how
            SM engines execute when ``jobs > 1``.  Results are
            bit-identical across all three (and across job counts).
        retry: a :class:`~repro.experiments.resilience.RetryPolicy`
            (``None`` uses :data:`~repro.experiments.resilience.NO_RETRY`
            — SM engines are deterministic, so only transient
            infrastructure failures are worth retrying; pass
            ``DEFAULT_POLICY`` for sweep-grade resilience).
        recorder_factory: optional ``sm_id -> TraceRecorder`` hook; the
            per-SM recorders land on ``DeviceResult.recorders``.
            Requires an in-process executor (serial or thread).
        progress: optional callback receiving one line per finished SM.
        fast_forward: forwarded to every SM engine; ``False`` ticks
            each engine cycle-by-cycle (the event-horizon kill switch).

    Raises:
        SimulationError: on an invalid configuration, or — after every
            SM has been drained — when any SM exhausted its retry
            policy (the first failure is chained as the cause).
    """
    started = time.perf_counter()
    resolved_config = config or GPUConfig()
    if num_sms is None:
        num_sms = resolved_config.num_sms
    if executor not in EXECUTORS:
        raise SimulationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if trace.num_warps == 0:
        raise SimulationError("cannot simulate an empty launch")
    if recorder_factory is not None and executor == "process" and jobs > 1:
        raise SimulationError(
            "per-SM trace capture needs an in-process executor "
            "(serial or thread); recorders cannot cross processes"
        )
    if retry is None:
        from ..experiments.resilience import NO_RETRY as retry

    partition = partition_launch(
        trace, num_sms, seed=memory_seed if seed is None else seed,
        warps_per_cta=warps_per_cta,
    )
    recorders: Optional[Dict[int, object]] = None
    if recorder_factory is not None:
        recorders = {sm.sm_id: recorder_factory(sm.sm_id)
                     for sm in partition.sms}

    work = [
        (sm.sm_id, (design, sm.trace, window_size, config, memory_seed,
                    fast_forward))
        for sm in partition.sms
    ]
    per_sm: Dict[int, SimulationResult] = {}
    attempts_by_sm: Dict[int, int] = {}
    failures: List[Tuple[int, int, BaseException]] = []

    def finish(sm_id: int, attempts: int, result: SimulationResult) -> None:
        per_sm[sm_id] = result
        attempts_by_sm[sm_id] = attempts
        if progress is not None:
            progress(f"[{len(per_sm)}/{len(work)}] SM {sm_id}: "
                     f"{result.counters.cycles} cycles, "
                     f"IPC {result.ipc:.3f}")

    def fail(sm_id: int, attempts: int, error: BaseException) -> None:
        failures.append((sm_id, attempts, error))
        if progress is not None:
            progress(f"SM {sm_id} FAILED after {attempts} attempt(s): "
                     f"{type(error).__name__}: {error}")

    recorder_for = None if recorders is None else recorders.get
    if jobs <= 1 or len(work) == 1 or executor == "serial":
        _dispatch_serial(work, retry, finish, fail,
                         recorder_for=recorder_for)
    else:
        _dispatch_pool(work, retry, finish, fail, jobs, executor,
                       recorder_for=recorder_for)

    if failures:
        # Drain semantics: every completed SM result was already kept.
        failures.sort(key=lambda item: item[0])
        sm_id, attempts, error = failures[0]
        raise SimulationError(
            f"device simulation of {trace.name!r} on {design!r} failed: "
            f"SM {sm_id} exhausted {attempts} attempt(s) "
            f"({type(error).__name__}: {error})"
            + (f"; {len(failures) - 1} more SM(s) failed"
               if len(failures) > 1 else "")
        ) from error

    ordered = [per_sm[sm.sm_id] for sm in partition.sms]
    register_image: Dict[Tuple[int, int], int] = {}
    memory_image: Dict[int, int] = {}
    for result in ordered:  # sm-id order: a deterministic merge
        register_image.update(result.register_image)
        memory_image.update(result.memory_image)

    return DeviceResult(
        design=design,
        partition=partition,
        per_sm=per_sm,
        counters=merge_counters([r.counters for r in ordered]),
        register_image=register_image,
        memory_image=memory_image,
        wall_seconds=time.perf_counter() - started,
        attempts=attempts_by_sm,
        recorders=recorders,
    )
