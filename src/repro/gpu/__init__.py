"""Baseline GPU streaming-multiprocessor microarchitecture.

This package is the substrate the paper's evaluation runs on: a
cycle-level model of one SM with the Figure 2 register-file organization
(32 single-ported banks behind a crossbar and a bank arbitrator),
conventional single-ported operand-collector units, GTO warp schedulers,
a scoreboard, and latency-modeled SIMD/SFU/memory pipelines.

The BOW designs (package :mod:`repro.core`) plug into the same engine
through the :class:`~repro.gpu.collector.OperandProvider` interface, so
baseline and bypassing runs share every other pipeline mechanism.
"""

from .banks import AccessRequest, BankArbiter
from .collector import (
    BaselineCollectorPool,
    InflightInstruction,
    OperandProvider,
)
from .device import (
    DevicePartition,
    DeviceResult,
    SMPartition,
    merge_counters,
    partition_launch,
    simulate_device,
)
from .execution import ExecutionUnits, latency_for
from .launch import LaunchResult, partition_warps, simulate_launch
from .memory import MemoryModel
from .reference import ReferenceResult, execute_reference
from .regfile import BankedRegisterFile
from .scheduler import (
    GTOScheduler,
    LRRScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from .scoreboard import Scoreboard
from .sm import SimulationResult, SMEngine, simulate_baseline

__all__ = [
    "DevicePartition",
    "DeviceResult",
    "SMPartition",
    "merge_counters",
    "partition_launch",
    "simulate_device",
    "ReferenceResult",
    "execute_reference",
    "LaunchResult",
    "partition_warps",
    "simulate_launch",
    "BankArbiter",
    "AccessRequest",
    "BankedRegisterFile",
    "Scoreboard",
    "make_scheduler",
    "GTOScheduler",
    "LRRScheduler",
    "TwoLevelScheduler",
    "ExecutionUnits",
    "latency_for",
    "MemoryModel",
    "InflightInstruction",
    "OperandProvider",
    "BaselineCollectorPool",
    "SMEngine",
    "SimulationResult",
    "simulate_baseline",
]
