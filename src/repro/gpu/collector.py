"""Operand collection: the provider protocol and the baseline OCU pool.

The engine (:mod:`repro.gpu.sm`) is agnostic to how operands reach an
instruction: it talks to an :class:`OperandProvider`, which owns the
collector storage.  Every design point in the registry
(:mod:`repro.core.designs`) is "an engine plus a provider":

* :class:`BaselineCollectorPool` (here) — conventional operand collector
  units, every operand fetched from the RF;
* :class:`~repro.core.boc.BOWCollectors` — per-warp bypassing collectors
  implementing the BOW writeback policies;
* :class:`~repro.core.rfc.RFCCollectors` — conventional collectors
  backed by a register-file cache (the closest prior design).

All three implement the same protocol, so adding a design never touches
the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..isa import Instruction
from .banks import AccessRequest
from .decode import DecodedOp


class InflightInstruction:
    """One instruction between issue and completion.

    Attributes:
        warp_id: owning warp.
        trace_index: position in the warp's dynamic trace (identity key:
            static instructions repeat across loop iterations).
        inst: the static instruction.
        issue_cycle: when it entered the collector stage.
        dispatch_cycle: when its operands were complete and it went to a
            functional unit (``None`` while collecting).
        operand_values: collected source values by operand slot.
        pending_slots: operand slots still waiting on an RF read, in
            request order (the single collector port serializes them).
        dec: the instruction's :class:`~repro.gpu.decode.DecodedOp`.
            The engine issues entries with it populated; entries built
            by hand (tests, external drivers) may leave it ``None`` and
            the provider decodes lazily on insert.
        key: ``(warp_id, trace_index)`` — the entry's identity.
        head_request: cached :class:`AccessRequest` for the head pending
            slot.  A stalled slot re-requests the same bank every cycle
            until granted, so providers reuse the object instead of
            rebuilding it (they invalidate by comparing the cached
            tag's slot against the current head).
    """

    __slots__ = ("warp_id", "trace_index", "inst", "issue_cycle",
                 "dispatch_cycle", "operand_values", "pending_slots",
                 "dec", "key", "head_request")

    def __init__(
        self,
        warp_id: int,
        trace_index: int,
        inst: Instruction,
        issue_cycle: int,
        dispatch_cycle: Optional[int] = None,
        operand_values: Optional[Dict[int, int]] = None,
        pending_slots: Optional[List[int]] = None,
        dec: Optional[DecodedOp] = None,
    ):
        self.warp_id = warp_id
        self.trace_index = trace_index
        self.inst = inst
        self.issue_cycle = issue_cycle
        self.dispatch_cycle = dispatch_cycle
        self.operand_values = {} if operand_values is None else operand_values
        self.pending_slots = [] if pending_slots is None else pending_slots
        self.dec = dec
        self.key = (warp_id, trace_index)
        self.head_request: Optional[AccessRequest] = None

    @property
    def operands_ready(self) -> bool:
        return not self.pending_slots

    def __repr__(self) -> str:
        return (
            f"InflightInstruction(warp={self.warp_id}, "
            f"trace_index={self.trace_index}, inst={self.inst!s}, "
            f"issue_cycle={self.issue_cycle})"
        )


class OperandProvider:
    """The protocol between the engine and a collector organization.

    The engine drives a provider through three groups of hooks, all of
    which a conforming implementation must honor:

    **Issue / read-request path** — :meth:`can_accept` gates issue;
    :meth:`insert` accepts a new entry (forwarding and window sliding /
    eviction happen here); :meth:`read_requests` exposes this cycle's
    RF reads (one per collector port; the engine drops tags already in
    flight); :meth:`deliver` returns a granted read's data.

    **Dispatch path** — :meth:`ready_entries` lists operand-complete
    entries; :meth:`on_dispatch` frees the collector slot.

    **Write-route path** — :meth:`on_complete` routes a result (RF
    queue via :meth:`SMEngine.enqueue_rf_write`, collector storage, or
    both: this is where the writeback policies differ) and must
    eventually call :meth:`SMEngine.release_scoreboard` exactly once
    per entry (directly, or via a ``release_on_grant`` queued write);
    :meth:`drain` flushes anything that still owes RF writes at kernel
    end.

    Providers emit their design-specific trace events (BOC hits,
    inserts, evictions, eliminated writes) through ``engine.recorder``,
    guarded by ``is not None`` so the untraced hot path does no tracing
    work; engine-level events (issue, dispatch, writeback, commit) are
    emitted by the stages.
    """

    #: True when :meth:`can_accept` ignores ``warp_id`` (one shared
    #: structure gates every warp).  The issue stage exploits this: one
    #: acceptance check settles every collector-stalled warp at once.
    #: Per-warp organizations (the BOW per-warp collectors) keep False.
    shared_pool = False

    #: True when :meth:`read_requests` already skips tags in
    #: ``engine.state.inflight_read_tags``, letting the bank stage drop
    #: its per-cycle safety re-filter.  External providers keep False
    #: and get filtered by the engine.
    prefilters_inflight = False

    #: True when the provider honors the tick-guard contract, letting
    #: the engine skip whole stage calls on cycles it can prove them
    #: idle.  The contract:
    #:
    #: * ``heads_pending`` counts entries whose head operand slot still
    #:   awaits data (requesting a bank port, granted-in-flight, or in
    #:   provider-internal service).  The engine only calls the bank
    #:   stage when ``heads_pending`` exceeds the granted-in-flight tag
    #:   count (or writes / due deliveries exist), so the count may
    #:   over-approximate requestable heads but never under-approximate.
    #: * ``due_heap`` is a min-heap of provider-internal delivery
    #:   cycles (e.g. RFC cache hits) that :meth:`read_requests` must
    #:   be called on; providers without internal timers share the
    #:   empty-tuple default.
    #: * the list returned by :meth:`ready_entries` keeps a stable
    #:   identity (mutated in place), so the engine can test it for
    #:   emptiness without a call.
    #: * :meth:`read_requests` is side-effect-free on cycles where no
    #:   head is requestable and no ``due_heap`` entry is due.
    #:
    #: External providers keep False and every stage runs every cycle.
    tick_guards = False

    #: Entries whose head operand slot still awaits data (see
    #: ``tick_guards``).  Guarded providers maintain this incrementally.
    heads_pending = 0

    #: Min-heap of provider-internal delivery cycles (see
    #: ``tick_guards``).
    due_heap: tuple = ()

    def can_accept(self, warp_id: int) -> bool:
        """Can a new instruction of ``warp_id`` enter the collectors?"""
        raise NotImplementedError

    def insert(self, entry: InflightInstruction) -> None:
        """Accept a newly issued instruction (resolve forwarding here)."""
        raise NotImplementedError

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        """This cycle's RF read requests (one per collector port)."""
        raise NotImplementedError

    def deliver(self, tag: object, value: int) -> None:
        """An RF read granted by the arbiter returns its data."""
        raise NotImplementedError

    def ready_entries(self) -> List[InflightInstruction]:
        """Instructions whose operands are complete, oldest-first per warp.

        Callers treat the result as a read-only view: providers may
        return internal state, so the dispatch stage copies before it
        reorders.
        """
        raise NotImplementedError

    def on_dispatch(self, entry: InflightInstruction) -> None:
        """The engine dispatched ``entry`` to a functional unit."""
        raise NotImplementedError

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        """``entry`` finished executing and produced ``value`` (or none).

        The provider routes the result: RF write queue, collector
        storage, or both — this is where the writeback policies differ.
        """
        raise NotImplementedError

    def drain(self) -> None:
        """Kernel end: flush any state that still owes RF writes."""

    # -- event-horizon fast-forward hooks -------------------------------

    def next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle with a provider-internal event.

        The engine's fast-forward loop never skips past this cycle.
        ``None`` means the provider has no self-scheduled events (it
        only reacts to engine-driven deliveries and completions, which
        the engine tracks itself).  Implementations with internal
        timers — e.g. the RFC's pipelined cache-hit deliveries — must
        report their earliest due cycle here.
        """
        return None

    def on_fast_forward(self, span: int) -> None:
        """The engine skipped ``span`` provably idle cycles in bulk.

        Replay any per-cycle observational work the provider performs
        even when nothing moves (e.g. BOW occupancy sampling inside
        :meth:`read_requests`, which is not called for skipped cycles).
        Architectural state must not change: by construction nothing
        could make progress in the span.
        """


def ensure_decoded(entry: InflightInstruction, engine) -> DecodedOp:
    """The entry's decode record, decoding lazily for hand-built entries."""
    dec = entry.dec
    if dec is None:
        dec = DecodedOp(entry.warp_id, entry.inst, engine.config)
        entry.dec = dec
    return dec


class BaselineCollectorPool(OperandProvider):
    """Conventional OCUs: shared pool, no bypassing (Figure 2).

    Every source operand is fetched from the RF; each OCU's single port
    serializes its fetches; results are written back to the RF through
    the engine's write queue, and the scoreboard releases only when the
    bank accepts the write.
    """

    shared_pool = True  # can_accept gates on the pool, not the warp
    prefilters_inflight = True  # read_requests skips in-flight tags
    tick_guards = True  # heads_pending / stable ready list maintained

    def __init__(self, engine, num_units: int):
        if num_units < 1:
            raise SimulationError(f"num_units must be >= 1, got {num_units}")
        self.engine = engine
        self.num_units = num_units
        self._occupied: Dict[Tuple[int, int], InflightInstruction] = {}
        # Entries currently collecting (i.e. consuming an OCU).
        self._collecting: List[InflightInstruction] = []
        # Operand-complete entries, maintained incrementally at the
        # ready transition (insert with no sources, or last delivery)
        # so ready_entries never rescans the pool.
        self._ready: List[InflightInstruction] = []
        self.heads_pending = 0

    # -- issue ----------------------------------------------------------

    def can_accept(self, warp_id: int) -> bool:
        return len(self._collecting) < self.num_units

    def insert(self, entry: InflightInstruction) -> None:
        if len(self._collecting) >= self.num_units:
            raise SimulationError("insert called with no free OCU")
        dec = ensure_decoded(entry, self.engine)
        entry.pending_slots = list(range(dec.num_sources))
        self._occupied[entry.key] = entry
        self._collecting.append(entry)
        if entry.pending_slots:
            self.heads_pending += 1
        else:
            self._ready.append(entry)

    # -- collection ------------------------------------------------------

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        requests = []
        # Skip slots whose read was already granted (the engine would
        # filter them anyway; not building the request is cheaper).
        inflight_tags = self.engine.state.inflight_read_tags
        for entry in self._collecting:
            pending = entry.pending_slots
            if not pending:
                continue
            slot = pending[0]
            request = entry.head_request
            if request is None or request.tag[1] != slot:
                dec = entry.dec
                request = AccessRequest(
                    bank=dec.source_banks[slot],
                    warp_id=entry.warp_id,
                    register_id=dec.source_ids[slot],
                    tag=(entry.key, slot),
                    age=entry.issue_cycle,
                )
                entry.head_request = request
            if request.tag in inflight_tags:
                continue
            requests.append(request)
        return requests

    def deliver(self, tag: object, value: int) -> None:
        key, slot = tag
        entry = self._occupied.get(key)
        if entry is None or not entry.pending_slots or entry.pending_slots[0] != slot:
            raise SimulationError(f"unexpected operand delivery {tag!r}")
        entry.pending_slots.pop(0)
        entry.operand_values[slot] = value
        if not entry.pending_slots:
            self.heads_pending -= 1
            self._ready.append(entry)

    def ready_entries(self) -> List[InflightInstruction]:
        return self._ready

    def on_dispatch(self, entry: InflightInstruction) -> None:
        self._collecting.remove(entry)
        self._ready.remove(entry)

    # -- writeback --------------------------------------------------------

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        self._occupied.pop(entry.key, None)
        if value is None or entry.dec.rf_dest_id is None:
            # Predicate-only results ($o127 sink) never touch the banks.
            self.engine.release_scoreboard(entry)
            return
        # Conventional path: result goes to the RF; the scoreboard holds
        # until the bank accepts the write.
        self.engine.enqueue_rf_write(entry, value, release_on_grant=True)
