"""Operand collection: the provider interface and the baseline OCU pool.

The engine (:mod:`repro.gpu.sm`) is agnostic to how operands reach an
instruction: it talks to an :class:`OperandProvider`, which owns the
collector storage.  The baseline provider models conventional operand
collector units — a shared pool, three operand entries each, a single
read port per unit, every operand fetched from the RF.  The BOW provider
(:mod:`repro.core.boc`) implements the same interface with per-warp
bypassing collectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..isa import Instruction
from ..isa.registers import SINK_REGISTER
from .banks import AccessRequest


@dataclass
class InflightInstruction:
    """One instruction between issue and completion.

    Attributes:
        warp_id: owning warp.
        trace_index: position in the warp's dynamic trace (identity key:
            static instructions repeat across loop iterations).
        inst: the static instruction.
        issue_cycle: when it entered the collector stage.
        dispatch_cycle: when its operands were complete and it went to a
            functional unit (``None`` while collecting).
        operand_values: collected source values by operand slot.
        pending_slots: operand slots still waiting on an RF read, in
            request order (the single collector port serializes them).
    """

    warp_id: int
    trace_index: int
    inst: Instruction
    issue_cycle: int
    dispatch_cycle: Optional[int] = None
    operand_values: Dict[int, int] = field(default_factory=dict)
    pending_slots: List[int] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.warp_id, self.trace_index)

    @property
    def operands_ready(self) -> bool:
        return not self.pending_slots


class OperandProvider:
    """Interface between the engine and a collector organization."""

    def can_accept(self, warp_id: int) -> bool:
        """Can a new instruction of ``warp_id`` enter the collectors?"""
        raise NotImplementedError

    def insert(self, entry: InflightInstruction) -> None:
        """Accept a newly issued instruction (resolve forwarding here)."""
        raise NotImplementedError

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        """This cycle's RF read requests (one per collector port)."""
        raise NotImplementedError

    def deliver(self, tag: object, value: int) -> None:
        """An RF read granted by the arbiter returns its data."""
        raise NotImplementedError

    def ready_entries(self) -> List[InflightInstruction]:
        """Instructions whose operands are complete, oldest-first per warp."""
        raise NotImplementedError

    def on_dispatch(self, entry: InflightInstruction) -> None:
        """The engine dispatched ``entry`` to a functional unit."""
        raise NotImplementedError

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        """``entry`` finished executing and produced ``value`` (or none).

        The provider routes the result: RF write queue, collector
        storage, or both — this is where the writeback policies differ.
        """
        raise NotImplementedError

    def drain(self) -> None:
        """Kernel end: flush any state that still owes RF writes."""


class BaselineCollectorPool(OperandProvider):
    """Conventional OCUs: shared pool, no bypassing (Figure 2).

    Every source operand is fetched from the RF; each OCU's single port
    serializes its fetches; results are written back to the RF through
    the engine's write queue, and the scoreboard releases only when the
    bank accepts the write.
    """

    def __init__(self, engine, num_units: int):
        if num_units < 1:
            raise SimulationError(f"num_units must be >= 1, got {num_units}")
        self.engine = engine
        self.num_units = num_units
        self._occupied: Dict[Tuple[int, int], InflightInstruction] = {}
        # Entries currently collecting (i.e. consuming an OCU).
        self._collecting: List[InflightInstruction] = []

    # -- issue ----------------------------------------------------------

    def can_accept(self, warp_id: int) -> bool:
        return len(self._collecting) < self.num_units

    def insert(self, entry: InflightInstruction) -> None:
        if not self.can_accept(entry.warp_id):
            raise SimulationError("insert called with no free OCU")
        entry.pending_slots = list(range(len(entry.inst.sources)))
        self._occupied[entry.key] = entry
        self._collecting.append(entry)

    # -- collection ------------------------------------------------------

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        requests = []
        for entry in self._collecting:
            if not entry.pending_slots:
                continue
            slot = entry.pending_slots[0]
            register_id = entry.inst.sources[slot].id
            requests.append(
                AccessRequest(
                    bank=self.engine.regfile.bank_of(entry.warp_id, register_id),
                    warp_id=entry.warp_id,
                    register_id=register_id,
                    tag=(entry.key, slot),
                    age=entry.issue_cycle,
                )
            )
        return requests

    def deliver(self, tag: object, value: int) -> None:
        key, slot = tag
        entry = self._occupied.get(key)
        if entry is None or not entry.pending_slots or entry.pending_slots[0] != slot:
            raise SimulationError(f"unexpected operand delivery {tag!r}")
        entry.pending_slots.pop(0)
        entry.operand_values[slot] = value

    def ready_entries(self) -> List[InflightInstruction]:
        return [e for e in self._collecting if e.operands_ready]

    def on_dispatch(self, entry: InflightInstruction) -> None:
        self._collecting.remove(entry)

    # -- writeback --------------------------------------------------------

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        self._occupied.pop(entry.key, None)
        if (value is None or entry.inst.dest is None
                or entry.inst.dest == SINK_REGISTER):
            # Predicate-only results ($o127 sink) never touch the banks.
            self.engine.release_scoreboard(entry)
            return
        # Conventional path: result goes to the RF; the scoreboard holds
        # until the bank accepts the write.
        self.engine.enqueue_rf_write(entry, value, release_on_grant=True)
