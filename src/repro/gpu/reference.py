"""A functional reference executor.

Executes a kernel trace sequentially, warp by warp, with no pipeline at
all — just architectural semantics.  Because warps touch disjoint memory
windows (see :meth:`MemoryModel.thread_address`), this produces the
ground-truth final register and memory images any correct timing model
must match; the property tests compare every design against it to prove
that operand bypassing never changes results (paper SS IV-A's claim that
forwarding is semantics-preserving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import SimulationError
from ..isa import Instruction, OpClass
from ..isa.registers import SINK_REGISTER
from ..kernels.trace import KernelTrace
from .memory import MemoryModel
from .regfile import BankedRegisterFile


@dataclass(frozen=True)
class ReferenceResult:
    """Ground-truth architectural state after a kernel trace.

    ``committed`` is the architectural commit stream — one
    ``(warp_id, trace_index, opcode_name)`` triple per dynamic
    instruction, in program order per warp.  A timing model is
    equivalent iff it retires exactly this multiset (predicated-off
    instructions still commit: they consume a slot without producing a
    value), which is what the differential-oracle harness checks
    against the engine's ``commit`` trace events.
    """

    registers: Dict[Tuple[int, int], int]
    memory: Dict[int, int]
    committed: Tuple[Tuple[int, int, str], ...] = ()

    @property
    def instructions(self) -> int:
        """Dynamic instruction count (length of the commit stream)."""
        return len(self.committed)

    def commits_by_warp(self) -> Dict[int, List[Tuple[int, str]]]:
        """The commit stream regrouped per warp, in program order.

        Keys are warp ids; values are ``(trace_index, opcode_name)``
        lists — the shape the differential harness compares engine
        commit events against.
        """
        grouped: Dict[int, List[Tuple[int, str]]] = {}
        for warp_id, index, opcode_name in self.committed:
            grouped.setdefault(warp_id, []).append((index, opcode_name))
        return grouped


def execute_reference(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
) -> ReferenceResult:
    """Run ``trace`` functionally and return the final state.

    Register reads of never-written registers return the same
    deterministic launch-time values the timing model uses, so images
    are directly comparable.
    """
    config = config or GPUConfig()
    memory = MemoryModel(config, seed=memory_seed)
    if preload:
        for address, value in preload.items():
            memory.store(address, value)
    registers: Dict[Tuple[int, int], int] = {}
    predicates: Dict[Tuple[int, int], bool] = {}
    committed: List[Tuple[int, int, str]] = []

    def read_reg(warp_id: int, register_id: int) -> int:
        key = (warp_id, register_id)
        if key not in registers:
            registers[key] = BankedRegisterFile._initial_value(
                warp_id, register_id
            )
        return registers[key]

    for warp in trace:
        for index, inst in enumerate(warp):
            committed.append((warp.warp_id, index, inst.opcode.name))
            if inst.predicate is not None:
                flag = predicates.get((warp.warp_id, inst.predicate.id),
                                      False)
                if inst.predicate.negated:
                    flag = not flag
                if not flag:
                    continue  # predicated off
            operands = [read_reg(warp.warp_id, src.id) for src in inst.sources]
            while len(operands) < 3:
                operands.append(inst.immediate or 0)
            value = _execute_one(inst, warp.warp_id, operands, memory)
            if value is None:
                continue
            if inst.pred_dest is not None:
                predicates[(warp.warp_id, inst.pred_dest.id)] = bool(value)
            if inst.dest is not None and inst.dest != SINK_REGISTER:
                registers[(warp.warp_id, inst.dest.id)] = value & 0xFFFFFFFF

    return ReferenceResult(registers=registers, memory=memory.image_snapshot(),
                           committed=tuple(committed))


def _execute_one(
    inst: Instruction, warp_id: int, operands, memory: MemoryModel
) -> Optional[int]:
    if inst.is_load:
        return memory.load(memory.thread_address(warp_id, operands[0]))
    if inst.is_store:
        memory.store(memory.thread_address(warp_id, operands[0]), operands[1])
        return None
    if inst.is_control or inst.op_class is OpClass.NOP:
        return None
    if inst.dest is None:
        return None
    if inst.opcode.semantic is None:
        raise SimulationError(f"no semantics for {inst.opcode.name}")
    return inst.opcode.semantic(operands[0], operands[1], operands[2])
