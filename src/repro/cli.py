"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — benchmarks and experiments available
  (``--designs`` adds the design registry).
* ``run BENCH [--design D]``    — simulate one benchmark, print metrics.
* ``sweep [BENCH ...]``         — run a benchmark x design x IW grid in
  parallel (``--jobs``) with a persistent on-disk run cache
  (``--cache-dir`` / ``--no-cache``) and fault-tolerant execution
  (``--keep-going`` / ``--retries`` / ``--timeout``); a partial sweep
  under ``--keep-going`` exits with status 3.
* ``trace BENCH [--design D]``  — simulate one benchmark with a
  cycle-level :class:`~repro.stats.trace.TraceRecorder` attached,
  print the per-stage event rollup, and optionally export the events
  (``--out`` + ``--format chrome|jsonl|csv``) for ``chrome://tracing``
  or downstream tooling.
* ``serve [--port P]``          — run the asyncio sweep service: an
  always-on server that accepts sweep jobs over newline-delimited
  JSON, deduplicates identical in-flight points across clients
  (single-flight on the run-cache key), and batches new work into
  the cached, fault-tolerant grid engine.  Production knobs:
  ``--max-queued`` / ``--max-inflight`` shed load with ``overloaded``
  responses, ``--journal`` enables crash-safe recovery of in-flight
  jobs, and SIGTERM (or a drain-mode shutdown request) drains
  gracefully within ``--drain-timeout`` seconds.
* ``loadgen [--clients N]``     — drive a running ``serve`` with N
  concurrent clients requesting an identical grid (cold pass + warm
  pass), print throughput/latency, and optionally write the
  ``BENCH_service.json`` report (``--bench-out``); ``--expect-dedup``
  turns the single-flight claims into exit-code assertions for CI.
* ``fuzz``                      — differential fuzzing: seed-driven
  random kernels (``repro.fuzz``) run through every registered design
  — single-SM and, with ``--sms N``, device-scale — and diffed
  against the functional reference; the first mismatch is shrunk to a
  minimal repro, written to ``--corpus-dir`` as a JSONL trace-case,
  and exits with status 4.  ``--inject-bug KIND`` fuzzes a
  deliberately broken design alongside (the harness's self-test).
* ``trace-import FILE``         — run an external JSONL trace-case
  (the documented corpus format, see
  :data:`repro.observe.schema.TRACE_CASE_SCHEMA`) through the normal
  launch path and print its counters; ``--verify`` additionally diffs
  the run against the reference (mismatch exits 4).
* ``experiment ID``             — regenerate a paper table/figure.
* ``ablation NAME``             — run one of the ablation studies.
* ``compile FILE``              — assemble + classify a kernel file,
  printing the BOW-WR hints (like ``examples/compiler_walkthrough.py``
  but for your own code).
* ``chaos-serve``               — service-layer chaos drill: SIGKILL a
  serving process mid-sweep, restart it over the same cache/journal,
  and assert the recovery invariants (zero duplicated simulations,
  dedup still holds), plus overload-shedding and graceful-drain
  checks (see :mod:`repro.testing.chaos_service`).
* ``figures``                   — render the registered publication
  figures (:mod:`repro.analysis`) from sweep telemetry
  (``--telemetry``, repeatable), a trace export (``--trace``), and/or
  bench reports (``--bench``, repeatable) into ``--out`` as
  Vega-Lite ``<name>.vl.json`` specs plus backing ``<name>.csv``
  tables; ``--list`` prints the registry, ``--only`` picks figures.

``sweep --telemetry FILE`` additionally streams one JSONL record per
resolved grid point (wall time, attempts, cache provenance) plus a
summary — the schema is checked in at
:data:`repro.observe.schema.TELEMETRY_SCHEMA`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOW (MICRO 2020) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list benchmarks and experiments")
    list_cmd.add_argument("--designs", action="store_true",
                          help="also list the registered designs")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark")
    run.add_argument("--design", default="bow",
                     help="a registered design name "
                          "(see `repro list --designs`; default: bow)")
    run.add_argument("--window", type=int, default=3)
    run.add_argument("--warps", type=int, default=16)
    run.add_argument("--scale", type=float, default=0.25)
    run.add_argument("--seed", type=int, default=7,
                     help="memory-latency seed (default matches the "
                          "experiment drivers)")
    run.add_argument("--sms", type=int, default=None, metavar="N",
                     help="simulate the launch across N SMs and report "
                          "device-level numbers (default: the design's "
                          "registry default, see `repro list --designs`)")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker threads dispatching the per-SM engines "
                          "for --sms (results are identical at any job "
                          "count; default: 1)")
    run.add_argument("--no-fast-forward", action="store_true",
                     help="tick the engine cycle-by-cycle instead of "
                          "jumping provably idle spans (results are "
                          "bit-identical; this is the diagnostic kill "
                          "switch, and it bypasses the run caches)")

    sweep = sub.add_parser(
        "sweep", help="run a benchmark x design x IW grid, cached")
    sweep.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       help="benchmarks to sweep (default: the full suite)")
    sweep.add_argument("--designs", default="baseline,bow,bow-wr",
                       help="comma-separated design list")
    sweep.add_argument("--windows", default="3",
                       help="comma-separated instruction windows")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial)")
    sweep.add_argument("--warps", type=int, default=16)
    sweep.add_argument("--scale", type=float, default=0.25)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--sms", type=int, default=None, metavar="N",
                       help="partition every grid point across N SMs "
                            "(device-scale sweep; default: 1 SM)")
    sweep.add_argument("--cache-dir", default=None,
                       help="run-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-bow/runs)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk run cache")
    sweep.add_argument("--expect-warm", action="store_true",
                       help="fail unless every run is a cache/memo hit "
                            "(CI warm-cache check)")
    sweep.add_argument("--expect-sims", type=int, default=None,
                       metavar="N",
                       help="fail unless exactly N run(s) had to be "
                            "simulated (CI healing check)")
    sweep.add_argument("--keep-going", action="store_true",
                       help="report failed grid points and continue "
                            "instead of aborting the sweep (partial "
                            "results exit with status 3)")
    sweep.add_argument("--retries", type=int, default=None, metavar="N",
                       help="attempts per point before it is recorded "
                            "as failed (default: 3 for transient "
                            "errors, 1 for permanent ones)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point wall-clock budget; over-budget "
                            "points are retried, then recorded as "
                            "failed")
    sweep.add_argument("--telemetry", default=None, metavar="FILE",
                       help="stream per-point telemetry (JSONL) to FILE "
                            "while the sweep runs")

    trace = sub.add_parser(
        "trace", help="simulate one benchmark with cycle-level tracing")
    trace.add_argument("benchmark")
    trace.add_argument("--design", default="bow",
                       help="a registered design name "
                            "(see `repro list --designs`; default: bow)")
    trace.add_argument("--window", type=int, default=3)
    trace.add_argument("--warps", type=int, default=16)
    trace.add_argument("--scale", type=float, default=0.25)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--capacity", type=int, default=65536,
                       help="ring-buffer size; the oldest events beyond "
                            "it are dropped (aggregates still cover them)")
    trace.add_argument("--kinds", default=None,
                       help="comma-separated event kinds to record "
                            "(default: all; see repro.stats.trace."
                            "EventKind)")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="export the retained events to FILE")
    trace.add_argument("--format", default="chrome",
                       choices=["chrome", "jsonl", "csv"],
                       help="export format for --out (default: chrome "
                            "trace-event JSON for chrome://tracing)")

    serve = sub.add_parser(
        "serve", help="run the single-flight sweep service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337,
                       help="TCP port to listen on (0 picks an "
                            "ephemeral port; default: 8337)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes inside each batched grid "
                            "call (default: 1)")
    serve.add_argument("--batch-window", type=float, default=None,
                       metavar="SECONDS",
                       help="how long the dispatcher lingers after new "
                            "work arrives so concurrent submissions "
                            "share one batch (default: 0.02)")
    serve.add_argument("--max-batch", type=int, default=None, metavar="N",
                       help="largest number of points dispatched as one "
                            "grid call (default: 64)")
    serve.add_argument("--cache-dir", default=None,
                       help="run-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-bow/runs)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without an on-disk run cache")
    serve.add_argument("--retries", type=int, default=None, metavar="N",
                       help="attempts per point before its waiters see "
                            "a failure (default: the sweep policy)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point wall-clock budget inside batches")
    serve.add_argument("--telemetry-dir", default=None, metavar="DIR",
                       help="stream per-job telemetry to DIR/job-NNNN"
                            ".jsonl plus a service-wide service.jsonl "
                            "(appended across restarts)")
    serve.add_argument("--journal", default=None, metavar="FILE",
                       help="crash-safe write-ahead job journal; on "
                            "restart, scheduled-but-unresolved points "
                            "are recovered against the warm cache")
    serve.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="admission bound on queued points; jobs "
                            "that would exceed it are shed with an "
                            "'overloaded' response (default: unbounded)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admission bound on concurrently active "
                            "jobs (default: unbounded)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hard bound on graceful drain (SIGTERM or "
                            "drain-mode shutdown; default: 30)")

    loadgen = sub.add_parser(
        "loadgen", help="benchmark a running sweep service")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8337)
    loadgen.add_argument("--clients", type=int, default=8,
                         help="concurrent client connections per pass "
                              "(default: 8)")
    loadgen.add_argument("--points", type=int, default=None, metavar="M",
                         help="cap each client's request at the first M "
                              "points of the expanded grid")
    loadgen.add_argument("--benchmarks", default="BFS,NW",
                         help="comma-separated benchmark list")
    loadgen.add_argument("--designs", default="baseline,bow",
                         help="comma-separated design list")
    loadgen.add_argument("--windows", default="3",
                         help="comma-separated instruction windows")
    loadgen.add_argument("--warps", type=int, default=4)
    loadgen.add_argument("--scale", type=float, default=0.1)
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--sms", type=int, default=None, metavar="N",
                         help="request device-scale points across N SMs")
    loadgen.add_argument("--priority", type=int, default=0)
    loadgen.add_argument("--bench-out", default=None, metavar="FILE",
                         help="write the JSON throughput/latency report "
                              "to FILE (the BENCH_service.json artifact)")
    loadgen.add_argument("--expect-dedup", action="store_true",
                         help="exit 1 unless the cold pass executed each "
                              "unique point exactly once and the warm "
                              "pass simulated nothing")
    loadgen.add_argument("--shutdown", action="store_true",
                         help="ask the server to shut down after the "
                              "final pass (CI cleanup)")

    fuzz = sub.add_parser(
        "fuzz", help="differential-fuzz every design vs the reference")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first case seed; case i uses seed+i "
                           "(default: 0)")
    fuzz.add_argument("--cases", type=int, default=50,
                      help="generated cases per campaign (default: 50)")
    fuzz.add_argument("--designs", default=None,
                      help="comma-separated design list (default: every "
                           "registered design)")
    fuzz.add_argument("--sms", type=int, default=1, metavar="N",
                      help="additionally run every design at device "
                           "scale across N SMs (default: 1 = single-SM "
                           "only)")
    fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                      help="write the minimized repro of a mismatch to "
                           "DIR as a JSONL trace-case")
    fuzz.add_argument("--max-shrink", type=int, default=500, metavar="N",
                      help="shrinker budget in predicate evaluations "
                           "(default: 500)")
    fuzz.add_argument("--inject-bug", default=None, metavar="KIND",
                      help="register a deliberately broken design and "
                           "fuzz it alongside (see repro.testing.bugs."
                           "BUG_KINDS); the campaign must catch it")

    trace_import = sub.add_parser(
        "trace-import",
        help="run an external JSONL trace-case through the launch path")
    trace_import.add_argument("file", help="a JSONL trace-case (the "
                                           "corpus / ingestion format)")
    trace_import.add_argument("--design", default=None,
                              help="design to run (default: the case's "
                                   "recorded designs, else baseline)")
    trace_import.add_argument("--sms", type=int, default=None, metavar="N",
                              help="override the case's SM count")
    trace_import.add_argument("--window", type=int, default=None,
                              help="override the case's instruction "
                                   "window")
    trace_import.add_argument("--verify", action="store_true",
                              help="also diff the run against the "
                                   "functional reference; a mismatch "
                                   "exits with status 4")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("artifact")
    experiment.add_argument("--full", action="store_true",
                            help="32-warp configuration")
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes for the timing grids")

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument(
        "name",
        choices=["scheduler", "eviction", "capacity", "window", "rf-size"],
    )
    ablation.add_argument("--benchmark", default="SAD")

    compile_cmd = sub.add_parser("compile",
                                 help="assemble + classify a kernel file")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("--window", type=int, default=3)

    chaos_serve = sub.add_parser(
        "chaos-serve",
        help="service-layer chaos drill: kill/restart recovery, "
             "overload shedding, graceful drain")
    chaos_serve.add_argument("--keep", action="store_true",
                             help="keep the scratch directory (journal, "
                                  "cache, telemetry) for inspection")
    chaos_serve.add_argument("--scenario", default="all",
                             choices=["all", "recovery", "overload"],
                             help="which drill to run (default: all)")
    chaos_serve.add_argument("--root", default=None, metavar="DIR",
                             help="pin the scratch directory (implies "
                                  "--keep; CI points this at the "
                                  "artifact path)")

    figures = sub.add_parser(
        "figures",
        help="render publication figures from telemetry/trace/bench files")
    figures.add_argument("--telemetry", action="append", default=[],
                         metavar="FILE",
                         help="sweep telemetry JSONL stream (repeat to "
                              "combine sweeps, e.g. one per --sms "
                              "setting); feeds the points/failures "
                              "figures")
    figures.add_argument("--trace", default=None, metavar="FILE",
                         help="trace event export from `repro trace "
                              "--out` (JSONL or CSV; inferred from the "
                              "extension); feeds the stall/BOC figures")
    figures.add_argument("--bench", action="append", default=[],
                         metavar="FILE",
                         help="BENCH_*.json report (repeatable); feeds "
                              "the throughput figures")
    figures.add_argument("--out", default="reports/figures", metavar="DIR",
                         help="output directory (default: reports/"
                              "figures)")
    figures.add_argument("--only", default=None,
                         help="comma-separated figure names to render "
                              "(default: every figure the inputs can "
                              "feed); missing inputs become errors")
    figures.add_argument("--list", action="store_true", dest="list_figures",
                         help="print the figure registry and exit")
    figures.add_argument("--format", default="both",
                         choices=["both", "spec", "csv"],
                         help="emit the Vega-Lite spec, the backing CSV, "
                              "or both (default: both)")
    return parser


def _cmd_list(args) -> int:
    from .experiments.registry import EXPERIMENTS
    from .kernels.suites import BENCHMARKS

    print("Benchmarks (paper Table III):")
    for name, profile in BENCHMARKS.items():
        print(f"  {name:12s} {profile.suite:10s} {profile.description}")
    print("\nExperiments (paper artifacts):")
    for key, (description, _) in EXPERIMENTS.items():
        print(f"  {key:8s} {description}")
    if args.designs:
        from .core.designs import design_specs

        print("\nDesigns (registry):")
        for spec in design_specs():
            flags = ",".join(
                flag for flag, on in
                (("hinted", spec.hinted), ("windowless", spec.windowless))
                if on
            ) or "-"
            print(f"  {spec.name:12s} {flags:18s} sms={spec.num_sms:<3d} "
                  f"{spec.description}")
        print("  (sms=N is the design's default SM count; override with "
              "`repro run --sms`)")
    return 0


def _cmd_run(args) -> int:
    from .energy import EnergyModel
    from .experiments.runner import (RunScale, resolve_num_sms, run_design,
                                     using_device_dispatch,
                                     using_fast_forward, validate_design)
    from .stats.report import format_percent

    validate_design(args.design)
    num_sms = resolve_num_sms(args.sms, args.design)
    scale = RunScale(num_warps=args.warps, trace_scale=args.scale,
                     memory_seed=args.seed, num_sms=num_sms)
    with using_device_dispatch(args.jobs), \
            using_fast_forward(not args.no_fast_forward):
        base = run_design(args.benchmark, "baseline", scale=scale)
        result = run_design(args.benchmark, args.design,
                            window_size=args.window, scale=scale)
    counters = result.counters
    device = f", {num_sms} SMs" if num_sms > 1 else ""
    print(f"{args.benchmark.upper()} on {args.design} "
          f"(IW={args.window}{device}):")
    print(f"  cycles            {counters.cycles}")
    if num_sms > 1 or not counters.cycles:
        # Device rollups sum the counter across SMs while cycles is the
        # slowest SM's finish time, so a fraction would mislead.
        print(f"  fast-forwarded    {counters.fast_forwarded_cycles} cycles")
    else:
        print(f"  fast-forwarded    {counters.fast_forwarded_cycles} cycles "
              f"({format_percent(counters.fast_forwarded_cycles / counters.cycles)})")
    ipc_label = "device IPC" if num_sms > 1 else "IPC"
    print(f"  {ipc_label:17s} {result.ipc:.3f} "
          f"({format_percent(result.ipc / base.ipc - 1.0)} vs baseline)")
    print(f"  RF reads/writes   {counters.rf_reads} / {counters.rf_writes}")
    print(f"  reads bypassed    {format_percent(counters.read_bypass_rate)}")
    print(f"  writes bypassed   {format_percent(counters.write_bypass_rate)}")
    savings = EnergyModel().savings(counters, base.counters)
    print(f"  RF dynamic energy {format_percent(savings)} saved")
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.cache import RunCache, default_cache_dir
    from .experiments.grid import run_grid
    from .experiments.resilience import DEFAULT_POLICY, RetryPolicy
    from .experiments.runner import RunScale, resolve_num_sms
    from .kernels.suites import benchmark_names

    benchmarks = tuple(args.benchmarks) or benchmark_names()
    designs = tuple(
        name.strip() for name in args.designs.split(",") if name.strip()
    )
    try:
        windows = tuple(
            int(item) for item in args.windows.split(",") if item.strip()
        )
    except ValueError:
        print(f"error: --windows expects comma-separated integers, "
              f"got {args.windows!r}", file=sys.stderr)
        return 2
    if args.retries is not None and args.retries < 1:
        print("error: --retries must be >= 1", file=sys.stderr)
        return 2
    scale = RunScale(num_warps=args.warps, trace_scale=args.scale,
                     memory_seed=args.seed,
                     num_sms=resolve_num_sms(args.sms))
    if args.no_cache:
        cache = None
    else:
        cache = RunCache(args.cache_dir or default_cache_dir())
    retry = RetryPolicy(
        max_attempts=(DEFAULT_POLICY.max_attempts if args.retries is None
                      else args.retries),
        timeout=args.timeout,
    )
    telemetry = None
    if args.telemetry:
        from .observe.telemetry import TelemetryWriter
        telemetry = TelemetryWriter(args.telemetry)
    try:
        grid = run_grid(
            benchmarks, designs, windows, scale=scale, jobs=args.jobs,
            cache=cache, retry=retry, strict=not args.keep_going,
            progress=lambda line: print(line, file=sys.stderr),
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    if args.telemetry:
        print(f"telemetry: {telemetry.records} record(s) -> "
              f"{args.telemetry}", file=sys.stderr)
        print(f"(render charts from it: python -m repro figures "
              f"--telemetry {args.telemetry})", file=sys.stderr)
    print(grid.format())
    # Report every diagnostic before deciding the exit code: a partial
    # grid always exits 3 (the documented --keep-going contract), even
    # when an --expect-warm/--expect-sims expectation also failed —
    # failed points are the more fundamental problem, and CI scripts
    # key on the documented code.
    expectation_failed = False
    if args.expect_warm and grid.simulated:
        print(f"error: expected a warm cache but {grid.simulated} run(s) "
              f"had to be simulated", file=sys.stderr)
        expectation_failed = True
    if args.expect_sims is not None and grid.simulated != args.expect_sims:
        print(f"error: expected exactly {args.expect_sims} simulated "
              f"run(s) but {grid.simulated} were", file=sys.stderr)
        expectation_failed = True
    if grid.failures:
        print(f"warning: {len(grid.failures)} grid point(s) failed; "
              f"see the failure table above", file=sys.stderr)
        return 3
    return 1 if expectation_failed else 0


def _cmd_trace(args) -> int:
    from .core.bow_sm import simulate_design
    from .experiments.runner import (RunScale, benchmark_trace,
                                     design_spec)
    from .observe.export import (write_chrome_trace, write_events_csv,
                                 write_events_jsonl)
    from .stats.trace import EventKind, TraceRecorder

    spec = design_spec(args.design)
    if args.capacity < 1:
        print("error: --capacity must be >= 1", file=sys.stderr)
        return 2
    kinds = None
    if args.kinds:
        try:
            kinds = frozenset(
                EventKind(item.strip())
                for item in args.kinds.split(",") if item.strip()
            )
        except ValueError:
            known = ", ".join(kind.value for kind in EventKind)
            print(f"error: --kinds expects a comma-separated subset of: "
                  f"{known}", file=sys.stderr)
            return 2
    scale = RunScale(num_warps=args.warps, trace_scale=args.scale,
                     memory_seed=args.seed)
    trace = benchmark_trace(
        args.benchmark, scale,
        window_size=args.window if spec.hinted else None,
    )
    recorder = TraceRecorder(capacity=args.capacity, kinds=kinds)
    result = simulate_design(
        args.design, trace, window_size=args.window,
        memory_seed=args.seed, recorder=recorder,
    )
    title = (f"{args.benchmark.upper()} on {args.design} "
             f"(IW={args.window}): {result.counters.cycles} cycles, "
             f"IPC {result.ipc:.3f}")
    print(title)
    print(recorder.format())
    if args.out:
        if args.format == "chrome":
            write_chrome_trace(
                recorder, args.out,
                process_name=f"{args.benchmark.upper()}/{args.design}")
        elif args.format == "jsonl":
            write_events_jsonl(recorder, args.out)
        else:
            write_events_csv(recorder, args.out)
        print(f"wrote {len(recorder.events)} of {recorder.emitted} "
              f"event(s) ({args.format}) -> {args.out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .experiments.cache import RunCache, default_cache_dir
    from .experiments.resilience import DEFAULT_POLICY, RetryPolicy
    from .observe.telemetry import TelemetryWriter
    from .service import SweepService, serve

    if args.retries is not None and args.retries < 1:
        print("error: --retries must be >= 1", file=sys.stderr)
        return 2
    if args.no_cache:
        cache = None
    else:
        cache = RunCache(args.cache_dir or default_cache_dir())
    retry = RetryPolicy(
        max_attempts=(DEFAULT_POLICY.max_attempts if args.retries is None
                      else args.retries),
        timeout=args.timeout,
    )
    telemetry = None
    if args.telemetry_dir:
        import os

        os.makedirs(args.telemetry_dir, exist_ok=True)
        # append=True keeps the service-wide stream continuous across
        # restarts (a recovered incarnation must not erase the history
        # the post-mortem needs).
        telemetry = TelemetryWriter(
            os.path.join(args.telemetry_dir, "service.jsonl"), append=True)
    kwargs = {}
    if args.batch_window is not None:
        kwargs["batch_window"] = args.batch_window
    if args.max_batch is not None:
        kwargs["max_batch"] = args.max_batch
    service = SweepService(
        cache=cache, jobs=args.jobs, retry=retry, telemetry=telemetry,
        telemetry_dir=args.telemetry_dir, journal=args.journal or None,
        max_queued_points=args.max_queued,
        max_inflight_jobs=args.max_inflight, **kwargs,
    )
    serve_kwargs = {}
    if args.drain_timeout is not None:
        serve_kwargs["drain_timeout"] = args.drain_timeout
    try:
        asyncio.run(serve(
            args.host, args.port, service=service,
            announce=lambda line: print(line, file=sys.stderr, flush=True),
            **serve_kwargs,
        ))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        if telemetry is not None:
            telemetry.close()
    return 0


def _cmd_loadgen(args) -> int:
    from .experiments.runner import RunScale, resolve_num_sms
    from .service import format_report, run_loadgen

    benchmarks = tuple(
        name.strip() for name in args.benchmarks.split(",") if name.strip()
    )
    designs = tuple(
        name.strip() for name in args.designs.split(",") if name.strip()
    )
    try:
        windows = tuple(
            int(item) for item in args.windows.split(",") if item.strip()
        )
    except ValueError:
        print(f"error: --windows expects comma-separated integers, "
              f"got {args.windows!r}", file=sys.stderr)
        return 2
    if args.clients < 1:
        print("error: --clients must be >= 1", file=sys.stderr)
        return 2
    if args.points is not None and args.points < 1:
        print("error: --points must be >= 1", file=sys.stderr)
        return 2
    scale = RunScale(num_warps=args.warps, trace_scale=args.scale,
                     memory_seed=args.seed,
                     num_sms=resolve_num_sms(args.sms))
    report = run_loadgen(
        args.host, args.port, clients=args.clients, benchmarks=benchmarks,
        designs=designs, windows=windows, scale=scale,
        max_points=args.points, priority=args.priority,
        shutdown=args.shutdown, report_path=args.bench_out,
    )
    print(format_report(report))
    if args.bench_out:
        print(f"report -> {args.bench_out}", file=sys.stderr)
    if args.expect_dedup and not report["single_flight"]["dedup_ok"]:
        flight = report["single_flight"]
        print(f"error: single-flight dedup violated: cold executed "
              f"{flight['cold_resolved_once']} of "
              f"{report['unique_points']} unique point(s) "
              f"({flight['cold_simulated']} simulated), warm simulated "
              f"{flight['warm_simulated']}", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import run_fuzz
    from .testing.bugs import BUG_KINDS

    if args.cases < 1:
        print("error: --cases must be >= 1", file=sys.stderr)
        return 2
    if args.sms < 1:
        print("error: --sms must be >= 1", file=sys.stderr)
        return 2
    if args.max_shrink < 0:
        print("error: --max-shrink must be >= 0", file=sys.stderr)
        return 2
    if args.inject_bug is not None and args.inject_bug not in BUG_KINDS:
        print(f"error: --inject-bug expects one of: "
              f"{', '.join(BUG_KINDS)}", file=sys.stderr)
        return 2
    designs = None
    if args.designs:
        designs = tuple(
            name.strip() for name in args.designs.split(",") if name.strip()
        )
        if not designs:
            print("error: --designs expects a comma-separated design "
                  "list", file=sys.stderr)
            return 2
    report = run_fuzz(
        seed=args.seed, cases=args.cases, designs=designs, sms=args.sms,
        corpus_dir=args.corpus_dir, max_shrink=args.max_shrink,
        inject_bug=args.inject_bug,
        log=lambda line: print(line, file=sys.stderr),
    )
    if report.ok:
        print(f"fuzz: {report.cases} case(s) x "
              f"{len(report.designs)} design(s) = {report.runs} run(s), "
              f"no mismatches (seeds {args.seed}.."
              f"{args.seed + report.cases - 1})")
        return 0
    failure = report.failure
    print(f"fuzz: MISMATCH at seed {failure.seed} on "
          f"{failure.design!r} (num_sms={failure.num_sms}) after "
          f"{report.runs} run(s):", file=sys.stderr)
    if failure.fast_forward_only:
        print("  per-cycle re-run matches the reference: the divergence "
              "is in the fast-forward machinery, not the design model",
              file=sys.stderr)
    for mismatch in failure.mismatches:
        print(f"  {mismatch}", file=sys.stderr)
    shrink = failure.shrink
    print(f"  minimized to {shrink.case.trace.total_instructions} "
          f"instruction(s) / {shrink.case.trace.num_warps} warp(s) "
          f"in {shrink.attempts} attempt(s) "
          f"(-{shrink.removed_instructions} insts, "
          f"-{shrink.removed_warps} warps)", file=sys.stderr)
    if failure.corpus_path is not None:
        print(f"  repro -> {failure.corpus_path}", file=sys.stderr)
    else:
        print("  (pass --corpus-dir to save the minimized repro)",
              file=sys.stderr)
    return 4


def _cmd_trace_import(args) -> int:
    from dataclasses import replace

    from .core.bow_sm import simulate_design
    from .fuzz.differential import compare_case
    from .gpu.device import simulate_device
    from .kernels.external import load_case

    if args.sms is not None and args.sms < 1:
        print("error: --sms must be >= 1", file=sys.stderr)
        return 2
    if args.window is not None and args.window < 0:
        print("error: --window must be >= 0", file=sys.stderr)
        return 2
    case = load_case(args.file)
    if args.sms is not None:
        case = replace(case, num_sms=args.sms)
    if args.window is not None:
        case = replace(case, window=args.window)
    if args.design:
        designs = (args.design,)
    else:
        designs = case.designs or ("baseline",)

    failed = False
    for design in designs:
        if case.num_sms == 1:
            result = simulate_design(
                design, case.trace, window_size=case.window,
                memory_seed=case.memory_seed)
        else:
            result = simulate_device(
                design, case.trace, num_sms=case.num_sms,
                window_size=case.window, memory_seed=case.memory_seed,
                jobs=1, executor="serial",
            ).to_simulation_result()
        print(f"{case.name} on {design} (IW={case.window}, "
              f"{case.num_sms} SM(s), {case.trace.num_warps} warp(s)):")
        print(f"  cycles       {result.counters.cycles}")
        print(f"  instructions {result.counters.instructions}")
        print(f"  IPC          {result.ipc:.3f}")
        if args.verify:
            mismatches = compare_case(case, design)
            if mismatches:
                failed = True
                for mismatch in mismatches:
                    print(f"  MISMATCH {mismatch}", file=sys.stderr)
            else:
                print("  verified against the functional reference")
    return 4 if failed else 0


def _cmd_figures(args) -> int:
    from .analysis import FIGURES, build_inputs, render_figures

    if args.list_figures:
        print("Figures (repro.analysis registry):")
        for name, entry in FIGURES.items():
            requires = "+".join(entry.requires)
            paper = f"  [{entry.paper}]" if entry.paper else ""
            print(f"  {name:20s} {requires:14s} {entry.title}{paper}")
        return 0
    if not args.telemetry and not args.trace and not args.bench:
        print("error: give at least one input (--telemetry/--trace/"
              "--bench), or --list to see the registry", file=sys.stderr)
        return 2
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in only if name not in FIGURES]
        if unknown:
            print(f"error: unknown figure(s): {', '.join(unknown)} "
                  f"(see `repro figures --list`)", file=sys.stderr)
            return 2
    inputs = build_inputs(
        telemetry=args.telemetry, trace=args.trace, bench=args.bench,
    )
    for kind in ("points", "trace"):
        frame = inputs.get(kind)
        if frame is None or not frame.meta:
            continue
        salvaged = (frame.meta.get("corrupt_lines", 0)
                    + frame.meta.get("invalid_records", 0))
        if salvaged:
            print(f"warning: {kind}: skipped {salvaged} corrupt/invalid "
                  f"record(s)", file=sys.stderr)
    report = render_figures(
        inputs, args.out, only=only, format=args.format,
        log=lambda line: print(line, file=sys.stderr),
    )
    print(f"rendered {len(report.rendered)} figure(s) -> {args.out}"
          + (f" ({len(report.skipped)} skipped for missing inputs)"
             if report.skipped else ""))
    return 0 if report.rendered else 1


def _cmd_experiment(args) -> int:
    from .experiments.registry import run_experiment
    from .experiments.runner import FULL, QUICK

    print(run_experiment(args.artifact, scale=FULL if args.full else QUICK,
                         jobs=args.jobs))
    return 0


def _cmd_ablation(args) -> int:
    from .experiments import ablations

    if args.name == "scheduler":
        print(ablations.scheduler_ablation().format())
    elif args.name == "eviction":
        print(ablations.eviction_ablation().format())
    elif args.name == "capacity":
        print(ablations.capacity_sweep(args.benchmark).format())
    elif args.name == "window":
        print(ablations.window_sweep(args.benchmark).format())
    else:
        print(ablations.effective_rf_study().format())
    return 0


def _cmd_compile(args) -> int:
    from .compiler.writeback import classify_linear_writes
    from .isa import parse_program
    from .stats.report import format_table

    with open(args.file, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    decisions = {
        item.index: item for item in
        classify_linear_writes(program, args.window)
    }
    rows = []
    for index, inst in enumerate(program):
        item = decisions.get(index)
        rows.append([
            index,
            str(inst),
            item.writeback.value if item else "",
            "yes" if item and item.needs_rf else "",
        ])
    print(format_table(["#", "instruction", "destination", "RF write"],
                       rows, title=f"{args.file} (IW={args.window})"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "trace-import":
            return _cmd_trace_import(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "ablation":
            return _cmd_ablation(args)
        if args.command == "compile":
            return _cmd_compile(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "chaos-serve":
            from .testing import chaos_service

            return chaos_service.run(scenario=args.scenario,
                                     keep=args.keep, root=args.root)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
