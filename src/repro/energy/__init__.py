"""Energy and area models.

The paper derives its energy numbers from CACTI 7 (register bank and
BOC access energies, Table IV) and an RTL synthesis of the modified
interconnect.  We encode those published component costs as constants
and bill them against the event counters the simulator produces, which
reproduces the paper's normalized dynamic-energy results (Figure 13)
and overhead percentages.
"""

from .area import AreaModel, AreaReport
from .cacti import (
    BOC_PARAMS,
    INTERCONNECT_POWER_W,
    REGISTER_BANK_PARAMS,
    ComponentParams,
)
from .model import EnergyBreakdown, EnergyModel
from .power import RF_SHARE_OF_CHIP_POWER, PowerReport, power_report
from .static import (
    StaticBreakdown,
    StaticEnergyModel,
    TotalEnergyReport,
    total_energy,
)

__all__ = [
    "BOC_PARAMS",
    "REGISTER_BANK_PARAMS",
    "INTERCONNECT_POWER_W",
    "ComponentParams",
    "EnergyBreakdown",
    "EnergyModel",
    "AreaModel",
    "AreaReport",
    "StaticBreakdown",
    "StaticEnergyModel",
    "TotalEnergyReport",
    "total_energy",
    "PowerReport",
    "RF_SHARE_OF_CHIP_POWER",
    "power_report",
]
