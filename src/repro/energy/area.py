"""Area-overhead arithmetic (paper SS V-A, hardware overhead).

The paper synthesizes the modified network in 28 nm: the added circuitry
is below 0.04 mm^2 against a 1.72 mm^2 register bank — under 3% of one
bank, under 0.1% of the full RF, and (with the BOC storage included)
about 0.17% of total chip area.  This module reproduces that arithmetic
from the published component areas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BOWConfig, GPUConfig
from ..errors import ConfigError

#: Published 28 nm component areas (mm^2).
REGISTER_BANK_AREA_MM2 = 1.72
ADDED_NETWORK_AREA_MM2 = 0.04

#: Approximate GP102 die area (mm^2) for the total-chip percentage.
CHIP_AREA_MM2 = 471.0

#: Density of the multi-ported register-bank macro implied by Table IV:
#: 64 KB in 1.72 mm^2.  Used for bank-relative comparisons only.
_BANK_MM2_PER_BYTE = REGISTER_BANK_AREA_MM2 / (64 * 1024)

#: Density of a plain high-density single-ported 28 nm SRAM buffer
#: (~1 mm^2 per MB), used for the *added* BOC storage: the bypass
#: buffers are simple single-ported structures, not RF macros.  The
#: paper's 0.17%-of-chip claim is not reconstructible from its own
#: component areas; with this density our total lands well under 1% of
#: the die, preserving the claim's shape (see EXPERIMENTS.md).
_BUFFER_MM2_PER_BYTE = 1.0 / (1024 * 1024)


@dataclass(frozen=True)
class AreaReport:
    """Area overhead of one BOW design point.

    Attributes:
        boc_storage_mm2: added collector storage across one SM.
        network_mm2: modified crossbar/arbiter/bus circuitry per SM.
        rf_mm2: the SM's register-file array, for scale.
    """

    boc_storage_mm2: float
    network_mm2: float
    rf_mm2: float
    num_sms: int

    @property
    def per_sm_mm2(self) -> float:
        return self.boc_storage_mm2 + self.network_mm2

    @property
    def fraction_of_rf(self) -> float:
        return self.per_sm_mm2 / self.rf_mm2

    @property
    def network_fraction_of_bank(self) -> float:
        return self.network_mm2 / REGISTER_BANK_AREA_MM2

    @property
    def fraction_of_chip(self) -> float:
        return self.per_sm_mm2 * self.num_sms / CHIP_AREA_MM2


class AreaModel:
    """Computes the added area of a BOW design point."""

    def __init__(self, gpu: GPUConfig | None = None):
        self.gpu = gpu or GPUConfig()

    def report(self, bow: BOWConfig) -> AreaReport:
        """Area overhead of ``bow`` on this machine configuration.

        Only storage *added over* the conventional collectors counts:
        the baseline already provisions three operand entries per unit.
        """
        if not bow.enabled:
            raise ConfigError("area report is for enabled BOW designs")
        baseline_bytes = (
            3 * self.gpu.warp_register_bytes * self.gpu.num_operand_collectors
        )
        added_bytes = max(0, bow.total_boc_bytes(self.gpu) - baseline_bytes)
        return AreaReport(
            boc_storage_mm2=added_bytes * _BUFFER_MM2_PER_BYTE,
            network_mm2=ADDED_NETWORK_AREA_MM2,
            rf_mm2=self.gpu.register_file_bytes * _BANK_MM2_PER_BYTE,
            num_sms=self.gpu.num_sms,
        )
