"""Whole-chip power reporting (GPUWattch-style context).

The paper motivates BOW with Leng et al.'s estimate that the register
file draws ~18% of total GPU chip power.  This module turns one
simulation run into a chip-level power picture: per-SM RF dynamic and
leakage power from the Table IV components, scaled across SMs, with the
added BOW structures itemized — so a design's savings can be quoted
both RF-relative (the paper's Figure 13) and chip-relative.

A finding the paper's dynamic-only analysis does not surface: the
conservative 12-entry BOCs add ~2 W of chip-wide leakage, so at *low*
utilization the leakage overhead can exceed the dynamic savings; at
realistic occupancy dynamic savings dominate, and the half-size BOC —
halving that leakage — improves the chip-level number further.  This
strengthens the paper's own SS IV-C argument for smaller buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import BOWConfig, GPUConfig
from ..errors import SimulationError
from ..stats.counters import Counters
from ..stats.report import format_table
from .cacti import INTERCONNECT_POWER_W
from .model import EnergyModel
from .static import StaticEnergyModel

#: Leng et al. (GPUWattch): the RF's share of total GPU chip power.
RF_SHARE_OF_CHIP_POWER = 0.18


@dataclass(frozen=True)
class PowerReport:
    """Chip-level power picture of one run.

    All powers in watts, for the whole chip (``num_sms`` SMs running
    the same workload).
    """

    rf_dynamic_w: float
    rf_leakage_w: float
    boc_dynamic_w: float
    boc_leakage_w: float
    interconnect_w: float
    num_sms: int
    cycles: int

    @property
    def rf_total_w(self) -> float:
        return self.rf_dynamic_w + self.rf_leakage_w

    @property
    def added_total_w(self) -> float:
        return self.boc_dynamic_w + self.boc_leakage_w + self.interconnect_w

    @property
    def total_w(self) -> float:
        return self.rf_total_w + self.added_total_w

    def implied_chip_power_w(self, baseline_rf_w: float) -> float:
        """Whole-chip power implied by the RF's published share."""
        if baseline_rf_w <= 0:
            raise SimulationError("baseline RF power must be positive")
        return baseline_rf_w / RF_SHARE_OF_CHIP_POWER

    @property
    def total_energy_au(self) -> float:
        """RF-subsystem energy in power x cycles units.

        Comparable across runs at the same clock; energy (not average
        power) is the honest basis when a design also changes runtime —
        a faster run concentrates the same leakage into less time,
        *raising* its average power while lowering its energy.
        """
        return self.total_w * self.cycles

    def chip_level_savings(self, baseline: "PowerReport") -> float:
        """Fraction of *total chip* RF-subsystem-attributable energy saved.

        RF-relative savings scaled by the RF's 18% share of chip power
        — the end-to-end number a GPU architect would quote.  Computed
        over energy so runtime improvements are credited, not punished.
        """
        if baseline.total_energy_au <= 0:
            raise SimulationError("baseline energy must be positive")
        rf_relative = 1.0 - self.total_energy_au / baseline.total_energy_au
        return rf_relative * RF_SHARE_OF_CHIP_POWER

    def format(self) -> str:
        rows = [
            ["RF dynamic", f"{self.rf_dynamic_w:.3f} W"],
            ["RF leakage", f"{self.rf_leakage_w:.3f} W"],
            ["BOC dynamic", f"{self.boc_dynamic_w:.4f} W"],
            ["BOC leakage", f"{self.boc_leakage_w:.4f} W"],
            ["BOC network", f"{self.interconnect_w:.4f} W"],
            ["Total (RF subsystem)", f"{self.total_w:.3f} W"],
        ]
        return format_table(
            ["component", "power"], rows,
            title=f"RF-subsystem power, {self.num_sms} SMs",
        )


def power_report(
    counters: Counters,
    bow: Optional[BOWConfig] = None,
    gpu: Optional[GPUConfig] = None,
    clock_ghz: float = 1.0,
) -> PowerReport:
    """Chip-level power of one run.

    Average power = energy / time; time = cycles / clock.  The BOC
    network power is billed only for enabled BOW designs (the paper's
    33.2 mW per SM, scaled by actual collector activity vs the 50%
    write-activity assumption behind that figure).
    """
    gpu = gpu or GPUConfig()
    if counters.cycles <= 0:
        raise SimulationError("run has no cycles; cannot compute power")
    seconds = counters.cycles / (clock_ghz * 1e9)

    capacity = bow.effective_capacity if (bow and bow.enabled) else None
    dynamic = EnergyModel(boc_capacity_entries=capacity).breakdown(counters)
    static = StaticEnergyModel(gpu, clock_ghz).breakdown(counters, bow)

    per_sm_rf_dynamic = dynamic.rf_energy_pj * 1e-12 / seconds
    per_sm_boc_dynamic = dynamic.overhead_pj * 1e-12 / seconds
    per_sm_rf_leak = static.rf_leakage_pj * 1e-12 / seconds
    per_sm_boc_leak = static.boc_leakage_pj * 1e-12 / seconds

    interconnect = 0.0
    if bow is not None and bow.enabled:
        boc_accesses = counters.boc_reads + counters.boc_writes
        activity = boc_accesses / max(1, counters.cycles)
        interconnect = INTERCONNECT_POWER_W * min(2.0, activity / 0.5)

    return PowerReport(
        rf_dynamic_w=per_sm_rf_dynamic * gpu.num_sms,
        rf_leakage_w=per_sm_rf_leak * gpu.num_sms,
        boc_dynamic_w=per_sm_boc_dynamic * gpu.num_sms,
        boc_leakage_w=per_sm_boc_leak * gpu.num_sms,
        interconnect_w=interconnect * gpu.num_sms,
        num_sms=gpu.num_sms,
        cycles=counters.cycles,
    )
