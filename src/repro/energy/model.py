"""Dynamic-energy accounting (paper Figure 13).

Bills the simulator's event counters against the Table IV component
energies: every physical RF access costs a bank access; every BOC fill
or forward costs a BOC access (that is the *overhead* segment on top of
the Figure 13 bars).  Normalizing a design's total against the baseline
run reproduces the paper's normalized-dynamic-energy figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from ..stats.counters import Counters
from .cacti import BOC_PARAMS, ComponentParams, boc_params_for_capacity


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic energy of one run, in picojoules.

    Attributes:
        rf_energy_pj: register-bank access energy (reads + writes).
        overhead_pj: added-structure energy — BOC fills, forwards, and
            the modified interconnect's per-access share.
    """

    rf_energy_pj: float
    overhead_pj: float

    @property
    def total_pj(self) -> float:
        return self.rf_energy_pj + self.overhead_pj

    def normalized_to(self, baseline: "EnergyBreakdown") -> "EnergyBreakdown":
        """Both segments as fractions of the baseline total (Figure 13)."""
        if baseline.total_pj <= 0:
            raise SimulationError("baseline energy is zero; cannot normalize")
        return EnergyBreakdown(
            rf_energy_pj=self.rf_energy_pj / baseline.total_pj,
            overhead_pj=self.overhead_pj / baseline.total_pj,
        )


class EnergyModel:
    """Bills counters against component access energies."""

    def __init__(
        self,
        bank: Optional[ComponentParams] = None,
        boc: Optional[ComponentParams] = None,
        boc_capacity_entries: Optional[int] = None,
        interconnect_pj_per_access: float = 0.4,
    ):
        """
        Args:
            bank: register-bank parameters (Table IV default).
            boc: BOC parameters; overrides ``boc_capacity_entries``.
            boc_capacity_entries: scale the default BOC to this capacity
                (the half-size design point bills ~half per access).
            interconnect_pj_per_access: energy of moving one operand over
                the modified BOC network (derived from the paper's 33.2 mW
                at ~80 accesses/cycle-equivalent traffic; small relative
                to a bank access).
        """
        from .cacti import REGISTER_BANK_PARAMS

        self.bank = bank or REGISTER_BANK_PARAMS
        if boc is not None:
            self.boc = boc
        elif boc_capacity_entries is not None:
            self.boc = boc_params_for_capacity(boc_capacity_entries)
        else:
            self.boc = BOC_PARAMS
        if interconnect_pj_per_access < 0:
            raise SimulationError("interconnect energy must be non-negative")
        self.interconnect_pj_per_access = interconnect_pj_per_access

    def breakdown(self, counters: Counters) -> EnergyBreakdown:
        """Dynamic energy of one run."""
        rf_accesses = counters.rf_reads + counters.rf_writes
        rf_energy = rf_accesses * self.bank.access_energy_pj

        boc_accesses = counters.boc_reads + counters.boc_writes
        overhead = boc_accesses * (
            self.boc.access_energy_pj + self.interconnect_pj_per_access
        )
        return EnergyBreakdown(rf_energy_pj=rf_energy, overhead_pj=overhead)

    def normalized(self, counters: Counters,
                   baseline: Counters) -> EnergyBreakdown:
        """This run's breakdown normalized to a baseline run's total."""
        return self.breakdown(counters).normalized_to(self.breakdown(baseline))

    def savings(self, counters: Counters, baseline: Counters) -> float:
        """Fractional dynamic-energy reduction vs the baseline.

        The paper's headline numbers: ~36% for BOW, ~55% for BOW-WR at
        IW=3, overheads included.
        """
        normalized = self.normalized(counters, baseline)
        return 1.0 - normalized.total_pj
