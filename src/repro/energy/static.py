"""Static (leakage) energy and the effective-RF-size connection.

The paper's dynamic-energy story is Figure 13; its SS IV-B.2a adds a
second lever: transient values never allocate RF registers, so the GPU
could provision a *smaller* register file for the same performance —
cutting leakage, which related work (Jeon et al., RegLess) attacks
directly.  This module quantifies that: leakage of the RF and the BOCs
over a run, and the leakage a right-sized RF would save given the
compiler's transient fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import BOWConfig, GPUConfig
from ..errors import SimulationError
from ..stats.counters import Counters
from .cacti import REGISTER_BANK_PARAMS, boc_params_for_capacity


@dataclass(frozen=True)
class StaticBreakdown:
    """Leakage energy of one run, in picojoules.

    Attributes:
        rf_leakage_pj: leakage of all register banks over the run.
        boc_leakage_pj: leakage of all BOCs (zero for the baseline).
    """

    rf_leakage_pj: float
    boc_leakage_pj: float

    @property
    def total_pj(self) -> float:
        return self.rf_leakage_pj + self.boc_leakage_pj


class StaticEnergyModel:
    """Leakage accounting from the Table IV component parameters."""

    def __init__(self, gpu: Optional[GPUConfig] = None,
                 clock_ghz: float = 1.0):
        if clock_ghz <= 0:
            raise SimulationError("clock_ghz must be positive")
        self.gpu = gpu or GPUConfig()
        self.clock_ghz = clock_ghz

    def breakdown(self, counters: Counters,
                  bow: Optional[BOWConfig] = None) -> StaticBreakdown:
        """Leakage over ``counters.cycles`` for one SM.

        Args:
            counters: the run's counters (only ``cycles`` is used).
            bow: the BOW design point; ``None`` or disabled means the
                baseline (no BOC leakage beyond the conventional
                collectors, which both machines share).
        """
        cycles = counters.cycles
        rf = (REGISTER_BANK_PARAMS.leakage_energy_pj(cycles, self.clock_ghz)
              * self._banks_equivalent())
        boc = 0.0
        if bow is not None and bow.enabled:
            params = boc_params_for_capacity(bow.effective_capacity)
            boc = (params.leakage_energy_pj(cycles, self.clock_ghz)
                   * self.gpu.max_warps_per_sm)
        return StaticBreakdown(rf_leakage_pj=rf, boc_leakage_pj=boc)

    def _banks_equivalent(self) -> float:
        """RF size expressed in Table IV 64 KB billing units."""
        return self.gpu.register_file_bytes / REGISTER_BANK_PARAMS.size_bytes

    def resized_rf_savings(self, transient_fraction: float,
                           counters: Counters) -> float:
        """Leakage saved by shrinking the RF by the transient fraction.

        The SS IV-B.2a argument: if ``transient_fraction`` of computed
        values never need RF slots, a proportionally smaller RF leaks
        proportionally less.  Returns saved pJ over the run (first-order:
        leakage scales with capacity).
        """
        if not 0.0 <= transient_fraction <= 1.0:
            raise SimulationError(
                f"transient_fraction must be in [0, 1], got {transient_fraction}"
            )
        full = self.breakdown(counters).rf_leakage_pj
        return full * transient_fraction


@dataclass(frozen=True)
class TotalEnergyReport:
    """Dynamic + static energy of one run, for whole-picture comparisons."""

    dynamic_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj


def total_energy(
    counters: Counters,
    bow: Optional[BOWConfig] = None,
    gpu: Optional[GPUConfig] = None,
    clock_ghz: float = 1.0,
) -> TotalEnergyReport:
    """Dynamic + leakage energy of one run on one SM."""
    from .model import EnergyModel

    capacity = bow.effective_capacity if (bow and bow.enabled) else None
    dynamic = EnergyModel(boc_capacity_entries=capacity).breakdown(counters)
    static = StaticEnergyModel(gpu, clock_ghz).breakdown(counters, bow)
    return TotalEnergyReport(
        dynamic_pj=dynamic.total_pj,
        static_pj=static.total_pj,
    )
