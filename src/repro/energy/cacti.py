"""CACTI-derived component parameters (paper Table IV, 28 nm).

These are the paper's published numbers, used as model constants; we do
not re-run CACTI.  The derived ratios asserted in tests — a BOC access
costs ~1.4% of a bank access, BOC leakage ~0.9% of a bank's — are what
make bypassing a net energy win despite the added buffer traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ComponentParams:
    """CACTI-style parameters of one SRAM component.

    Attributes:
        name: component name.
        size_bytes: storage capacity.
        vdd: supply voltage (V).
        access_energy_pj: energy of one access (pJ).
        leakage_power_mw: static leakage (mW).
    """

    name: str
    size_bytes: int
    vdd: float
    access_energy_pj: float
    leakage_power_mw: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError(f"{self.name}: size must be positive")
        if self.access_energy_pj < 0 or self.leakage_power_mw < 0:
            raise ConfigError(f"{self.name}: energies must be non-negative")

    def leakage_energy_pj(self, cycles: int, clock_ghz: float = 1.0) -> float:
        """Leakage over ``cycles`` at ``clock_ghz`` (pJ).

        mW over n cycles of 1/f ns each: ``P * t`` with unit bookkeeping
        (1 mW * 1 ns = 1 pJ).
        """
        if cycles < 0:
            raise ConfigError("cycles must be non-negative")
        return self.leakage_power_mw * cycles / clock_ghz


#: One BOC (IW=3 conservative sizing: 12 entries x 128 B = 1.5 KB).
BOC_PARAMS = ComponentParams(
    name="bypassing operand collector",
    size_bytes=1536,
    vdd=0.96,
    access_energy_pj=2.72,
    leakage_power_mw=1.11,
)

#: One register bank (64 entries x 128 B x 8 sub-banks = 64 KB... the
#: paper's Table IV reports the 64 KB bank as the billing unit).
REGISTER_BANK_PARAMS = ComponentParams(
    name="register bank",
    size_bytes=64 * 1024,
    vdd=0.96,
    access_energy_pj=185.26,
    leakage_power_mw=111.84,
)

#: Total power of the redesigned BOC network (crossbar, arbiters, bus)
#: from the paper's RTL synthesis, assuming writes in 50% of cycles.
INTERCONNECT_POWER_W = 0.0332

#: Power of the whole register bank array for scale (paper SS V-A).
REGISTER_BANK_ARRAY_POWER_W = 2.5


def boc_params_for_capacity(capacity_entries: int,
                            warp_register_bytes: int = 128) -> ComponentParams:
    """Scale the Table IV BOC numbers to a different entry count.

    Access energy and leakage scale roughly linearly with capacity for
    small buffers; the paper's half-size design point therefore pays
    about half the BOC overhead per access.
    """
    if capacity_entries < 1:
        raise ConfigError("capacity_entries must be >= 1")
    reference_entries = BOC_PARAMS.size_bytes // warp_register_bytes
    scale = capacity_entries / reference_entries
    return ComponentParams(
        name=f"BOC ({capacity_entries} entries)",
        size_bytes=capacity_entries * warp_register_bytes,
        vdd=BOC_PARAMS.vdd,
        access_energy_pj=BOC_PARAMS.access_energy_pj * scale,
        leakage_power_mw=BOC_PARAMS.leakage_power_mw * scale,
    )
