"""The declarative design registry.

Every runnable design point — the unmodified GPU, the three BOW
writeback policies, the half-size BOW-WR, and the RFC comparison — is
one :class:`DesignSpec`: a name, a provider factory (an engine plus a
provider *is* a design), an optional BOW config factory, and the two
metadata bits the experiment layer needs (``hinted``, ``windowless``).

Everything that used to be special-cased by name — ``"rfc"`` branches
in the runner, hand-kept hinted/windowless sets, CLI hint selection —
now derives from this registry.  Adding a design (say an RFC variant or
a latency-tolerant RF model) is one :func:`register_design` call; the
runner, grid, CLI, figures, and ablation drivers pick it up without
modification.

The registry is intentionally tiny and import-cycle-free: provider
classes are imported lazily inside the factories where needed.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..config import (
    BOWConfig,
    baseline_config,
    bow_config,
    bow_wb_config,
    bow_wr_config,
)
from ..errors import SimulationError
from ..gpu.collector import BaselineCollectorPool, OperandProvider


#: A provider factory: ``(engine, window_size) -> OperandProvider``.
ProviderFactory = Callable[[object, int], OperandProvider]

#: A BOW-config factory: ``window_size -> BOWConfig`` (``None`` for
#: designs that are not BOW organizations).
BowConfigFactory = Callable[[int], BOWConfig]


@dataclass(frozen=True)
class DesignSpec:
    """One registered design point.

    Attributes:
        name: registry key (the name used on every CLI/driver surface).
        description: one-line summary shown by ``repro list --designs``.
        provider: factory building the design's operand provider for an
            engine; receives ``(engine, window_size)``.
        bow_config: factory of the design's :class:`BOWConfig` keyed by
            the instruction window, or ``None`` when the design is not
            a BOW organization (baseline, RFC).
        hinted: the design consumes compiler writeback hints, so its
            traces must be hint-compiled for the window under test.
        windowless: the design ignores the instruction-window knob
            (cache keys collapse every window to 0).
        num_sms: default SM count for device-scale runs of this design
            (``repro run --sms`` overrides it).  1 means the design's
            canonical numbers are single-SM, as the paper reports them.
    """

    name: str
    description: str
    provider: ProviderFactory = field(repr=False)
    bow_config: Optional[BowConfigFactory] = field(default=None, repr=False)
    hinted: bool = False
    windowless: bool = False
    num_sms: int = 1

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise SimulationError(
                f"design {self.name!r}: num_sms must be >= 1, "
                f"got {self.num_sms}"
            )


_REGISTRY: Dict[str, DesignSpec] = {}


def register_design(spec: DesignSpec) -> DesignSpec:
    """Add ``spec`` to the registry (its name must be unused)."""
    if spec.name in _REGISTRY:
        raise SimulationError(f"design {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_design(name: str) -> None:
    """Remove a registered design (test/ablation cleanup)."""
    _REGISTRY.pop(name, None)


@contextlib.contextmanager
def temporary_design(spec: DesignSpec) -> Iterator[DesignSpec]:
    """Register ``spec`` for the duration of a ``with`` block."""
    register_design(spec)
    try:
        yield spec
    finally:
        unregister_design(spec.name)


def design_names() -> Tuple[str, ...]:
    """Every registered design name, sorted."""
    return tuple(sorted(_REGISTRY))


def known_designs() -> str:
    """The sorted, comma-joined name list used in error messages."""
    return ", ".join(design_names())


def get_design(name: str) -> DesignSpec:
    """The spec registered under ``name`` (:class:`KeyError` if absent).

    Callers that own a user-facing surface should catch the
    :class:`KeyError` and raise their layer's error type with
    :func:`known_designs` in the message, so every entry point reports
    unknown designs identically.
    """
    return _REGISTRY[name]


def design_specs() -> Tuple[DesignSpec, ...]:
    """Every registered spec, sorted by name."""
    return tuple(_REGISTRY[name] for name in design_names())


# ----------------------------------------------------------------------
# the paper's design points
# ----------------------------------------------------------------------

def _baseline_provider(engine, window_size: int) -> OperandProvider:
    return BaselineCollectorPool(engine, engine.config.num_operand_collectors)


def _bow_provider(factory: BowConfigFactory) -> ProviderFactory:
    def build(engine, window_size: int) -> OperandProvider:
        from .boc import BOWCollectors

        return BOWCollectors(engine, factory(window_size))

    return build


def _rfc_provider(engine, window_size: int) -> OperandProvider:
    from .rfc import RFC_ENTRIES_PER_WARP, RFCCollectors

    return RFCCollectors(engine, engine.config.num_operand_collectors,
                         RFC_ENTRIES_PER_WARP)


register_design(DesignSpec(
    name="baseline",
    description="unmodified GPU: conventional OCU pool, no bypassing",
    provider=_baseline_provider,
    bow_config=lambda iw: baseline_config(),
    windowless=True,
))
register_design(DesignSpec(
    name="bow",
    description="BOW write-through: bypassing collectors, RF kept current",
    provider=_bow_provider(bow_config),
    bow_config=bow_config,
))
register_design(DesignSpec(
    name="bow-wb",
    description="BOW-WB: write-back collectors, dirty values linger",
    provider=_bow_provider(bow_wb_config),
    bow_config=bow_wb_config,
))
register_design(DesignSpec(
    name="bow-wr",
    description="BOW-WR: compiler writeback hints eliminate dead RF writes",
    provider=_bow_provider(bow_wr_config),
    bow_config=bow_wr_config,
    hinted=True,
))
register_design(DesignSpec(
    name="bow-wr-half",
    description="BOW-WR with half-capacity operand storage",
    provider=_bow_provider(lambda iw: bow_wr_config(iw, half_size=True)),
    bow_config=lambda iw: bow_wr_config(iw, half_size=True),
    hinted=True,
))
register_design(DesignSpec(
    name="rfc",
    description="register-file cache (Gebhart et al.), the closest prior",
    provider=_rfc_provider,
    windowless=True,
))
