"""BOW: the paper's primary contribution.

* :mod:`repro.core.window` — sliding/extended instruction-window
  semantics and the trace-level bypass-opportunity analyses behind the
  motivation figures (Figure 3) and Table I.
* :mod:`repro.core.boc` — the Bypassing Operand Collector: a per-warp
  collector with forwarding logic, FIFO capacity management, and the
  three writeback policies (write-through BOW, write-back, and
  compiler-guided BOW-WR).
* :mod:`repro.core.designs` — the declarative design registry; every
  runnable design point is one :class:`~repro.core.designs.DesignSpec`.
* :mod:`repro.core.bow_sm` — one-call simulation entry points plugging
  the BOC into the baseline SM engine.
* :mod:`repro.core.rfc` — the register-file-cache comparison point.
* :mod:`repro.core.occupancy` — collector occupancy studies (Figures 8/9).
"""

from .boc import BOWCollectors
from .bow_sm import DESIGNS, simulate_bow, simulate_design
from .designs import (
    DesignSpec,
    design_names,
    design_specs,
    get_design,
    known_designs,
    register_design,
    temporary_design,
    unregister_design,
)
from .occupancy import (
    OccupancySample,
    boc_occupancy_histogram,
    source_operand_histogram,
)
from .rfc import RFC_ENTRIES_PER_WARP, RFCCollectors, simulate_rfc
from .window import (
    read_bypass_counts,
    table1_write_counts,
    write_bypass_opportunity_counts,
    writeback_eliminated_counts,
)

__all__ = [
    "read_bypass_counts",
    "write_bypass_opportunity_counts",
    "writeback_eliminated_counts",
    "table1_write_counts",
    "BOWCollectors",
    "DesignSpec",
    "design_names",
    "design_specs",
    "get_design",
    "known_designs",
    "register_design",
    "temporary_design",
    "unregister_design",
    "simulate_bow",
    "simulate_design",
    "DESIGNS",
    "RFCCollectors",
    "simulate_rfc",
    "RFC_ENTRIES_PER_WARP",
    "source_operand_histogram",
    "boc_occupancy_histogram",
    "OccupancySample",
]
