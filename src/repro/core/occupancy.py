"""Collector occupancy studies (paper Figures 8 and 9).

Figure 8 is a census of how many *source* register operands each dynamic
instruction carries (how many of a conventional OCU's three entries it
fills).  Figure 9 samples, per cycle, how many of a BOC's operand
entries are in use, which justifies halving the BOC storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import BOWConfig, GPUConfig, bow_wr_config
from ..gpu.sm import SMEngine
from ..kernels.trace import KernelTrace
from .boc import BOWCollectors


def source_operand_histogram(trace: KernelTrace) -> Dict[int, float]:
    """Fraction of dynamic instructions with 0..3 register sources.

    ``occupancy = 0`` covers instructions without register sources —
    NOP/RET, or branches with immediate targets — matching the paper's
    note under Figure 8.
    """
    counts = {0: 0, 1: 0, 2: 0, 3: 0}
    total = 0
    for warp in trace:
        for inst in warp:
            counts[min(3, len(inst.sources))] += 1
            total += 1
    if total == 0:
        return {k: 0.0 for k in counts}
    return {k: v / total for k, v in counts.items()}


@dataclass(frozen=True)
class OccupancySample:
    """Result of a BOC occupancy run.

    Attributes:
        histogram: ``{entries_in_use: fraction of sampled warp-cycles}``.
        max_observed: highest occupancy ever sampled.
        capacity: the BOC capacity during the run.
    """

    histogram: Dict[int, float]
    max_observed: int
    capacity: int

    def fraction_above(self, threshold: int) -> float:
        """Fraction of warp-cycles using more than ``threshold`` entries."""
        return sum(
            fraction for used, fraction in self.histogram.items()
            if used > threshold
        )


def boc_occupancy_histogram(
    trace: KernelTrace,
    bow: Optional[BOWConfig] = None,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
) -> OccupancySample:
    """Run a BOW simulation and sample per-cycle BOC entry usage.

    Defaults to the conservatively sized BOW-WR at IW=3, the
    configuration the paper samples in its Figure 9.
    """
    bow = bow or bow_wr_config()
    collectors: Dict[str, BOWCollectors] = {}

    def factory(engine):
        provider = BOWCollectors(engine, bow)
        collectors["provider"] = provider
        return provider

    engine = SMEngine(
        trace, config=config, provider_factory=factory, memory_seed=memory_seed
    )
    engine.run()
    provider = collectors["provider"]
    raw = provider.occupancy_histogram
    total = sum(raw.values())
    histogram = (
        {used: count / total for used, count in sorted(raw.items())}
        if total
        else {}
    )
    return OccupancySample(
        histogram=histogram,
        max_observed=max(raw) if raw else 0,
        capacity=bow.effective_capacity,
    )
