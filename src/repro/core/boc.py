"""The Bypassing Operand Collector (BOC).

One BOC per warp (paper SS IV-A).  Each BOC:

* holds the in-flight instructions of the last ``IW`` issued
  instructions of its warp (the sliding window);
* keeps an operand store of register values accessed inside the window,
  refreshed by every access (the *extended* window) and capped at the
  configured capacity with FIFO eviction (SS IV-C);
* forwards resident operands to newly issued instructions at insert
  time — forwarded operands consume neither a bank port nor the BOC's
  single RF-fill port;
* routes results per the configured writeback policy: write-through
  (baseline BOW), write-back (BOW-WB), or compiler hints (BOW-WR).

Correctness invariants (exercised by the property tests):

* a value is dropped without reaching the RF only when (a) a newer write
  to the same register is already resident, or (b) its compiler hint
  says every consumer forwards from the BOC;
* a dirty value evicted early — capacity pressure or window slide —
  is written back before the entry disappears.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import BOWConfig, EvictionPolicy, WritebackPolicy
from ..errors import SimulationError
from ..gpu.banks import AccessRequest
from ..gpu.collector import InflightInstruction, OperandProvider, ensure_decoded
from ..stats.trace import EventKind


@dataclass
class _BocEntry:
    """One operand slot of a BOC."""

    register_id: int
    value: int
    dirty: bool = False
    transient: bool = False  # OC-only: never owes the RF a write


@dataclass
class _WarpBOC:
    """Per-warp bypassing collector state."""

    warp_id: int
    seq: int = 0  # issued-instruction counter (window clock)
    last_access: Dict[int, int] = field(default_factory=dict)
    entries: "OrderedDict[int, _BocEntry]" = field(default_factory=OrderedDict)
    inflight: List[InflightInstruction] = field(default_factory=list)
    #: Last cycle whose occupancy sample has been accumulated into the
    #: histogram (see BOWCollectors._settle).
    settled: int = 0


class BOWCollectors(OperandProvider):
    """Per-warp BOCs implementing the three BOW writeback policies."""

    prefilters_inflight = True  # read_requests skips in-flight tags
    tick_guards = True  # heads_pending / stable ready list maintained

    def __init__(self, engine, bow: BOWConfig):
        if not bow.enabled:
            raise SimulationError(
                "BOWCollectors requires an enabled BOWConfig; use the "
                "baseline provider for bypass-off runs"
            )
        self.engine = engine
        self.bow = bow
        self.window_size = bow.window_size
        self.capacity = bow.effective_capacity
        self._lru = bow.eviction is EvictionPolicy.LRU
        self._compiler_policy = bow.writeback is WritebackPolicy.COMPILER
        self._warps: Dict[int, _WarpBOC] = {}
        # Operand-complete entries, maintained incrementally at the
        # ready transition (fully bypassed insert, or last delivery)
        # so ready_entries never rescans every warp's inflight list.
        self._ready: List[InflightInstruction] = []
        self.heads_pending = 0
        #: occupancy histogram: {entries_in_use: warp-cycles}, one
        #: sample per cycle per warp with work in flight (Figure 9).
        #: Maintained lazily: a warp's (busy, entries-in-use) state only
        #: changes at an insert, delivery, dispatch, or completion, so
        #: each of those settles the constant span since the previous
        #: mutation in one bulk add instead of sampling every cycle.
        self.occupancy_histogram: Dict[int, int] = {}

    def _warp(self, warp_id: int) -> _WarpBOC:
        if warp_id not in self._warps:
            self._warps[warp_id] = _WarpBOC(warp_id)
        return self._warps[warp_id]

    def _settle(self, warp: _WarpBOC, through: int) -> None:
        """Accumulate owed occupancy samples for cycles up to ``through``.

        Between two mutations a warp's sampled state is constant, so
        the whole span lands in one histogram bucket.  The per-cycle
        sampling point sits in the bank stage — after completions and
        operand deliveries, before dispatch and issue — so pre-sample
        mutators (``on_complete``, ``deliver``) settle through the
        *previous* cycle and post-sample mutators (``insert``,
        ``on_dispatch``) settle through the current one.  The result is
        numerically identical to sampling every cycle.
        """
        owed = through - warp.settled
        if owed > 0:
            if warp.inflight:
                used = len(warp.entries)
                histogram = self.occupancy_histogram
                histogram[used] = histogram.get(used, 0) + owed
            warp.settled = through

    # ------------------------------------------------------------------
    # window bookkeeping
    # ------------------------------------------------------------------

    def _in_window(self, warp: _WarpBOC, register_id: int) -> bool:
        last = warp.last_access.get(register_id)
        return last is not None and warp.seq - last < self.window_size

    def _refresh(self, warp: _WarpBOC, register_id: int) -> None:
        warp.last_access[register_id] = warp.seq

    def _slide_window(self, warp: _WarpBOC) -> None:
        """Evict operands whose last access just fell out of the window."""
        entries = warp.entries
        if not entries:
            return
        # Inline of _in_window over every resident operand — this runs
        # once per issued instruction, so the per-entry cost matters.
        seq = warp.seq
        window_size = self.window_size
        last_access = warp.last_access
        expired = [
            reg_id
            for reg_id in entries
            if (last := last_access.get(reg_id)) is None
            or seq - last >= window_size
        ]
        for reg_id in expired:
            self._dispose(warp, entries.pop(reg_id), reason="slide")

    def _dispose(self, warp: _WarpBOC, entry: _BocEntry, reason: str) -> None:
        """Final disposition of a value leaving the BOC.

        ``reason`` is ``"slide"`` (window expiry), ``"capacity"``
        (FIFO/LRU pressure), or ``"drain"`` (kernel end — every window
        expires at once).
        """
        counters = self.engine.counters
        recorder = self.engine.recorder
        if recorder is not None:
            recorder.emit(
                self.engine.cycle, EventKind.BOC_EVICT, warp=warp.warp_id,
                reason=reason, register=entry.register_id,
            )
        if not entry.dirty:
            return
        if entry.transient and reason != "capacity":
            # All consumers forwarded from the BOC; the RF write is
            # eliminated and the value simply evaporates.
            counters.bypassed_writes += 1
            if recorder is not None:
                recorder.emit(
                    self.engine.cycle, EventKind.WRITE_ELIMINATED,
                    warp=warp.warp_id, reason="transient",
                    register=entry.register_id,
                )
            return
        # Dirty value still owed to the RF (write-back slide-out, a
        # compiler BOTH-value, or a transient evicted early by capacity
        # pressure — the safety writeback of SS IV-C).
        self.engine.enqueue_rf_write(
            None, entry.value, warp_id=warp.warp_id, register_id=entry.register_id
        )
        if reason == "capacity":
            counters.eviction_writebacks += 1
            if recorder is not None:
                recorder.emit(
                    self.engine.cycle, EventKind.EVICTION_WRITEBACK,
                    warp=warp.warp_id, register=entry.register_id,
                )

    def _deposit(self, warp: _WarpBOC, register_id: int, value: int,
                 dirty: bool, transient: bool) -> None:
        """Place a value into the operand store (FIFO capacity)."""
        counters = self.engine.counters
        recorder = self.engine.recorder
        existing = warp.entries.pop(register_id, None)
        if existing is not None and existing.dirty and dirty:
            # A newer write lands on a still-dirty value: the old value's
            # RF write is consolidated away (SS IV-B).
            counters.bypassed_writes += 1
            if recorder is not None:
                recorder.emit(
                    self.engine.cycle, EventKind.WRITE_ELIMINATED,
                    warp=warp.warp_id, reason="consolidated",
                    register=register_id,
                )
        elif existing is not None and existing.dirty:
            # Clean re-fill over a dirty value cannot happen: a read miss
            # would have been served by the dirty (newer) value.
            raise SimulationError(
                f"warp {warp.warp_id}: clean deposit over dirty $r{register_id}"
            )
        while len(warp.entries) >= self.capacity:
            _, victim = warp.entries.popitem(last=False)
            counters.boc_evictions += 1
            self._dispose(warp, victim, reason="capacity")
        warp.entries[register_id] = _BocEntry(
            register_id=register_id, value=value, dirty=dirty, transient=transient
        )
        counters.boc_writes += 1
        if recorder is not None:
            recorder.emit(
                self.engine.cycle, EventKind.BOC_INSERT, warp=warp.warp_id,
                reason="dirty" if dirty else "clean", register=register_id,
            )

    # ------------------------------------------------------------------
    # OperandProvider interface
    # ------------------------------------------------------------------

    def can_accept(self, warp_id: int) -> bool:
        return len(self._warp(warp_id).inflight) < self.window_size

    def insert(self, entry: InflightInstruction) -> None:
        warp = self._warp(entry.warp_id)
        if len(warp.inflight) >= self.window_size:
            raise SimulationError("insert into a full BOC")
        self._settle(warp, self.engine.state.cycle)
        warp.seq += 1
        self._slide_window(warp)

        dec = ensure_decoded(entry, self.engine)
        counters = self.engine.counters
        recorder = self.engine.recorder
        seq = warp.seq
        window_size = self.window_size
        last_access = warp.last_access
        entries = warp.entries
        operand_values = entry.operand_values
        pending: List[int] = []
        for slot, reg_id in enumerate(dec.source_ids):
            last = last_access.get(reg_id)
            resident = (
                last is not None
                and seq - last < window_size
                and reg_id in entries
            )
            last_access[reg_id] = seq
            if resident:
                operand_values[slot] = entries[reg_id].value
                if self._lru:
                    entries.move_to_end(reg_id)
                counters.bypassed_reads += 1
                counters.boc_reads += 1
                if recorder is not None:
                    recorder.emit(
                        self.engine.cycle, EventKind.BOC_HIT,
                        warp=warp.warp_id, register=reg_id,
                        trace_index=entry.trace_index,
                        opcode=dec.opcode_name,
                    )
            else:
                pending.append(slot)
        entry.pending_slots = pending
        if pending:
            self.heads_pending += 1
        else:
            self._ready.append(entry)

        dest_id = dec.rf_dest_id
        if dest_id is not None and not self._dest_skips_window(dec):
            last_access[dest_id] = seq
        warp.inflight.append(entry)

    def _dest_skips_window(self, dec) -> bool:
        """RF-only values never enter the window (no reuse to serve)."""
        return self._compiler_policy and dec.hint_rf_only

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        requests = []
        # Skip slots whose read was already granted (the engine would
        # filter them anyway; not building the request is cheaper).
        inflight_tags = self.engine.state.inflight_read_tags
        for warp in self._warps.values():
            for entry in warp.inflight:
                if not entry.pending_slots:
                    continue
                # One fill path per instruction slot (matching the
                # baseline OCU each slot replaces); operands of a single
                # instruction still serialize.
                slot = entry.pending_slots[0]
                request = entry.head_request
                if request is None or request.tag[1] != slot:
                    dec = entry.dec
                    request = AccessRequest(
                        bank=dec.source_banks[slot],
                        warp_id=warp.warp_id,
                        register_id=dec.source_ids[slot],
                        tag=(entry.key, slot),
                        age=entry.issue_cycle,
                    )
                    entry.head_request = request
                if request.tag in inflight_tags:
                    continue
                requests.append(request)
        return requests

    def deliver(self, tag: object, value: int) -> None:
        key, slot = tag
        warp = self._warp(key[0])
        self._settle(warp, self.engine.state.cycle - 1)
        for entry in warp.inflight:
            if entry.key == key:
                break
        else:
            raise SimulationError(f"operand delivery for unknown entry {key}")
        if not entry.pending_slots or entry.pending_slots[0] != slot:
            raise SimulationError(f"out-of-order operand delivery {tag!r}")
        entry.pending_slots.pop(0)
        entry.operand_values[slot] = value
        source_ids = entry.dec.source_ids
        register_id = source_ids[slot]
        # Duplicate sources ($rN appearing in several slots) share one
        # fetch: the forwarding logic serves the remaining slots from
        # the just-filled value.
        duplicates = [
            s for s in entry.pending_slots
            if source_ids[s] == register_id
        ]
        for dup in duplicates:
            entry.pending_slots.remove(dup)
            entry.operand_values[dup] = value
            self.engine.counters.bypassed_reads += 1
            self.engine.counters.boc_reads += 1
            if self.engine.recorder is not None:
                self.engine.recorder.emit(
                    self.engine.cycle, EventKind.BOC_HIT,
                    warp=warp.warp_id, register=register_id,
                    trace_index=entry.trace_index,
                    opcode=entry.inst.opcode.name,
                )
        if not entry.pending_slots:
            self.heads_pending -= 1
            self._ready.append(entry)
        # An RF fill deposits the value for later forwarding — but only
        # while the register is still windowed (it may have slid while
        # the read waited on a bank port).
        if self._in_window(warp, register_id) and register_id not in warp.entries:
            self._deposit(warp, register_id, value, dirty=False, transient=False)

    def ready_entries(self) -> List[InflightInstruction]:
        return self._ready

    def on_dispatch(self, entry: InflightInstruction) -> None:
        # The instruction slot frees once the operands are consumed; the
        # window (and any deposited operand values) persists via the
        # per-register access clock.
        warp = self._warp(entry.warp_id)
        self._settle(warp, self.engine.state.cycle)
        warp.inflight.remove(entry)
        self._ready.remove(entry)

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        warp = self._warp(entry.warp_id)
        self._settle(warp, self.engine.state.cycle - 1)
        dest_id = entry.dec.rf_dest_id
        if dest_id is None or value is None:
            self.engine.release_scoreboard(entry)
            return

        policy = self.bow.writeback
        in_window = self._in_window(warp, dest_id)

        if policy is WritebackPolicy.WRITE_THROUGH:
            if in_window:
                self._deposit(warp, dest_id, value, dirty=False, transient=False)
            self.engine.enqueue_rf_write(entry, value)
        elif policy is WritebackPolicy.WRITE_BACK:
            if in_window:
                self._deposit(warp, dest_id, value, dirty=True, transient=False)
            else:
                self.engine.enqueue_rf_write(entry, value)
        else:  # compiler-guided (BOW-WR)
            self._complete_with_hint(warp, entry, value, in_window)

        # Forwarding makes the value architecturally available now; the
        # scoreboard need not wait for any queued RF write.
        self.engine.release_scoreboard(entry)

    def _complete_with_hint(self, warp: _WarpBOC, entry: InflightInstruction,
                            value: int, in_window: bool) -> None:
        dec = entry.dec
        dest_id = dec.rf_dest_id
        if dec.hint_rf_only:
            # The new value goes straight to the RF, but a resident copy
            # of the *old* value (deposited by an earlier BOTH write and
            # kept windowed by recent reads) would now serve stale
            # forwards — invalidate it.  If it was dirty, its RF write
            # is consolidated away: this newer write supersedes it.
            stale = warp.entries.pop(dest_id, None)
            if stale is not None and stale.dirty:
                self.engine.counters.bypassed_writes += 1
                if self.engine.recorder is not None:
                    self.engine.recorder.emit(
                        self.engine.cycle, EventKind.WRITE_ELIMINATED,
                        warp=warp.warp_id, reason="consolidated",
                        register=dest_id,
                    )
            self.engine.enqueue_rf_write(entry, value)
            return
        transient = dec.hint_oc_only
        if in_window:
            self._deposit(warp, dest_id, value, dirty=True, transient=transient)
        elif transient:
            # Slid out before completing: a transient value has no
            # remaining consumers (they would have blocked the window),
            # so it evaporates — the write is bypassed entirely.
            self.engine.counters.bypassed_writes += 1
            if self.engine.recorder is not None:
                self.engine.recorder.emit(
                    self.engine.cycle, EventKind.WRITE_ELIMINATED,
                    warp=warp.warp_id, reason="transient", register=dest_id,
                )
        else:
            self.engine.enqueue_rf_write(entry, value)

    def drain(self) -> None:
        """Kernel end: every dirty value leaves its BOC."""
        for warp in self._warps.values():
            if warp.inflight:
                raise SimulationError(
                    f"drain with instructions in flight in warp {warp.warp_id}"
                )
            while warp.entries:
                _, entry = warp.entries.popitem(last=False)
                self._dispose(warp, entry, reason="drain")
