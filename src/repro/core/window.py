"""Sliding-window bypass analyses over dynamic traces.

These are the *opportunity* analyses behind the paper's motivation: for
a window of ``IW`` consecutive instructions, how many register-file
reads and writes could be eliminated (Figure 3), and how many RF writes
each writeback policy performs on a concrete snippet (Table I).

Window semantics shared with the hardware model (see DESIGN.md SS5):

* two accesses fall in the same window when their dynamic instruction
  indices differ by less than ``IW``;
* the window is *extended*: every access to a value refreshes its
  residency, so a chain of accesses with every gap below ``IW`` keeps the
  value collector-resident throughout;
* bypassing never reaches past the nominal window even when buffer
  space would allow it (the SS IV-C simplification).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..compiler.writeback import WritebackClass, classify_linear_writes
from ..errors import CompilerError
from ..isa import Instruction
from ..isa.registers import SINK_REGISTER


def read_bypass_counts(
    trace: Sequence[Instruction], window_size: int
) -> Tuple[int, int]:
    """(bypassed, total) source-operand reads for a window of ``IW``.

    A read is bypassed when the register was accessed — read or written —
    by one of the previous ``IW - 1`` instructions: a prior write
    deposited the value in the collector, a prior read fetched it there.
    """
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")
    last_access: Dict[int, int] = {}
    bypassed = 0
    total = 0
    for index, inst in enumerate(trace):
        for src in inst.sources:
            total += 1
            previous = last_access.get(src.id)
            if previous is not None and index - previous < window_size:
                bypassed += 1
            last_access[src.id] = index
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            last_access[inst.dest.id] = index
    return bypassed, total


def write_bypass_opportunity_counts(
    trace: Sequence[Instruction],
    window_size: int,
    live_out: FrozenSet[int] = frozenset(),
) -> Tuple[int, int]:
    """(eliminable, total) destination writes for a window of ``IW``.

    A write is eliminable when its value never needs to reach the RF:
    every read of the value occurs while it is still collector-resident
    (all access gaps below ``IW``) and the value is dead afterwards —
    exactly the compiler's transient (OC-only) class, which upper-bounds
    what any of the writeback designs can save.
    """
    classifications = classify_linear_writes(trace, window_size, live_out)
    total = len(classifications)
    eliminable = sum(
        1
        for item in classifications
        if item.writeback in (WritebackClass.OC_ONLY, WritebackClass.DEAD)
    )
    return eliminable, total


def writeback_eliminated_counts(
    trace: Sequence[Instruction], window_size: int
) -> Tuple[int, int]:
    """(eliminated, total) RF writes under the *write-back* policy (BOW-WB).

    The hardware-only rule (no compiler knowledge): a value's RF write is
    skipped when the same register is written again while the old value
    is still collector-resident — i.e. the chain of accesses from the
    producing write to the next write keeps every gap below ``IW``.  A
    residency lapse writes the value back at slide-out; a value never
    rewritten is written back when it finally slides out (or at drain).
    """
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")

    accesses: Dict[int, List[Tuple[int, bool]]] = {}
    for index, inst in enumerate(trace):
        for src in inst.sources:
            accesses.setdefault(src.id, []).append((index, False))
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            accesses.setdefault(inst.dest.id, []).append((index, True))

    eliminated = 0
    total = 0
    for events in accesses.values():
        for position, (_, is_write) in enumerate(events):
            if not is_write:
                continue
            total += 1
            if follow_is_write(events, position, window_size):
                eliminated += 1
    return eliminated, total


def follow_is_write(
    events: List[Tuple[int, bool]], position: int, window_size: int
) -> bool:
    """Does the value written at ``events[position]`` get consolidated?

    Helper for :func:`writeback_eliminated_counts`: walks the access
    chain and reports whether a subsequent write is reached while every
    gap stays below ``window_size``.
    """
    previous_index = events[position][0]
    for follow in range(position + 1, len(events)):
        index, is_write = events[follow]
        if index - previous_index >= window_size:
            return False
        if is_write:
            return True
        previous_index = index
    return False


def table1_write_counts(
    trace: Sequence[Instruction],
    window_size: int,
    live_out: FrozenSet[int] = frozenset(),
) -> Dict[str, Dict[int, int]]:
    """Per-register RF write counts under the three designs (Table I).

    Returns ``{"write-through": {reg: n}, "write-back": ..., "compiler": ...}``.
    Write-through equals the unmodified GPU: every destination write
    reaches the RF.
    """
    write_through: Dict[int, int] = {}
    for inst in trace:
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            write_through[inst.dest.id] = write_through.get(inst.dest.id, 0) + 1

    write_back = dict(write_through)
    eliminated_by_reg = _writeback_eliminated_by_register(trace, window_size)
    for reg_id, count in eliminated_by_reg.items():
        write_back[reg_id] = write_back[reg_id] - count

    compiler = {reg_id: 0 for reg_id in write_through}
    for item in classify_linear_writes(trace, window_size, live_out):
        if item.needs_rf:
            compiler[item.register_id] = compiler.get(item.register_id, 0) + 1

    return {
        "write-through": write_through,
        "write-back": write_back,
        "compiler": compiler,
    }


def _writeback_eliminated_by_register(
    trace: Sequence[Instruction], window_size: int
) -> Dict[int, int]:
    accesses: Dict[int, List[Tuple[int, bool]]] = {}
    for index, inst in enumerate(trace):
        for src in inst.sources:
            accesses.setdefault(src.id, []).append((index, False))
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            accesses.setdefault(inst.dest.id, []).append((index, True))

    eliminated: Dict[int, int] = {}
    for reg_id, events in accesses.items():
        for position, (_, is_write) in enumerate(events):
            if not is_write:
                continue
            if follow_is_write(events, position, window_size):
                eliminated[reg_id] = eliminated.get(reg_id, 0) + 1
    return eliminated
