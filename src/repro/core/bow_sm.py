"""One-call simulation entry points for every design point.

``simulate_design`` runs a named design over a trace; the name registry
(``DESIGNS``) covers the paper's configurations: the unmodified GPU,
baseline BOW (write-through), BOW-WB, BOW-WR, the half-size BOW-WR, and
the RFC comparison point.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..config import (
    BOWConfig,
    GPUConfig,
    WritebackPolicy,
    baseline_config,
    bow_config,
    bow_wb_config,
    bow_wr_config,
)
from ..errors import SimulationError
from ..gpu.sm import SimulationResult, SMEngine
from ..kernels.trace import KernelTrace
from .boc import BOWCollectors


def simulate_bow(
    trace: KernelTrace,
    bow: Optional[BOWConfig] = None,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
) -> SimulationResult:
    """Simulate ``trace`` on a BOW-enabled SM.

    Args:
        trace: per-warp dynamic instruction streams.  For the compiler
            policy, instructions should carry hints (see
            :func:`repro.compiler.compile_kernel`); unhinted instructions
            default to the BOTH behaviour, which is correct but saves
            fewer writes.
        bow: the design point; defaults to baseline BOW at IW=3.
        config: machine configuration (Table II defaults).
        memory_seed: seed of the deterministic memory-latency model.
        recorder: optional :class:`~repro.stats.trace.TraceRecorder`
            receiving cycle-level events (``None`` = no tracing work).
    """
    bow = bow or bow_config()
    if not bow.enabled:
        engine = SMEngine(trace, config=config, memory_seed=memory_seed,
                          preload=preload, recorder=recorder)
        return engine.run()
    engine = SMEngine(
        trace,
        config=config,
        provider_factory=lambda eng: BOWCollectors(eng, bow),
        memory_seed=memory_seed,
        preload=preload,
        recorder=recorder,
    )
    return engine.run()


def _run_rfc(trace: KernelTrace, config: Optional[GPUConfig],
             memory_seed: int,
             preload: Optional[Dict[int, int]] = None,
             recorder=None) -> SimulationResult:
    from .rfc import simulate_rfc

    return simulate_rfc(trace, config=config, memory_seed=memory_seed,
                        preload=preload, recorder=recorder)


#: Named design points used across the experiment drivers.  Each value
#: is a factory of the BOWConfig (or ``None`` for non-BOW designs).
DESIGNS: Dict[str, Callable[[int], Optional[BOWConfig]]] = {
    "baseline": lambda iw: baseline_config(),
    "bow": lambda iw: bow_config(iw),
    "bow-wb": lambda iw: bow_wb_config(iw),
    "bow-wr": lambda iw: bow_wr_config(iw),
    "bow-wr-half": lambda iw: bow_wr_config(iw, half_size=True),
}


def simulate_design(
    design: str,
    trace: KernelTrace,
    window_size: int = 3,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
) -> SimulationResult:
    """Run a named design (see ``DESIGNS`` plus ``"rfc"``) over ``trace``."""
    if design == "rfc":
        return _run_rfc(trace, config, memory_seed, preload, recorder)
    try:
        factory = DESIGNS[design]
    except KeyError:
        known = ", ".join(sorted(DESIGNS) + ["rfc"])
        raise SimulationError(
            f"unknown design {design!r}; known: {known}"
        ) from None
    return simulate_bow(
        trace, bow=factory(window_size), config=config,
        memory_seed=memory_seed, preload=preload, recorder=recorder,
    )
