"""One-call simulation entry points for every design point.

``simulate_design`` runs a named design over a trace by resolving the
name through the declarative registry (:mod:`repro.core.designs`),
which covers the paper's configurations: the unmodified GPU, baseline
BOW (write-through), BOW-WB, BOW-WR, the half-size BOW-WR, and the RFC
comparison point.  ``DESIGNS`` remains as a compatibility view of the
registry's BOW-config factories.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import BOWConfig, GPUConfig
from ..errors import SimulationError
from ..gpu.sm import SimulationResult, SMEngine
from ..kernels.trace import KernelTrace
from .boc import BOWCollectors
from .designs import design_specs, get_design, known_designs


def simulate_bow(
    trace: KernelTrace,
    bow: Optional[BOWConfig] = None,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
    fast_forward: bool = True,
) -> SimulationResult:
    """Simulate ``trace`` on a BOW-enabled SM.

    Args:
        trace: per-warp dynamic instruction streams.  For the compiler
            policy, instructions should carry hints (see
            :func:`repro.compiler.compile_kernel`); unhinted instructions
            default to the BOTH behaviour, which is correct but saves
            fewer writes.
        bow: the design point; defaults to baseline BOW at IW=3.
        config: machine configuration (Table II defaults).
        memory_seed: seed of the deterministic memory-latency model.
        recorder: optional :class:`~repro.stats.trace.TraceRecorder`
            receiving cycle-level events (``None`` = no tracing work).
    """
    from ..config import bow_config

    bow = bow or bow_config()
    if not bow.enabled:
        engine = SMEngine(trace, config=config, memory_seed=memory_seed,
                          preload=preload, recorder=recorder,
                          fast_forward=fast_forward)
        return engine.run()
    engine = SMEngine(
        trace,
        config=config,
        provider_factory=lambda eng: BOWCollectors(eng, bow),
        memory_seed=memory_seed,
        preload=preload,
        recorder=recorder,
        fast_forward=fast_forward,
    )
    return engine.run()


def _registry_bow_configs() -> Dict[str, Callable[[int], Optional[BOWConfig]]]:
    return {
        spec.name: spec.bow_config
        for spec in design_specs()
        if spec.bow_config is not None
    }


#: Named BOW design points (compatibility view of the registry): each
#: value is a factory of the design's BOWConfig keyed by the window.
#: Non-BOW designs (``rfc``) live in the registry only.
DESIGNS: Dict[str, Callable[[int], Optional[BOWConfig]]] = (
    _registry_bow_configs()
)


def simulate_design(
    design: str,
    trace: KernelTrace,
    window_size: int = 3,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
    fast_forward: bool = True,
) -> SimulationResult:
    """Run a named design (see :func:`repro.core.designs.design_names`)."""
    try:
        spec = get_design(design)
    except KeyError:
        raise SimulationError(
            f"unknown design {design!r}; known: {known_designs()}"
        ) from None
    engine = SMEngine(
        trace,
        config=config,
        provider_factory=lambda eng: spec.provider(eng, window_size),
        memory_seed=memory_seed,
        preload=preload,
        recorder=recorder,
        fast_forward=fast_forward,
    )
    return engine.run()
