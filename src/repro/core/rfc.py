"""Register File Cache (RFC): the closest prior design (SS V-A).

Gebhart et al. add a small cache in front of the RF: every computed
result is written into the cache; reads check the cache first; dirty
victims are written back on eviction.  Two structural differences from
BOW that the paper calls out, both modeled here:

* the RFC is organized like the RF (a single structure behind the
  collectors), so a cache *hit still serializes through the collector's
  single port* — it saves bank energy and bank conflicts, not collection
  latency, which is why its IPC gain is small;
* every result is cached regardless of future use — no compiler hints —
  so it pays redundant cache-write energy BOW-WR avoids.

The paper's configuration caches 6 register entries per thread — one
warp-wide entry per warp-register, i.e. 6 warp-registers per warp, 24 KB
per SM (double BOW-WR's half-size storage).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import SimulationError
from ..gpu.banks import AccessRequest
from ..gpu.collector import InflightInstruction, OperandProvider, ensure_decoded
from ..gpu.sm import SimulationResult, SMEngine
from ..kernels.trace import KernelTrace
from ..stats.trace import EventKind

#: Warp-registers cached per warp (6 entries per thread in the paper).
RFC_ENTRIES_PER_WARP = 6


@dataclass
class _CacheLine:
    value: int
    dirty: bool


@dataclass
class _WarpCache:
    """FIFO cache of warp-registers for one warp."""

    warp_id: int
    lines: "OrderedDict[int, _CacheLine]" = field(default_factory=OrderedDict)


class RFCCollectors(OperandProvider):
    """Conventional collectors backed by a per-warp register-file cache."""

    shared_pool = True  # can_accept gates on the pool, not the warp
    prefilters_inflight = True  # read_requests skips in-flight tags
    tick_guards = True  # heads_pending / due_heap / stable ready list

    def __init__(self, engine, num_units: int,
                 entries_per_warp: int = RFC_ENTRIES_PER_WARP):
        if entries_per_warp < 1:
            raise SimulationError("entries_per_warp must be >= 1")
        self.engine = engine
        self.num_units = num_units
        self.entries_per_warp = entries_per_warp
        self._caches: Dict[int, _WarpCache] = {}
        self._collecting: List[InflightInstruction] = []
        # Operand-complete entries, maintained incrementally at the
        # ready transition so ready_entries never rescans the pool.
        self._ready: List[InflightInstruction] = []
        self.heads_pending = 0
        # Cache hits in service: the RFC is organized like the RF, so a
        # hit takes the same pipelined read latency — it skips only the
        # bank port (and its conflicts).
        self._hits_due: Dict[int, List[Tuple[Tuple[int, int], int, int]]] = {}
        # Min-heap of the due cycles present in _hits_due; the engine's
        # tick guard and fast-forward horizon both peek it in O(1).
        # Hits deliver exactly at their due cycle, so heads never stale.
        self.due_heap: List[int] = []
        self._serving: set = set()

    def _cache(self, warp_id: int) -> _WarpCache:
        if warp_id not in self._caches:
            self._caches[warp_id] = _WarpCache(warp_id)
        return self._caches[warp_id]

    # -- issue ----------------------------------------------------------

    def can_accept(self, warp_id: int) -> bool:
        return len(self._collecting) < self.num_units

    def insert(self, entry: InflightInstruction) -> None:
        dec = ensure_decoded(entry, self.engine)
        entry.pending_slots = list(range(dec.num_sources))
        self._collecting.append(entry)
        if entry.pending_slots:
            self.heads_pending += 1
        else:
            self._ready.append(entry)

    # -- collection: every operand passes the single port; cache hits
    # skip the bank, not the port ------------------------------------------

    def read_requests(self, cycle: int) -> List[AccessRequest]:
        self._deliver_due_hits(cycle)
        requests = []
        counters = self.engine.counters
        serving = self._serving
        inflight_tags = self.engine.state.inflight_read_tags
        hit_delta = max(1, self.engine.config.rf_read_latency - 1)
        for entry in self._collecting:
            if not entry.pending_slots:
                continue
            slot = entry.pending_slots[0]
            tag = (entry.key, slot)
            if tag in serving:
                continue  # a cache hit for this slot is already in flight
            dec = entry.dec
            register_id = dec.source_ids[slot]
            cache = self._cache(entry.warp_id)
            line = cache.lines.get(register_id)
            if line is not None:
                # Cache hit: no bank access, and one cycle less than a
                # full RF read (the cache sits closer to the collectors)
                # — but the collection pipeline itself remains.
                serving.add(tag)
                due = cycle + hit_delta
                bucket = self._hits_due.get(due)
                if bucket is None:
                    bucket = self._hits_due[due] = []
                    heappush(self.due_heap, due)
                bucket.append((entry.key, slot, line.value))
                counters.bypassed_reads += 1
                counters.boc_reads += 1
                if self.engine.recorder is not None:
                    self.engine.recorder.emit(
                        self.engine.cycle, EventKind.BOC_HIT,
                        warp=entry.warp_id, register=register_id,
                        trace_index=entry.trace_index,
                        opcode=dec.opcode_name,
                    )
                continue
            if tag in inflight_tags:
                # The bank read was already granted; the engine would
                # filter a re-request, so don't build it.  (The cache
                # check above must still run first: a concurrent fill
                # schedules a hit exactly as on the unfiltered path.)
                continue
            request = entry.head_request
            if request is None or request.tag[1] != slot:
                request = AccessRequest(
                    bank=dec.source_banks[slot],
                    warp_id=entry.warp_id,
                    register_id=register_id,
                    tag=tag,
                    age=entry.issue_cycle,
                )
                entry.head_request = request
            requests.append(request)
        return requests

    def next_event_cycle(self) -> Optional[int]:
        """Earliest pending cache-hit delivery (fast-forward horizon).

        Hits serialize through the pipelined collector port, so a hit
        scheduled at cycle *c* lands at ``c + hit_delta`` — the engine
        must tick that cycle even if every other structure is idle.
        """
        return self.due_heap[0] if self.due_heap else None

    def _deliver_due_hits(self, cycle: int) -> None:
        heap = self.due_heap
        while heap and heap[0] <= cycle:
            heappop(heap)
        for key, slot, value in self._hits_due.pop(cycle, ()):
            self._serving.discard((key, slot))
            for entry in self._collecting:
                if entry.key == key:
                    break
            else:
                raise SimulationError(f"hit delivery for unknown entry {key}")
            if not entry.pending_slots or entry.pending_slots[0] != slot:
                raise SimulationError(f"out-of-order hit delivery {key}/{slot}")
            entry.pending_slots.pop(0)
            entry.operand_values[slot] = value
            if not entry.pending_slots:
                self.heads_pending -= 1
                self._ready.append(entry)

    def deliver(self, tag: object, value: int) -> None:
        key, slot = tag
        for entry in self._collecting:
            if entry.key == key:
                break
        else:
            raise SimulationError(f"operand delivery for unknown entry {key}")
        if not entry.pending_slots or entry.pending_slots[0] != slot:
            # The slot may already have been served by a cache hit in the
            # same cycle the bank request was in flight; treat as stale.
            raise SimulationError(f"out-of-order operand delivery {tag!r}")
        entry.pending_slots.pop(0)
        entry.operand_values[slot] = value
        if not entry.pending_slots:
            self.heads_pending -= 1
            self._ready.append(entry)

    def ready_entries(self) -> List[InflightInstruction]:
        return self._ready

    def on_dispatch(self, entry: InflightInstruction) -> None:
        self._collecting.remove(entry)
        self._ready.remove(entry)

    # -- writeback: allocate every result in the cache ----------------------

    def on_complete(self, entry: InflightInstruction, value: Optional[int]) -> None:
        dest_id = entry.dec.rf_dest_id
        if dest_id is None or value is None:
            self.engine.release_scoreboard(entry)
            return
        cache = self._cache(entry.warp_id)
        counters = self.engine.counters
        recorder = self.engine.recorder
        old = cache.lines.pop(dest_id, None)
        if old is not None and old.dirty:
            counters.bypassed_writes += 1  # consolidated in the cache
            if recorder is not None:
                recorder.emit(
                    self.engine.cycle, EventKind.WRITE_ELIMINATED,
                    warp=cache.warp_id, reason="consolidated",
                    register=dest_id,
                )
        while len(cache.lines) >= self.entries_per_warp:
            victim_id, victim = cache.lines.popitem(last=False)
            counters.boc_evictions += 1
            if recorder is not None:
                recorder.emit(
                    self.engine.cycle, EventKind.BOC_EVICT,
                    warp=cache.warp_id, reason="capacity",
                    register=victim_id,
                )
            if victim.dirty:
                self.engine.enqueue_rf_write(
                    None, victim.value,
                    warp_id=cache.warp_id, register_id=victim_id,
                )
                counters.eviction_writebacks += 1
                if recorder is not None:
                    recorder.emit(
                        self.engine.cycle, EventKind.EVICTION_WRITEBACK,
                        warp=cache.warp_id, register=victim_id,
                    )
        cache.lines[dest_id] = _CacheLine(value=value, dirty=True)
        counters.boc_writes += 1
        if recorder is not None:
            recorder.emit(
                self.engine.cycle, EventKind.BOC_INSERT,
                warp=cache.warp_id, reason="dirty", register=dest_id,
            )
        self.engine.release_scoreboard(entry)

    def drain(self) -> None:
        for cache in self._caches.values():
            while cache.lines:
                register_id, line = cache.lines.popitem(last=False)
                if self.engine.recorder is not None:
                    self.engine.recorder.emit(
                        self.engine.cycle, EventKind.BOC_EVICT,
                        warp=cache.warp_id, reason="drain",
                        register=register_id,
                    )
                if line.dirty:
                    self.engine.enqueue_rf_write(
                        None, line.value,
                        warp_id=cache.warp_id, register_id=register_id,
                    )


def simulate_rfc(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    memory_seed: int = 0,
    entries_per_warp: int = RFC_ENTRIES_PER_WARP,
    preload: Optional[Dict[int, int]] = None,
    recorder=None,
    fast_forward: bool = True,
) -> SimulationResult:
    """Run the RFC comparison design over ``trace``."""
    engine = SMEngine(
        trace,
        config=config,
        provider_factory=lambda eng: RFCCollectors(
            eng, eng.config.num_operand_collectors, entries_per_warp
        ),
        memory_seed=memory_seed,
        preload=preload,
        recorder=recorder,
        fast_forward=fast_forward,
    )
    return engine.run()
