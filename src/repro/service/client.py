"""Client side of the sweep service: a connection class and a load
generator.

:class:`ServiceClient` is a thin JSONL-over-TCP connection (one
request/response pair at a time, matching the server's protocol).
Constructed with a :class:`~repro.experiments.resilience.RetryPolicy`
it becomes resilient: idempotent requests (ping / stats / sweep) that
hit a dead or dying connection reconnect and resend with
deterministic-jittered exponential backoff, and an ``overloaded``
response is retried after the server's ``retry_after_ms`` hint.
Resubmitting a sweep is safe by construction — points are
content-addressed (:meth:`~repro.service.core.PointSpec.key`), so the
server's single-flight registry and warm cache absorb the duplicate
instead of simulating twice.

:func:`run_loadgen` is the measured "heavy traffic" harness: it points
``--clients`` concurrent connections at one server, each requesting an
*identical* grid, and runs the whole thing twice — a **cold** pass
(nothing warm, so the single-flight registry must collapse the N
identical jobs into one simulation per unique point) and a **warm**
pass (every point a dict hit).  Per-pass wall time, latency
percentiles, throughput (points served/sec), and the service's counter
deltas land in a JSON report (``BENCH_service.json`` in CI), and the
dedup claims become assertable numbers:

* cold pass: ``simulated == unique_points`` — N clients cost one
  simulation per point;
* warm pass: ``simulated == 0`` — the common case is a dict lookup.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from ..experiments.resilience import RetryPolicy
from ..experiments.runner import RunScale
from .core import SERVICE_SCHEMA_VERSION, expand_points

#: Seconds the loadgen keeps retrying its first connection (the CI
#: smoke starts the server as a background job, so there is a race).
CONNECT_RETRY_SECONDS = 10.0

#: Operations safe to resend after a transport failure.  ``sweep`` is
#: idempotent because points are content-addressed: the server's
#: single-flight registry / warm cache dedup a resubmission.
#: ``shutdown`` is *not* retried — resending it to a server that
#: already acted on it is a different request.
IDEMPOTENT_OPS = frozenset({"ping", "stats", "sweep"})


class ServiceClient:
    """One JSONL connection to a sweep server (async).

    Args:
        host, port: the server address.
        retry: optional :class:`RetryPolicy`; when set, idempotent
            requests survive connection loss (reconnect + resend with
            jittered exponential backoff) and honor the server's
            ``retry_after_ms`` backoff hint on ``overloaded``
            responses.  ``None`` (the default) keeps the strict
            one-shot transport of a test harness.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self,
                      retry_seconds: float = 0.0) -> "ServiceClient":
        """Open the connection, optionally retrying a refused server."""
        deadline = time.monotonic() + retry_seconds
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port)
                return self
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"cannot connect to {self.host}:{self.port}: "
                        f"{error}") from None
                await asyncio.sleep(0.1)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, payload: dict,
                      idempotent: Optional[bool] = None) -> dict:
        """One request/response round trip; raises on protocol errors.

        With a :class:`RetryPolicy` configured and an idempotent
        operation (``idempotent`` defaults from :data:`IDEMPOTENT_OPS`),
        transport failures — connection refused/reset mid-flight, a
        torn response line — reconnect and resend up to
        ``retry.max_attempts`` times with jittered exponential
        backoff; ``overloaded`` responses wait out the server's
        ``retry_after_ms`` hint before resending.
        """
        if idempotent is None:
            idempotent = (isinstance(payload, dict)
                          and payload.get("op") in IDEMPOTENT_OPS)
        if self.retry is None or not idempotent:
            return await self._roundtrip(payload)
        attempts = max(1, self.retry.max_attempts)
        for attempt in range(1, attempts + 1):
            try:
                if self._writer is None:
                    await self.connect()
                response = await self._roundtrip(payload)
            except (OSError, ValueError, ServiceError) as error:
                await self.close()
                if attempt >= attempts:
                    raise ServiceError(
                        f"request to {self.host}:{self.port} failed after "
                        f"{attempt} attempt(s): {error}") from None
                await asyncio.sleep(self._backoff(attempt))
                continue
            if (response.get("error_type") == "ServiceOverloadedError"
                    and attempt < attempts):
                await asyncio.sleep(self._backoff(
                    attempt, response.get("retry_after_ms")))
                continue
            return response
        return response  # pragma: no cover — loop always returns/raises

    async def _roundtrip(self, payload: dict) -> dict:
        if self._writer is None:
            raise ServiceError("client is not connected")
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def _backoff(self, attempt: int,
                 retry_after_ms: Optional[float] = None) -> float:
        """Deterministic-jittered delay before resend ``attempt``.

        The jitter fraction (0.5–1.0 of the policy delay) derives from
        a hash of the address and attempt number, so a fleet of
        clients desynchronizes without any client being random —
        reruns reproduce the exact same schedule.  A server-provided
        ``retry_after_ms`` hint acts as a floor.
        """
        base = self.retry.delay(attempt)
        digest = hashlib.sha256(
            f"{self.host}:{self.port}:{attempt}".encode("utf-8")).digest()
        delay = base * (0.5 + digest[0] / 512)
        if retry_after_ms:
            delay = max(delay, float(retry_after_ms) / 1000.0)
        return delay

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict:
        response = await self.request({"op": "stats"})
        if not response.get("ok"):
            raise ServiceError(f"stats failed: {response.get('error')}")
        return response

    async def sweep(self, *, points: Sequence[Sequence] = None,
                    benchmarks: Sequence[str] = (),
                    designs: Sequence[str] = (),
                    windows: Sequence[int] = (3,),
                    scale: Optional[RunScale] = None,
                    priority: int = 0,
                    deadline_ms: Optional[float] = None) -> dict:
        request: Dict[str, object] = {"op": "sweep", "priority": priority}
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if points is not None:
            request["points"] = [list(point) for point in points]
        else:
            request["benchmarks"] = list(benchmarks)
            request["designs"] = list(designs)
            request["windows"] = list(windows)
        if scale is not None:
            request["scale"] = {
                "num_warps": scale.num_warps,
                "trace_scale": scale.trace_scale,
                "memory_seed": scale.memory_seed,
                "num_sms": scale.num_sms,
            }
        return await self.request(request)

    async def shutdown(self, mode: Optional[str] = None,
                       drain_timeout: Optional[float] = None) -> dict:
        """Ask the server to stop; ``mode="drain"`` finishes in-flight
        work first (bounded by ``drain_timeout`` seconds).  Never
        retried: resending a shutdown is not idempotent."""
        request: Dict[str, object] = {"op": "shutdown"}
        if mode is not None:
            request["mode"] = mode
        if drain_timeout is not None:
            request["drain_timeout"] = drain_timeout
        return await self.request(request, idempotent=False)


def _latency_summary(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    if not ordered:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return {
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(0.50),
        "p95": percentile(0.95),
        "max": ordered[-1],
    }


async def _run_pass(host: str, port: int, clients: int,
                    points: List[List], scale: RunScale,
                    priority: int) -> dict:
    """One pass: ``clients`` concurrent identical sweep jobs."""

    async def one_client() -> dict:
        client = ServiceClient(host, port)
        await client.connect()
        try:
            started = time.perf_counter()
            response = await client.sweep(points=points, scale=scale,
                                          priority=priority)
            seconds = time.perf_counter() - started
        finally:
            await client.close()
        if not response.get("ok"):
            raise ServiceError(
                f"sweep failed: {response.get('error', response)}")
        return {"seconds": seconds, "response": response}

    started = time.perf_counter()
    finished = await asyncio.gather(*[one_client() for _ in range(clients)])
    wall = time.perf_counter() - started
    latencies = [item["seconds"] for item in finished]
    served = sum(len(item["response"]["points"]) for item in finished)
    sources: Dict[str, int] = {}
    for item in finished:
        for source, count in item["response"]["sources"].items():
            sources[source] = sources.get(source, 0) + count
    return {
        "wall_seconds": wall,
        "points_served": served,
        "points_per_sec": served / wall if wall else 0.0,
        "latency": _latency_summary(latencies),
        "client_sources": sources,
    }


async def _loadgen_async(host: str, port: int, *, clients: int,
                         benchmarks: Sequence[str],
                         designs: Sequence[str],
                         windows: Sequence[int],
                         scale: RunScale,
                         max_points: Optional[int],
                         priority: int,
                         shutdown: bool) -> dict:
    specs = expand_points(benchmarks, designs, windows, scale)
    if max_points is not None:
        if max_points < 1:
            raise ServiceError(f"--points must be >= 1, got {max_points}")
        specs = specs[:max_points]
    wire_points = [[spec.benchmark, spec.design, spec.window]
                   for spec in specs]

    control = ServiceClient(host, port)
    await control.connect(retry_seconds=CONNECT_RETRY_SECONDS)
    try:
        await control.ping()
        report: dict = {
            "schema": SERVICE_SCHEMA_VERSION,
            "host": host,
            "port": port,
            "clients": clients,
            "benchmarks": sorted({spec.benchmark for spec in specs}),
            "designs": sorted({spec.design for spec in specs}),
            "windows": sorted({spec.window for spec in specs}),
            "scale": {
                "num_warps": scale.num_warps,
                "trace_scale": scale.trace_scale,
                "memory_seed": scale.memory_seed,
                "num_sms": scale.num_sms,
            },
            "unique_points": len(specs),
            "requested_per_client": len(wire_points),
            "passes": {},
        }
        for name in ("cold", "warm"):
            before = (await control.stats())["stats"]
            result = await _run_pass(host, port, clients, wire_points,
                                     scale, priority)
            after = (await control.stats())["stats"]
            result["service"] = {
                key: after[key] - before[key] for key in after
            }
            report["passes"][name] = result
        cold = report["passes"]["cold"]["service"]
        warm = report["passes"]["warm"]["service"]
        report["single_flight"] = {
            # The cold pass may legitimately resolve points from the
            # on-disk cache or a pre-warmed memo; the dedup claim is
            # that *at most* one execution per unique point happened,
            # and that nothing was executed twice.
            "cold_simulated": cold["simulated"],
            "cold_resolved_once": (cold["simulated"] + cold["from_cache"]
                                   + cold["from_memo"]),
            "cold_coalesced": cold["coalesced"],
            "cold_warm_hits": cold["warm_hits"],
            "warm_simulated": warm["simulated"],
            "warm_hits": warm["warm_hits"],
            "dedup_ok": (
                cold["simulated"] <= len(specs)
                and (cold["simulated"] + cold["from_cache"]
                     + cold["from_memo"]) == len(specs)
                and warm["simulated"] == 0
                and warm["warm_hits"] == clients * len(specs)
            ),
        }
        if shutdown:
            await control.shutdown()
    finally:
        await control.close()
    return report


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    clients: int = 8,
    benchmarks: Sequence[str] = ("BFS", "NW"),
    designs: Sequence[str] = ("baseline", "bow"),
    windows: Sequence[int] = (3,),
    scale: RunScale = None,
    max_points: Optional[int] = None,
    priority: int = 0,
    shutdown: bool = False,
    report_path: Optional[str] = None,
) -> dict:
    """Drive a running server with concurrent identical jobs; report.

    Runs a cold pass and a warm pass of ``clients`` concurrent
    connections (see the module docstring) and returns the combined
    report; with ``report_path`` the report is also written as JSON
    (the ``BENCH_service.json`` CI artifact).  ``shutdown`` sends the
    server a shutdown op after the final pass.
    """
    if clients < 1:
        raise ServiceError(f"clients must be >= 1, got {clients}")
    if scale is None:
        scale = RunScale(num_warps=4, trace_scale=0.1)
    report = asyncio.run(_loadgen_async(
        host, port, clients=clients, benchmarks=benchmarks,
        designs=designs, windows=windows, scale=scale,
        max_points=max_points, priority=priority, shutdown=shutdown,
    ))
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def format_report(report: dict) -> str:
    """A human-readable summary of one loadgen report."""
    lines = [
        f"loadgen: {report['clients']} client(s) x "
        f"{report['requested_per_client']} point(s) "
        f"({report['unique_points']} unique) against "
        f"{report['host']}:{report['port']}",
    ]
    for name, data in report["passes"].items():
        latency = data["latency"]
        service = data["service"]
        lines.append(
            f"  {name:4s}: {data['points_served']} point(s) in "
            f"{data['wall_seconds']:.2f}s = "
            f"{data['points_per_sec']:.1f} points/sec | latency "
            f"mean {latency['mean']:.3f}s p95 {latency['p95']:.3f}s | "
            f"simulated {service['simulated']}, "
            f"coalesced {service['coalesced']}, "
            f"warm hits {service['warm_hits']}"
        )
    flight = report["single_flight"]
    verdict = "OK" if flight["dedup_ok"] else "FAILED"
    lines.append(
        f"  single-flight {verdict}: cold executed "
        f"{flight['cold_resolved_once']}/{report['unique_points']} "
        f"unique point(s) once ({flight['cold_simulated']} simulated), "
        f"warm simulated {flight['warm_simulated']}"
    )
    return "\n".join(lines)
