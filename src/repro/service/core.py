"""Single-flight sweep service: the in-process job engine.

:class:`SweepService` turns the library's sweep machinery
(:func:`~repro.experiments.grid.run_grid` + the on-disk
:class:`~repro.experiments.cache.RunCache`) into a long-running,
concurrency-safe job engine.  Clients submit sweep specs — lists of
``(benchmark, design, window)`` points at one
:class:`~repro.experiments.runner.RunScale` — and the service resolves
each point through four layers:

1. **warm dict cache** — results this process has already produced, a
   plain dict lookup keyed by :func:`~repro.experiments.cache.run_key`;
2. **single-flight registry** — points currently *in flight* for any
   client: a later request for the same key attaches to the existing
   :class:`asyncio.Future` instead of scheduling new work, so N
   concurrent clients asking for the same grid cost one simulation;
3. **priority queue + batching** — genuinely new points are queued
   (lower ``priority`` first, FIFO within a priority) and drained in
   batches; each batch becomes one reentrant ``run_grid(points=...)``
   call on a reused thread-pool executor, preserving the grid engine's
   memo/disk-cache layering and retry/drain semantics unchanged;
4. **``run_grid`` itself** — which still consults the process memo and
   the ``RunCache`` before simulating, so a service restart only costs
   disk reads, not recomputation.

Production hardening (see DESIGN.md §10 "Failure semantics &
recovery"):

* **Admission control** — ``max_queued_points`` / ``max_inflight_jobs``
  bound the work the service will hold; a job that would overflow them
  is shed at admission with a typed
  :class:`~repro.errors.ServiceOverloadedError` carrying a
  ``retry_after_ms`` hint, so load never turns into unbounded memory.
* **Deadlines** — ``submit(..., deadline_ms=...)`` expires points this
  job scheduled that are still *queued* when the deadline passes:
  their waiters resolve with a typed
  :class:`~repro.errors.ServiceTimeoutError` and the simulator never
  runs for them.  Points whose batch already started run to completion
  (the result lands in the warm cache for everyone).
* **Write-ahead journal** — with a ``journal``, every job/point
  transition is durably recorded (:mod:`repro.service.journal`);
  :meth:`SweepService.recover` replays scheduled-but-unresolved points
  through the warm ``RunCache`` after a crash, so a SIGKILLed server
  resumes with zero duplicated simulations.
* **Graceful drain** — :meth:`drain` stops admission, finishes every
  accepted in-flight point (bounded by a hard timeout), flushes the
  journal and telemetry, then closes.  A plain :meth:`close` resolves
  still-pending waiters with a typed ``ServiceError`` instead of
  leaving them hung.

Failures keep their library semantics: a point that exhausts its
:class:`~repro.experiments.resilience.RetryPolicy` resolves its future
with the same :class:`~repro.errors.SweepPointError` a strict sweep
would raise, every job sharing that flight sees it, and the key leaves
the registry so a later request can retry.

Telemetry: with a ``telemetry_dir`` every job streams JSONL records
(``job-start`` / ``job-point`` / ``job-failure`` / ``job-summary``)
to its own ``job-NNNN.jsonl`` file; a service-wide sink (``telemetry``)
additionally receives every job's records stamped with the job id,
plus one ``batch`` record per dispatched batch — see
:class:`~repro.observe.telemetry.TelemetryTee` /
:class:`~repro.observe.telemetry.StampedTelemetry`.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field, fields
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..experiments import runner
from ..experiments.cache import RunCache, run_key
from ..experiments.grid import GridPoint, run_grid
from ..experiments.resilience import RetryPolicy
from ..experiments.runner import RunScale
from ..gpu.sm import SimulationResult
from ..observe.telemetry import StampedTelemetry, TelemetryTee, TelemetryWriter
from . import journal as journal_module
from .journal import Journal, JournalState

#: Version stamped into service telemetry and loadgen reports.
SERVICE_SCHEMA_VERSION = 1

#: How long the dispatcher waits after a wake-up for more points to
#: accumulate before cutting a batch (seconds).  Small enough to be
#: invisible per-job, large enough that a burst of concurrent clients
#: lands in one ``run_grid`` call.
DEFAULT_BATCH_WINDOW = 0.02

#: Largest number of points dispatched as one ``run_grid`` call.
DEFAULT_MAX_BATCH = 64

#: ``retry_after_ms`` bounds for shed-load responses: never tell a
#: client to hammer back instantly, never park one for over a minute.
MIN_RETRY_AFTER_MS = 100
MAX_RETRY_AFTER_MS = 60_000

#: Assumed seconds per point before the service has measured a batch
#: (seeds the ``retry_after_ms`` estimate).
DEFAULT_POINT_SECONDS = 0.25


@dataclass(frozen=True)
class PointSpec:
    """One fully-normalized grid point at a concrete scale.

    ``window`` is always the design's *effective* window and
    ``benchmark`` is upper-cased, so equal specs produce equal
    :meth:`key` digests — the invariant the single-flight registry
    relies on.  Build through :meth:`create`, which normalizes and
    validates.
    """

    benchmark: str
    design: str
    window: int
    scale: RunScale

    @classmethod
    def create(cls, benchmark: str, design: str, window: int,
               scale: RunScale) -> "PointSpec":
        runner.validate_design(design)
        return cls(
            benchmark=benchmark.upper(),
            design=design,
            window=runner.effective_window(design, window),
            scale=scale,
        )

    def key(self) -> str:
        """The content-addressed cache key (shared with ``RunCache``)."""
        return run_key(self.benchmark, self.design, self.window, self.scale)

    def label(self) -> str:
        suffix = f" IW{self.window}" if self.window else ""
        return f"{self.benchmark}/{self.design}{suffix}"


@dataclass
class ServiceStats:
    """Monotonic counters describing everything the service resolved.

    ``points_requested`` splits exactly into ``warm_hits`` (dict-cache
    lookups), ``coalesced`` (attached to an in-flight future), and
    ``scheduled`` (genuinely new work).  ``simulated`` / ``from_cache``
    / ``from_memo`` describe how scheduled points resolved inside
    ``run_grid``, so ``simulated`` is the number the single-flight
    claim is measured by.  ``overloaded`` counts jobs shed at
    admission, ``expired`` counts queued points cancelled by a job
    deadline, ``disconnects`` counts clients that vanished
    mid-response, and ``recovered_jobs`` / ``recovered_points`` report
    what :meth:`SweepService.recover` replayed from the journal.
    """

    jobs: int = 0
    points_requested: int = 0
    warm_hits: int = 0
    coalesced: int = 0
    scheduled: int = 0
    batches: int = 0
    simulated: int = 0
    from_cache: int = 0
    from_memo: int = 0
    failures: int = 0
    overloaded: int = 0
    expired: int = 0
    disconnects: int = 0
    recovered_jobs: int = 0
    recovered_points: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {item.name: getattr(self, item.name)
                for item in fields(self)}

    def snapshot(self) -> "ServiceStats":
        return ServiceStats(**self.as_dict())


@dataclass(frozen=True)
class PointOutcome:
    """How one requested point resolved for one job.

    ``source`` is ``warm`` / ``flight`` / ``memo`` / ``cache`` /
    ``sim`` / ``expired`` / ``failed`` — the first two are
    service-layer provenance, ``expired`` marks a deadline
    cancellation, the rest are ``run_grid``'s own record for the batch
    that carried the point.
    """

    spec: PointSpec
    key: str
    result: Optional[SimulationResult]
    source: str
    seconds: float
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class JobResult:
    """Everything one :meth:`SweepService.submit` call resolved."""

    job_id: int
    outcomes: List[PointOutcome] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def sources(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.source] = tally.get(outcome.source, 0) + 1
        return tally


@dataclass
class RecoveryReport:
    """What :meth:`SweepService.recover` found and replayed.

    Attributes:
        unfinished_jobs: jobs the journal shows accepted but never
            finished.
        unresolved_points: points scheduled but never resolved.
        replayed: points actually resubmitted (unresolved minus any
            skipped as unreconstructible).
        failed: replayed points that failed again.
        skipped: journal points that no longer parse against the
            current registry (renamed design, schema drift).
        corrupt_lines: journal lines skipped as unparseable.
    """

    unfinished_jobs: int = 0
    unresolved_points: int = 0
    replayed: int = 0
    failed: int = 0
    skipped: int = 0
    corrupt_lines: int = 0


class _Queued:
    """A scheduled point plus the future its waiters share.

    ``state`` walks ``queued`` -> ``dispatched`` | ``expired``: only a
    ``queued`` entry may be dispatched or expired, which is what makes
    "expired points never simulate" and "dispatched points always
    finish" mutually exclusive by construction.
    """

    __slots__ = ("spec", "key", "future", "state", "deadline",
                 "deadline_ms", "timer")

    def __init__(self, spec: PointSpec, key: str,
                 future: "asyncio.Future",
                 deadline: Optional[float] = None,
                 deadline_ms: Optional[float] = None) -> None:
        self.spec = spec
        self.key = key
        self.future = future
        self.state = "queued"
        self.deadline = deadline
        self.deadline_ms = deadline_ms
        self.timer: Optional[asyncio.TimerHandle] = None


class SweepService:
    """The single-flight job engine (see the module docstring).

    Not thread-safe: construct and drive it from one event loop.  The
    blocking ``run_grid`` calls run on a private, reused
    thread-pool executor so the loop stays responsive while a batch
    simulates.

    Args:
        cache: optional :class:`RunCache` shared with the batch runs.
        jobs: worker processes *inside* each ``run_grid`` call
            (1 = serial, the safe default for a service that already
            interleaves batches).
        retry: per-point retry policy for batch runs.
        batch_window: seconds the dispatcher lingers after a wake-up so
            a burst of submissions lands in one batch.
        max_batch: largest single ``run_grid`` call.
        max_queued_points: admission bound on points waiting for
            dispatch; a job whose new points would overflow it is shed
            with :class:`ServiceOverloadedError` (``None`` = unbounded,
            the pre-hardening behaviour).
        max_inflight_jobs: admission bound on concurrently-active
            ``submit`` calls (``None`` = unbounded).
        journal: a path or :class:`~repro.service.journal.Journal` for
            the crash-safe write-ahead job journal (``None`` disables
            journaling and recovery).
        telemetry: optional service-wide sink (``emit(dict)``).
        telemetry_dir: when set, each job streams its records to
            ``<dir>/job-NNNN.jsonl``.
    """

    def __init__(
        self,
        cache: Optional[RunCache] = None,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_queued_points: Optional[int] = None,
        max_inflight_jobs: Optional[int] = None,
        journal: Union[None, str, Path, Journal] = None,
        telemetry=None,
        telemetry_dir: Optional[str] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ServiceError(
                f"batch_window must be >= 0, got {batch_window}")
        if max_queued_points is not None and max_queued_points < 1:
            raise ServiceError(
                f"max_queued_points must be >= 1, got {max_queued_points}")
        if max_inflight_jobs is not None and max_inflight_jobs < 1:
            raise ServiceError(
                f"max_inflight_jobs must be >= 1, got {max_inflight_jobs}")
        self._cache = cache
        self._jobs = max(1, int(jobs))
        self._retry = retry
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._max_queued_points = max_queued_points
        self._max_inflight_jobs = max_inflight_jobs
        self._journal = journal  # coerced/opened lazily in start()
        self._journal_state: Optional[JournalState] = None
        self._incarnation = 0
        self._telemetry = telemetry
        self._telemetry_dir = (Path(telemetry_dir)
                               if telemetry_dir is not None else None)
        self.stats = ServiceStats()
        self._warm: Dict[str, SimulationResult] = {}
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._queue: List[Tuple[int, int, _Queued]] = []
        self._queued_count = 0
        self._seq = 0
        self._job_ids = 0
        self._active_jobs = 0
        self._ewma_point_seconds: Optional[float] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        self._executor = None
        self._closed = False
        self._draining = False

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "SweepService":
        """Start the dispatcher task (idempotent).

        With a journal configured, any existing journal file is
        replayed into :attr:`journal_state` (consumed by
        :meth:`recover`) and a new ``service-start`` incarnation record
        is appended.
        """
        if self._dispatcher is not None:
            return self
        from concurrent.futures import ThreadPoolExecutor

        if self._telemetry_dir is not None:
            self._telemetry_dir.mkdir(parents=True, exist_ok=True)
        if self._journal is not None:
            self._journal = journal_module.open_journal(self._journal)
            self._journal_state = journal_module.replay(self._journal.path)
            self._incarnation = self._journal_state.incarnations + 1
            self._journal.record("service-start",
                                 incarnation=self._incarnation)
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service")
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._closed = False
        self._draining = False
        return self

    async def recover(self) -> RecoveryReport:
        """Replay scheduled-but-unresolved journal points; report.

        Resubmits every point the journal shows as owed through the
        normal layering, so work that *finished* before the crash is
        answered by the warm :class:`RunCache` (or memo) and only the
        genuinely interrupted points simulate — zero duplicated
        simulations.  Recovery bypasses admission control: the service
        accepted these points once already.
        """
        if self._dispatcher is None or self._closed:
            raise ServiceError("service is not running (call start())")
        state = self._journal_state or JournalState()
        report = RecoveryReport(
            unfinished_jobs=len(state.unfinished_jobs),
            unresolved_points=len(state.unresolved_points),
            corrupt_lines=state.corrupt_lines,
        )
        self.stats.recovered_jobs += report.unfinished_jobs
        groups: Dict[RunScale, List[PointSpec]] = {}
        for point in state.unresolved_points.values():
            try:
                scale = RunScale(**point["scale"])
                spec = PointSpec.create(point["benchmark"], point["design"],
                                        int(point["window"]), scale)
            except (ReproError, TypeError, ValueError, KeyError):
                report.skipped += 1
                continue
            groups.setdefault(scale, []).append(spec)
        for specs in groups.values():
            job = await self.submit(specs, _bypass_admission=True)
            report.replayed += len(job.outcomes)
            report.failed += job.failed
        self.stats.recovered_points += report.replayed
        return report

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work, finish what was accepted, then close.

        New jobs are shed with :class:`ServiceOverloadedError` the
        moment drain begins; queued and in-flight points run to
        completion.  ``timeout`` is the hard bound: when it elapses,
        remaining waiters are resolved with a typed ``ServiceError``
        and the service closes anyway.  Returns ``True`` when every
        accepted point finished within the budget.
        """
        if self._closed:
            return True
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        drained = True
        while self._active_jobs or self._inflight or self._queued_count:
            if deadline is not None and loop.time() >= deadline:
                drained = False
                break
            await asyncio.sleep(0.01)
        await self.close()
        return drained

    async def close(self) -> None:
        """Stop the dispatcher and resolve every pending waiter.

        Waiters still attached to unresolved futures get a typed
        ``ServiceError("service closed")`` — ``await submit(...)``
        returns (with failed outcomes) instead of hanging forever.
        Unfinished work stays *unresolved in the journal*, so a
        restart with :meth:`recover` picks it back up.
        """
        already_stopped = (self._closed and self._dispatcher is None
                           and not self._inflight)
        self._closed = True
        self._draining = True
        if already_stopped:
            return
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for _, _, queued in self._queue:
            if queued.timer is not None:
                queued.timer.cancel()
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(ServiceError("service closed"))
        self._inflight.clear()
        self._queue.clear()
        self._queued_count = 0
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if isinstance(self._journal, Journal) and self._incarnation:
            self._journal.record("service-stop",
                                 incarnation=self._incarnation)
            self._journal.close()

    async def __aenter__(self) -> "SweepService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- admission ----------------------------------------------------

    def retry_after_ms(self) -> int:
        """The backoff hint attached to shed-load responses.

        Estimates when capacity frees up from the current backlog and
        the measured per-point batch cost (EWMA), clamped to
        [:data:`MIN_RETRY_AFTER_MS`, :data:`MAX_RETRY_AFTER_MS`].
        """
        per_point = self._ewma_point_seconds or DEFAULT_POINT_SECONDS
        backlog = max(len(self._inflight), 1)
        estimate = int(backlog * per_point * 1000)
        return max(MIN_RETRY_AFTER_MS, min(MAX_RETRY_AFTER_MS, estimate))

    def _admit(self, new_points: int) -> None:
        """Shed the job with a typed error when bounds would burst."""
        if self._draining:
            self.stats.overloaded += 1
            raise ServiceOverloadedError(
                "service is draining and no longer accepts jobs",
                retry_after_ms=self.retry_after_ms())
        if (self._max_inflight_jobs is not None
                and self._active_jobs >= self._max_inflight_jobs):
            self.stats.overloaded += 1
            raise ServiceOverloadedError(
                f"overloaded: {self._active_jobs} in-flight job(s) at the "
                f"max_inflight_jobs={self._max_inflight_jobs} bound",
                retry_after_ms=self.retry_after_ms())
        if (self._max_queued_points is not None
                and self._queued_count + new_points
                > self._max_queued_points):
            self.stats.overloaded += 1
            raise ServiceOverloadedError(
                f"overloaded: {new_points} new point(s) would burst the "
                f"queue ({self._queued_count} queued, "
                f"max_queued_points={self._max_queued_points})",
                retry_after_ms=self.retry_after_ms())

    # -- submission ---------------------------------------------------

    async def submit(self, specs: Sequence[PointSpec],
                     priority: int = 0,
                     deadline_ms: Optional[float] = None,
                     _bypass_admission: bool = False) -> JobResult:
        """Resolve every spec, sharing flights with concurrent jobs.

        Returns a :class:`JobResult` with one :class:`PointOutcome`
        per *unique* requested point (duplicates within one job
        collapse).  Point failures are outcomes, not exceptions — a
        job only raises for service-level problems: shutdown
        (``ServiceError``) or load shedding
        (:class:`ServiceOverloadedError`).  With ``deadline_ms``,
        points this job schedules that are still queued when the
        deadline passes expire with a typed
        :class:`ServiceTimeoutError` outcome instead of simulating.
        """
        if self._dispatcher is None or self._closed:
            raise ServiceError("service is not running (call start())")
        if not specs:
            raise ServiceError("empty job: no points")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServiceError(
                f"deadline_ms must be positive, got {deadline_ms}")

        # Classify before mutating anything so admission is atomic:
        # a shed job leaves no trace in the queue or the registry.
        plan: List[Tuple[PointSpec, str, str]] = []
        seen_keys = set()
        new_points = 0
        for spec in specs:
            key = spec.key()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            if key in self._warm:
                how = "warm"
            elif key in self._inflight:
                how = "flight"
            else:
                how = "queued"
                new_points += 1
            plan.append((spec, key, how))
        if not _bypass_admission:
            self._admit(new_points)

        self._job_ids += 1
        job_id = self._job_ids
        self.stats.jobs += 1
        self._active_jobs += 1
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        deadline = (loop.time() + deadline_ms / 1000.0
                    if deadline_ms is not None else None)
        telemetry = self._job_telemetry(job_id)
        self._journal_record(
            "job-accepted", job=job_id, points=len(plan),
            priority=priority, deadline_ms=deadline_ms,
            scale=_scale_dict(specs[0].scale))

        waiters: List[Tuple[PointSpec, str, object, str]] = []
        for spec, key, how in plan:
            self.stats.points_requested += 1
            if how == "warm":
                self.stats.warm_hits += 1
                waiters.append((spec, key, self._warm[key], "warm"))
            elif how == "flight":
                self.stats.coalesced += 1
                waiters.append((spec, key, self._inflight[key], "flight"))
            else:
                self.stats.scheduled += 1
                future = loop.create_future()
                self._inflight[key] = future
                queued = _Queued(spec, key, future,
                                 deadline=deadline, deadline_ms=deadline_ms)
                if deadline is not None:
                    queued.timer = loop.call_at(
                        deadline, self._expire_entry, queued)
                self._seq += 1
                self._queued_count += 1
                heapq.heappush(self._queue,
                               (priority, self._seq, queued))
                self._journal_record(
                    "point-scheduled", job=job_id, key=key,
                    benchmark=spec.benchmark, design=spec.design,
                    window=spec.window, scale=_scale_dict(spec.scale))
                waiters.append((spec, key, future, "queued"))
        if self._wakeup is not None:
            self._wakeup.set()

        if telemetry is not None:
            telemetry.emit({
                "type": "job-start",
                "schema": SERVICE_SCHEMA_VERSION,
                "points": len(waiters),
                "priority": priority,
                "deadline_ms": deadline_ms,
                "scale": _scale_dict(specs[0].scale),
            })

        job = JobResult(job_id=job_id)
        try:
            for spec, key, pending, how in waiters:
                outcome = await self._await_point(spec, key, pending, how)
                job.outcomes.append(outcome)
                if telemetry is not None:
                    telemetry.emit(_outcome_record(outcome))
        finally:
            self._active_jobs -= 1
        job.seconds = time.perf_counter() - started
        if telemetry is not None:
            telemetry.emit({
                "type": "job-summary",
                "points": len(job.outcomes),
                "failed": job.failed,
                "seconds": job.seconds,
                "sources": job.sources(),
            })
        self._close_job_telemetry(telemetry)
        self._journal_record("job-finished", job=job_id, failed=job.failed)
        return job

    async def _await_point(self, spec: PointSpec, key: str, pending,
                           how: str) -> PointOutcome:
        if how == "warm":
            return PointOutcome(spec=spec, key=key, result=pending,
                                source="warm", seconds=0.0)
        started = time.perf_counter()
        try:
            # shield: one cancelled client must not kill a flight that
            # other clients are attached to.
            result, source, seconds = await asyncio.shield(pending)
        except asyncio.CancelledError:
            raise
        except ServiceTimeoutError as error:
            return PointOutcome(
                spec=spec, key=key, result=None, source="expired",
                seconds=time.perf_counter() - started,
                error=str(error), error_type=type(error).__name__,
            )
        except ReproError as error:
            return PointOutcome(
                spec=spec, key=key, result=None,
                source="flight" if how == "flight" else "failed",
                seconds=time.perf_counter() - started,
                error=str(error), error_type=type(error).__name__,
            )
        if how == "flight":
            return PointOutcome(spec=spec, key=key, result=result,
                                source="flight",
                                seconds=time.perf_counter() - started)
        return PointOutcome(spec=spec, key=key, result=result,
                            source=source, seconds=seconds)

    # -- deadlines ----------------------------------------------------

    def _expire_entry(self, queued: _Queued) -> None:
        """Deadline fired for a still-queued point: cancel it.

        Only ``queued`` entries expire — a dispatched batch always
        runs to completion (and warms the cache).  The key leaves the
        single-flight registry so a later job can schedule it afresh.
        """
        if queued.state != "queued":
            return
        queued.state = "expired"
        self._queued_count -= 1
        self.stats.expired += 1
        self._inflight.pop(queued.key, None)
        self._journal_record("point-resolved", key=queued.key,
                             ok=False, source="expired")
        if not queued.future.done():
            queued.future.set_exception(ServiceTimeoutError(
                queued.spec.label(), queued.deadline_ms or 0.0))

    # -- dispatch -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queued_count:
                continue
            if self._batch_window:
                # Linger so a burst of concurrent submissions becomes
                # one batch instead of many single-point ones.
                await asyncio.sleep(self._batch_window)
            while self._queued_count:
                batch = self._pop_batch()
                if batch:
                    await self._run_batch(batch)

    def _pop_batch(self) -> List[_Queued]:
        """Highest-priority points sharing one scale, up to max_batch.

        ``run_grid`` takes a single :class:`RunScale`, so a batch is
        cut at the first scale boundary; points at other scales stay
        queued for the next batch.  Expired entries (and entries whose
        deadline lapsed since their timer was scheduled) are skipped —
        an expired point never dispatches.
        """
        batch: List[_Queued] = []
        leftover: List[Tuple[int, int, _Queued]] = []
        scale: Optional[RunScale] = None
        loop = asyncio.get_running_loop()
        while self._queue and len(batch) < self._max_batch:
            entry = heapq.heappop(self._queue)
            queued = entry[2]
            if queued.state != "queued":
                continue  # expired (or defensively, already dispatched)
            if (queued.deadline is not None
                    and loop.time() >= queued.deadline):
                self._expire_entry(queued)
                continue
            if scale is None:
                scale = queued.spec.scale
            if queued.spec.scale == scale:
                queued.state = "dispatched"
                if queued.timer is not None:
                    queued.timer.cancel()
                    queued.timer = None
                self._queued_count -= 1
                batch.append(queued)
            else:
                leftover.append(entry)
        for entry in leftover:
            heapq.heappush(self._queue, entry)
        return batch

    async def _run_batch(self, batch: List[_Queued]) -> None:
        scale = batch[0].spec.scale
        points = [GridPoint(q.spec.benchmark, q.spec.design, q.spec.window)
                  for q in batch]
        self.stats.batches += 1
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            grid = await loop.run_in_executor(
                self._executor,
                partial(run_grid, (), (), (), scale=scale, jobs=self._jobs,
                        cache=self._cache, retry=self._retry, strict=False,
                        points=points),
            )
        except Exception as error:  # noqa: BLE001 — fail the whole batch
            for queued in batch:
                self._inflight.pop(queued.key, None)
                self._journal_record("point-resolved", key=queued.key,
                                     ok=False, source="failed")
                if not queued.future.done():
                    queued.future.set_exception(
                        ServiceError(f"batch execution failed: {error}"))
            return
        elapsed = time.perf_counter() - started
        per_point = elapsed / max(len(batch), 1)
        self._ewma_point_seconds = (
            per_point if self._ewma_point_seconds is None
            else 0.3 * per_point + 0.7 * self._ewma_point_seconds)
        provenance = {
            (record.point.benchmark.upper(), record.point.design,
             record.point.window): (record.source, record.seconds)
            for record in grid.records
        }
        for queued in batch:
            self._inflight.pop(queued.key, None)
            spec = queued.spec
            try:
                result = grid.get(spec.benchmark, spec.design, spec.window)
            except ReproError as error:
                self.stats.failures += 1
                self._journal_record("point-resolved", key=queued.key,
                                     ok=False, source="failed")
                if not queued.future.done():
                    queued.future.set_exception(error)
                continue
            source, seconds = provenance.get(
                (spec.benchmark, spec.design, spec.window), ("sim", 0.0))
            if source == "sim":
                self.stats.simulated += 1
            elif source == "cache":
                self.stats.from_cache += 1
            else:
                self.stats.from_memo += 1
            self._warm[queued.key] = result
            self._journal_record("point-resolved", key=queued.key,
                                 ok=True, source=source)
            if not queued.future.done():
                queued.future.set_result((result, source, seconds))
        if self._telemetry is not None:
            self._telemetry.emit({
                "type": "batch",
                "schema": SERVICE_SCHEMA_VERSION,
                "points": len(batch),
                "seconds": elapsed,
                "simulated": grid.simulated,
                "from_cache": grid.from_cache,
                "from_memo": grid.from_memo,
                "failed": grid.failed,
                "scale": _scale_dict(scale),
            })

    # -- journal plumbing ---------------------------------------------

    def _journal_record(self, record_type: str, **fields) -> None:
        if isinstance(self._journal, Journal):
            self._journal.record(record_type, **fields)

    # -- telemetry plumbing -------------------------------------------

    def _job_telemetry(self, job_id: int):
        """The sink one job's records go to (per-job file + stamped
        service-wide stream), or ``None`` when neither is configured."""
        writer = None
        if self._telemetry_dir is not None:
            writer = TelemetryWriter(
                str(self._telemetry_dir / f"job-{job_id:04d}.jsonl"))
        stamped = (StampedTelemetry(self._telemetry, job=job_id)
                   if self._telemetry is not None else None)
        if writer is None and stamped is None:
            return None
        tee = TelemetryTee(writer, stamped)
        tee._owned_writer = writer  # closed by _close_job_telemetry
        return tee

    @staticmethod
    def _close_job_telemetry(telemetry) -> None:
        writer = getattr(telemetry, "_owned_writer", None)
        if writer is not None:
            writer.close()

    # -- introspection ------------------------------------------------

    @property
    def warm_points(self) -> int:
        """Entries in the warm dict cache."""
        return len(self._warm)

    @property
    def inflight_points(self) -> int:
        """Keys currently registered as in flight."""
        return len(self._inflight)

    @property
    def queued_points(self) -> int:
        """Points waiting for dispatch (excludes expired/dispatched)."""
        return self._queued_count

    @property
    def active_jobs(self) -> int:
        """``submit`` calls currently being answered."""
        return self._active_jobs

    @property
    def draining(self) -> bool:
        """Whether the service has stopped accepting new jobs."""
        return self._draining

    @property
    def journal(self) -> Optional[Journal]:
        """The opened journal, if one is configured and started."""
        return self._journal if isinstance(self._journal, Journal) else None

    @property
    def journal_state(self) -> Optional[JournalState]:
        """What :meth:`start` replayed from the journal, if anything."""
        return self._journal_state


def _scale_dict(scale: RunScale) -> Dict[str, object]:
    return {
        "num_warps": scale.num_warps,
        "trace_scale": scale.trace_scale,
        "memory_seed": scale.memory_seed,
        "num_sms": scale.num_sms,
    }


def _outcome_record(outcome: PointOutcome) -> dict:
    record = {
        "type": "job-point" if outcome.ok else "job-failure",
        "benchmark": outcome.spec.benchmark,
        "design": outcome.spec.design,
        "window": outcome.spec.window,
        "source": outcome.source,
        "seconds": outcome.seconds,
    }
    if outcome.ok:
        record["cycles"] = outcome.result.counters.cycles
        record["ipc"] = outcome.result.ipc
    else:
        record["error_type"] = outcome.error_type or ""
        record["message"] = outcome.error or ""
    return record


def expand_points(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    windows: Sequence[int],
    scale: RunScale,
) -> List[PointSpec]:
    """The deduplicated cross-product as normalized :class:`PointSpec`\\ s.

    The client-side mirror of ``run_grid``'s grid enumeration: windows
    collapse to effective windows, so the result's length is the
    number of *unique* simulations the request can cost.
    """
    specs: List[PointSpec] = []
    seen = set()
    for benchmark in benchmarks:
        for design in designs:
            for window in windows:
                spec = PointSpec.create(benchmark, design, window, scale)
                if spec in seen:
                    continue
                seen.add(spec)
                specs.append(spec)
    if not specs:
        raise ServiceError("empty sweep: no benchmarks/designs/windows")
    return specs
