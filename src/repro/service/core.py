"""Single-flight sweep service: the in-process job engine.

:class:`SweepService` turns the library's sweep machinery
(:func:`~repro.experiments.grid.run_grid` + the on-disk
:class:`~repro.experiments.cache.RunCache`) into a long-running,
concurrency-safe job engine.  Clients submit sweep specs — lists of
``(benchmark, design, window)`` points at one
:class:`~repro.experiments.runner.RunScale` — and the service resolves
each point through four layers:

1. **warm dict cache** — results this process has already produced, a
   plain dict lookup keyed by :func:`~repro.experiments.cache.run_key`;
2. **single-flight registry** — points currently *in flight* for any
   client: a later request for the same key attaches to the existing
   :class:`asyncio.Future` instead of scheduling new work, so N
   concurrent clients asking for the same grid cost one simulation;
3. **priority queue + batching** — genuinely new points are queued
   (lower ``priority`` first, FIFO within a priority) and drained in
   batches; each batch becomes one reentrant ``run_grid(points=...)``
   call on a reused thread-pool executor, preserving the grid engine's
   memo/disk-cache layering and retry/drain semantics unchanged;
4. **``run_grid`` itself** — which still consults the process memo and
   the ``RunCache`` before simulating, so a service restart only costs
   disk reads, not recomputation.

Failures keep their library semantics: a point that exhausts its
:class:`~repro.experiments.resilience.RetryPolicy` resolves its future
with the same :class:`~repro.errors.SweepPointError` a strict sweep
would raise, every job sharing that flight sees it, and the key leaves
the registry so a later request can retry.

Telemetry: with a ``telemetry_dir`` every job streams JSONL records
(``job-start`` / ``job-point`` / ``job-failure`` / ``job-summary``)
to its own ``job-NNNN.jsonl`` file; a service-wide sink (``telemetry``)
additionally receives every job's records stamped with the job id,
plus one ``batch`` record per dispatched batch — see
:class:`~repro.observe.telemetry.TelemetryTee` /
:class:`~repro.observe.telemetry.StampedTelemetry`.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field, fields
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError, ServiceError
from ..experiments import runner
from ..experiments.cache import RunCache, run_key
from ..experiments.grid import GridPoint, run_grid
from ..experiments.resilience import RetryPolicy
from ..experiments.runner import RunScale
from ..gpu.sm import SimulationResult
from ..observe.telemetry import StampedTelemetry, TelemetryTee, TelemetryWriter

#: Version stamped into service telemetry and loadgen reports.
SERVICE_SCHEMA_VERSION = 1

#: How long the dispatcher waits after a wake-up for more points to
#: accumulate before cutting a batch (seconds).  Small enough to be
#: invisible per-job, large enough that a burst of concurrent clients
#: lands in one ``run_grid`` call.
DEFAULT_BATCH_WINDOW = 0.02

#: Largest number of points dispatched as one ``run_grid`` call.
DEFAULT_MAX_BATCH = 64


@dataclass(frozen=True)
class PointSpec:
    """One fully-normalized grid point at a concrete scale.

    ``window`` is always the design's *effective* window and
    ``benchmark`` is upper-cased, so equal specs produce equal
    :meth:`key` digests — the invariant the single-flight registry
    relies on.  Build through :meth:`create`, which normalizes and
    validates.
    """

    benchmark: str
    design: str
    window: int
    scale: RunScale

    @classmethod
    def create(cls, benchmark: str, design: str, window: int,
               scale: RunScale) -> "PointSpec":
        runner.validate_design(design)
        return cls(
            benchmark=benchmark.upper(),
            design=design,
            window=runner.effective_window(design, window),
            scale=scale,
        )

    def key(self) -> str:
        """The content-addressed cache key (shared with ``RunCache``)."""
        return run_key(self.benchmark, self.design, self.window, self.scale)

    def label(self) -> str:
        suffix = f" IW{self.window}" if self.window else ""
        return f"{self.benchmark}/{self.design}{suffix}"


@dataclass
class ServiceStats:
    """Monotonic counters describing everything the service resolved.

    ``points_requested`` splits exactly into ``warm_hits`` (dict-cache
    lookups), ``coalesced`` (attached to an in-flight future), and
    ``scheduled`` (genuinely new work).  ``simulated`` / ``from_cache``
    / ``from_memo`` describe how scheduled points resolved inside
    ``run_grid``, so ``simulated`` is the number the single-flight
    claim is measured by.
    """

    jobs: int = 0
    points_requested: int = 0
    warm_hits: int = 0
    coalesced: int = 0
    scheduled: int = 0
    batches: int = 0
    simulated: int = 0
    from_cache: int = 0
    from_memo: int = 0
    failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {item.name: getattr(self, item.name)
                for item in fields(self)}

    def snapshot(self) -> "ServiceStats":
        return ServiceStats(**self.as_dict())


@dataclass(frozen=True)
class PointOutcome:
    """How one requested point resolved for one job.

    ``source`` is ``warm`` / ``flight`` / ``memo`` / ``cache`` /
    ``sim`` — the first two are service-layer provenance, the rest are
    ``run_grid``'s own record for the batch that carried the point.
    """

    spec: PointSpec
    key: str
    result: Optional[SimulationResult]
    source: str
    seconds: float
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class JobResult:
    """Everything one :meth:`SweepService.submit` call resolved."""

    job_id: int
    outcomes: List[PointOutcome] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def sources(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.source] = tally.get(outcome.source, 0) + 1
        return tally


class _Queued:
    """A scheduled point plus the future its waiters share."""

    __slots__ = ("spec", "key", "future")

    def __init__(self, spec: PointSpec, key: str,
                 future: "asyncio.Future") -> None:
        self.spec = spec
        self.key = key
        self.future = future


class SweepService:
    """The single-flight job engine (see the module docstring).

    Not thread-safe: construct and drive it from one event loop.  The
    blocking ``run_grid`` calls run on a private, reused
    thread-pool executor so the loop stays responsive while a batch
    simulates.

    Args:
        cache: optional :class:`RunCache` shared with the batch runs.
        jobs: worker processes *inside* each ``run_grid`` call
            (1 = serial, the safe default for a service that already
            interleaves batches).
        retry: per-point retry policy for batch runs.
        batch_window: seconds the dispatcher lingers after a wake-up so
            a burst of submissions lands in one batch.
        max_batch: largest single ``run_grid`` call.
        telemetry: optional service-wide sink (``emit(dict)``).
        telemetry_dir: when set, each job streams its records to
            ``<dir>/job-NNNN.jsonl``.
    """

    def __init__(
        self,
        cache: Optional[RunCache] = None,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        telemetry=None,
        telemetry_dir: Optional[str] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ServiceError(
                f"batch_window must be >= 0, got {batch_window}")
        self._cache = cache
        self._jobs = max(1, int(jobs))
        self._retry = retry
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._telemetry = telemetry
        self._telemetry_dir = (Path(telemetry_dir)
                               if telemetry_dir is not None else None)
        self.stats = ServiceStats()
        self._warm: Dict[str, SimulationResult] = {}
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._queue: List[Tuple[int, int, _Queued]] = []
        self._seq = 0
        self._job_ids = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        self._executor = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "SweepService":
        """Start the dispatcher task (idempotent)."""
        if self._dispatcher is not None:
            return self
        from concurrent.futures import ThreadPoolExecutor

        if self._telemetry_dir is not None:
            self._telemetry_dir.mkdir(parents=True, exist_ok=True)
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service")
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._closed = False
        return self

    async def close(self) -> None:
        """Stop the dispatcher; in-flight futures fail with ServiceError."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(ServiceError("service shut down"))
        self._inflight.clear()
        self._queue.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "SweepService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- submission ---------------------------------------------------

    async def submit(self, specs: Sequence[PointSpec],
                     priority: int = 0) -> JobResult:
        """Resolve every spec, sharing flights with concurrent jobs.

        Returns a :class:`JobResult` with one :class:`PointOutcome`
        per *unique* requested point (duplicates within one job
        collapse).  Point failures are outcomes, not exceptions — a
        job only raises for service-level problems (shutdown).
        """
        if self._dispatcher is None or self._closed:
            raise ServiceError("service is not running (call start())")
        if not specs:
            raise ServiceError("empty job: no points")
        self._job_ids += 1
        job_id = self._job_ids
        self.stats.jobs += 1
        started = time.perf_counter()
        telemetry = self._job_telemetry(job_id)

        waiters: List[Tuple[PointSpec, str, object, str]] = []
        seen_keys = set()
        for spec in specs:
            key = spec.key()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            self.stats.points_requested += 1
            if key in self._warm:
                self.stats.warm_hits += 1
                waiters.append((spec, key, self._warm[key], "warm"))
            elif key in self._inflight:
                self.stats.coalesced += 1
                waiters.append((spec, key, self._inflight[key], "flight"))
            else:
                self.stats.scheduled += 1
                future = asyncio.get_running_loop().create_future()
                self._inflight[key] = future
                self._seq += 1
                heapq.heappush(self._queue,
                               (priority, self._seq,
                                _Queued(spec, key, future)))
                waiters.append((spec, key, future, "queued"))
        if self._wakeup is not None:
            self._wakeup.set()

        if telemetry is not None:
            telemetry.emit({
                "type": "job-start",
                "schema": SERVICE_SCHEMA_VERSION,
                "points": len(waiters),
                "priority": priority,
                "scale": _scale_dict(specs[0].scale),
            })

        job = JobResult(job_id=job_id)
        for spec, key, pending, how in waiters:
            outcome = await self._await_point(spec, key, pending, how)
            job.outcomes.append(outcome)
            if telemetry is not None:
                telemetry.emit(_outcome_record(outcome))
        job.seconds = time.perf_counter() - started
        if telemetry is not None:
            telemetry.emit({
                "type": "job-summary",
                "points": len(job.outcomes),
                "failed": job.failed,
                "seconds": job.seconds,
                "sources": job.sources(),
            })
        self._close_job_telemetry(telemetry)
        return job

    async def _await_point(self, spec: PointSpec, key: str, pending,
                           how: str) -> PointOutcome:
        if how == "warm":
            return PointOutcome(spec=spec, key=key, result=pending,
                                source="warm", seconds=0.0)
        started = time.perf_counter()
        try:
            # shield: one cancelled client must not kill a flight that
            # other clients are attached to.
            result, source, seconds = await asyncio.shield(pending)
        except asyncio.CancelledError:
            raise
        except ReproError as error:
            return PointOutcome(
                spec=spec, key=key, result=None,
                source="flight" if how == "flight" else "failed",
                seconds=time.perf_counter() - started,
                error=str(error), error_type=type(error).__name__,
            )
        if how == "flight":
            return PointOutcome(spec=spec, key=key, result=result,
                                source="flight",
                                seconds=time.perf_counter() - started)
        return PointOutcome(spec=spec, key=key, result=result,
                            source=source, seconds=seconds)

    # -- dispatch -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            if self._batch_window:
                # Linger so a burst of concurrent submissions becomes
                # one batch instead of many single-point ones.
                await asyncio.sleep(self._batch_window)
            while self._queue:
                batch = self._pop_batch()
                if batch:
                    await self._run_batch(batch)

    def _pop_batch(self) -> List[_Queued]:
        """Highest-priority points sharing one scale, up to max_batch.

        ``run_grid`` takes a single :class:`RunScale`, so a batch is
        cut at the first scale boundary; points at other scales stay
        queued for the next batch.
        """
        batch: List[_Queued] = []
        leftover: List[Tuple[int, int, _Queued]] = []
        scale: Optional[RunScale] = None
        while self._queue and len(batch) < self._max_batch:
            entry = heapq.heappop(self._queue)
            queued = entry[2]
            if scale is None:
                scale = queued.spec.scale
            if queued.spec.scale == scale:
                batch.append(queued)
            else:
                leftover.append(entry)
        for entry in leftover:
            heapq.heappush(self._queue, entry)
        return batch

    async def _run_batch(self, batch: List[_Queued]) -> None:
        scale = batch[0].spec.scale
        points = [GridPoint(q.spec.benchmark, q.spec.design, q.spec.window)
                  for q in batch]
        self.stats.batches += 1
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            grid = await loop.run_in_executor(
                self._executor,
                partial(run_grid, (), (), (), scale=scale, jobs=self._jobs,
                        cache=self._cache, retry=self._retry, strict=False,
                        points=points),
            )
        except Exception as error:  # noqa: BLE001 — fail the whole batch
            for queued in batch:
                self._inflight.pop(queued.key, None)
                if not queued.future.done():
                    queued.future.set_exception(
                        ServiceError(f"batch execution failed: {error}"))
            return
        provenance = {
            (record.point.benchmark.upper(), record.point.design,
             record.point.window): (record.source, record.seconds)
            for record in grid.records
        }
        for queued in batch:
            self._inflight.pop(queued.key, None)
            spec = queued.spec
            try:
                result = grid.get(spec.benchmark, spec.design, spec.window)
            except ReproError as error:
                self.stats.failures += 1
                if not queued.future.done():
                    queued.future.set_exception(error)
                continue
            source, seconds = provenance.get(
                (spec.benchmark, spec.design, spec.window), ("sim", 0.0))
            if source == "sim":
                self.stats.simulated += 1
            elif source == "cache":
                self.stats.from_cache += 1
            else:
                self.stats.from_memo += 1
            self._warm[queued.key] = result
            if not queued.future.done():
                queued.future.set_result((result, source, seconds))
        if self._telemetry is not None:
            self._telemetry.emit({
                "type": "batch",
                "schema": SERVICE_SCHEMA_VERSION,
                "points": len(batch),
                "seconds": time.perf_counter() - started,
                "simulated": grid.simulated,
                "from_cache": grid.from_cache,
                "from_memo": grid.from_memo,
                "failed": grid.failed,
                "scale": _scale_dict(scale),
            })

    # -- telemetry plumbing -------------------------------------------

    def _job_telemetry(self, job_id: int):
        """The sink one job's records go to (per-job file + stamped
        service-wide stream), or ``None`` when neither is configured."""
        writer = None
        if self._telemetry_dir is not None:
            writer = TelemetryWriter(
                str(self._telemetry_dir / f"job-{job_id:04d}.jsonl"))
        stamped = (StampedTelemetry(self._telemetry, job=job_id)
                   if self._telemetry is not None else None)
        if writer is None and stamped is None:
            return None
        tee = TelemetryTee(writer, stamped)
        tee._owned_writer = writer  # closed by _close_job_telemetry
        return tee

    @staticmethod
    def _close_job_telemetry(telemetry) -> None:
        writer = getattr(telemetry, "_owned_writer", None)
        if writer is not None:
            writer.close()

    # -- introspection ------------------------------------------------

    @property
    def warm_points(self) -> int:
        """Entries in the warm dict cache."""
        return len(self._warm)

    @property
    def inflight_points(self) -> int:
        """Keys currently registered as in flight."""
        return len(self._inflight)


def _scale_dict(scale: RunScale) -> Dict[str, object]:
    return {
        "num_warps": scale.num_warps,
        "trace_scale": scale.trace_scale,
        "memory_seed": scale.memory_seed,
        "num_sms": scale.num_sms,
    }


def _outcome_record(outcome: PointOutcome) -> dict:
    record = {
        "type": "job-point" if outcome.ok else "job-failure",
        "benchmark": outcome.spec.benchmark,
        "design": outcome.spec.design,
        "window": outcome.spec.window,
        "source": outcome.source,
        "seconds": outcome.seconds,
    }
    if outcome.ok:
        record["cycles"] = outcome.result.counters.cycles
        record["ipc"] = outcome.result.ipc
    else:
        record["error_type"] = outcome.error_type or ""
        record["message"] = outcome.error or ""
    return record


def expand_points(
    benchmarks: Sequence[str],
    designs: Sequence[str],
    windows: Sequence[int],
    scale: RunScale,
) -> List[PointSpec]:
    """The deduplicated cross-product as normalized :class:`PointSpec`\\ s.

    The client-side mirror of ``run_grid``'s grid enumeration: windows
    collapse to effective windows, so the result's length is the
    number of *unique* simulations the request can cost.
    """
    specs: List[PointSpec] = []
    seen = set()
    for benchmark in benchmarks:
        for design in designs:
            for window in windows:
                spec = PointSpec.create(benchmark, design, window, scale)
                if spec in seen:
                    continue
                seen.add(spec)
                specs.append(spec)
    if not specs:
        raise ServiceError("empty sweep: no benchmarks/designs/windows")
    return specs
