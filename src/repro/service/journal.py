"""Crash-safe write-ahead job journal for the sweep service.

The :class:`~repro.service.core.SweepService` records every job and
point transition to an append-only JSONL journal *before* acting on
it, so a server killed mid-sweep can reconstruct what it owed its
clients.  Records (all carry ``"schema"``):

* ``service-start``   — one per service incarnation (monotonically
  numbered), written when the service starts over this journal;
* ``job-accepted``    — a job passed admission control (job id, point
  count, priority, deadline, scale);
* ``point-scheduled`` — a point entered the dispatch queue (key plus
  the full coordinates needed to re-create it);
* ``point-resolved``  — a point left the in-flight registry (``ok``,
  provenance ``source``: ``sim`` / ``cache`` / ``memo`` / ``failed``
  / ``expired``);
* ``job-finished``    — the job's waiters were all answered.

**Durability**: every record is flushed and (by default) fsynced, so
the journal survives a SIGKILL up to the last completed ``record()``
call.  Writes degrade like the run cache: an ``OSError`` is counted,
and after ``error_threshold`` failures the journal self-disables with
one :class:`JournalDegradedWarning` instead of taking the service
down — a full disk costs recovery fidelity, never availability.

**Corruption tolerance**: :func:`read_records` skips lines that do not
parse (torn tails from a crash mid-write, injected corruption) and
counts them, so one bad line never hides the rest of the history.

:func:`replay` folds a journal into a :class:`JournalState`: which
jobs were accepted but never finished, and — the part recovery acts
on — which points were scheduled but never resolved.  Replaying those
points through the warm :class:`~repro.experiments.cache.RunCache`
completes the interrupted work with zero duplicated simulations.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Bump on any breaking change to the record format.
JOURNAL_SCHEMA_VERSION = 1

#: Write failures tolerated before a journal self-disables.
DEFAULT_ERROR_THRESHOLD = 8


class JournalDegradedWarning(RuntimeWarning):
    """Emitted once when a :class:`Journal` self-disables."""


class Journal:
    """Append-only JSONL journal with fsync-per-record durability.

    Args:
        path: journal file (created, or appended to across restarts).
        fsync: fsync after every record (the crash-safety contract;
            disable only in tests that measure throughput).
        error_threshold: swallowed write failures before the journal
            self-disables for the rest of the process.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True,
                 error_threshold: int = DEFAULT_ERROR_THRESHOLD):
        self.path = Path(path)
        self.fsync = fsync
        self.error_threshold = max(1, int(error_threshold))
        self.records = 0
        self.write_errors = 0
        self._disabled = False
        self._stream = None

    @property
    def disabled(self) -> bool:
        """Whether repeated write failures disabled this journal."""
        return self._disabled

    def open(self) -> "Journal":
        """Open (or re-open) the journal file for appending."""
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
        return self

    def record(self, record_type: str, **fields) -> None:
        """Durably append one record; never raises ``OSError``."""
        if self._disabled:
            return
        if self._stream is None:
            self.open()
        payload = {"schema": JOURNAL_SCHEMA_VERSION,
                   "type": record_type, **fields}
        text = json.dumps(payload, sort_keys=True, ensure_ascii=False)
        try:
            self._write_line(text)
        except OSError as error:
            self.write_errors += 1
            if (not self._disabled
                    and self.write_errors >= self.error_threshold):
                self._disabled = True
                warnings.warn(
                    f"job journal at {self.path} disabled after "
                    f"{self.write_errors} write errors (last: {error}); "
                    f"recovery fidelity degraded, service continues",
                    JournalDegradedWarning,
                    stacklevel=2,
                )
            return
        self.records += 1

    def _write_line(self, text: str) -> None:
        """Append one line durably (fault-injection seam)."""
        self._stream.write(text + "\n")
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None

    def __enter__(self) -> "Journal":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_records(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """``(records, corrupt_lines)`` from one journal file.

    Lines that fail to parse as JSON objects — a torn tail from a
    crash mid-write, injected corruption — are skipped and counted,
    never fatal.  A missing file reads as an empty journal.
    """
    records: List[dict] = []
    corrupt = 0
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or "type" not in record:
                    corrupt += 1
                    continue
                records.append(record)
    except FileNotFoundError:
        pass
    return records, corrupt


@dataclass
class JournalState:
    """What a journal says the service owed when it last stopped.

    Attributes:
        incarnations: ``service-start`` records seen (the next
            incarnation number is ``incarnations + 1``).
        unfinished_jobs: ``(incarnation, job_id)`` pairs accepted but
            never finished.
        unresolved_points: key -> point dict (``benchmark`` /
            ``design`` / ``window`` / ``scale``) for every point whose
            last event is ``point-scheduled``.
        resolved: count of ``point-resolved`` records.
        resolved_sims: resolved records whose provenance was ``sim``
            (what the chaos driver's zero-duplication ledger counts).
        corrupt_lines: lines skipped as unparseable.
    """

    incarnations: int = 0
    unfinished_jobs: List[Tuple[int, int]] = field(default_factory=list)
    unresolved_points: Dict[str, dict] = field(default_factory=dict)
    resolved: int = 0
    resolved_sims: int = 0
    corrupt_lines: int = 0

    @property
    def needs_recovery(self) -> bool:
        return bool(self.unresolved_points)


def replay(path: Union[str, Path]) -> JournalState:
    """Fold a journal file into its :class:`JournalState`.

    The per-key state machine is last-event-wins: a key scheduled,
    resolved, then scheduled again (a retry after a failure) is
    unresolved.  Records with missing fields are tolerated and count
    as corrupt rather than crashing recovery.
    """
    records, corrupt = read_records(path)
    state = JournalState(corrupt_lines=corrupt)
    open_jobs: Dict[Tuple[int, int], bool] = {}
    incarnation = 0
    for record in records:
        kind = record["type"]
        if kind == "service-start":
            state.incarnations += 1
            incarnation = record.get("incarnation", state.incarnations)
        elif kind == "job-accepted":
            job = record.get("job")
            if job is None:
                state.corrupt_lines += 1
                continue
            open_jobs[(incarnation, job)] = True
        elif kind == "job-finished":
            job = record.get("job")
            open_jobs.pop((incarnation, job), None)
        elif kind == "point-scheduled":
            key = record.get("key")
            point = {name: record.get(name)
                     for name in ("benchmark", "design", "window",
                                  "scale")}
            if key is None or None in point.values():
                state.corrupt_lines += 1
                continue
            state.unresolved_points[key] = point
        elif kind == "point-resolved":
            key = record.get("key")
            if key is None:
                state.corrupt_lines += 1
                continue
            state.unresolved_points.pop(key, None)
            state.resolved += 1
            if record.get("source") == "sim":
                state.resolved_sims += 1
        # Unknown record types from newer schemas are skipped, not
        # fatal: an old binary can still recover what it understands.
    state.unfinished_jobs = sorted(open_jobs)
    return state


def open_journal(
    journal: Union[None, str, Path, Journal],
) -> Optional[Journal]:
    """Coerce a path-or-journal argument into an opened journal."""
    if journal is None:
        return None
    if isinstance(journal, Journal):
        return journal.open()
    return Journal(journal).open()
