"""The wire layer: a newline-delimited-JSON asyncio sweep server.

One TCP connection carries any number of requests, one JSON object per
line; every request gets exactly one JSON response line.  Operations:

* ``{"op": "ping"}`` — liveness probe; echoes the library version.
* ``{"op": "stats"}`` — the service's monotonic counters (loadgen
  computes per-pass deltas from two snapshots) plus live gauges
  (``queued_points``, ``active_jobs``, ``draining``).
* ``{"op": "sweep", ...}`` — submit a job and block until it resolves.
  The sweep is either a cross-product (``benchmarks`` x ``designs`` x
  ``windows``) or an explicit ``points`` list of ``[benchmark, design,
  window]`` triples; ``scale`` carries ``num_warps`` / ``trace_scale``
  / ``memory_seed`` / ``num_sms``, ``priority`` orders the queue
  (lower first), and ``deadline_ms`` expires points still queued when
  it elapses.  The response has one entry per unique point with
  provenance (``warm`` / ``flight`` / ``memo`` / ``cache`` / ``sim``)
  so a client can verify single-flight behaviour end to end.
* ``{"op": "shutdown"}`` — acknowledge, then stop the server.  With
  ``"mode": "drain"`` the server first stops accepting jobs, finishes
  everything in flight (bounded by ``drain_timeout`` seconds), and
  reports whether the drain completed cleanly.

Responses always carry ``"ok"``; protocol failures (bad JSON, unknown
op, unknown benchmark/design) answer ``{"ok": false, "error": ...}``
on the same connection instead of dropping it, so one bad client
request cannot take a shared connection down.  A shed job answers
``"error_type": "ServiceOverloadedError"`` with a ``retry_after_ms``
backoff hint.  Clients that disconnect mid-response are counted
(``stats.disconnects``) and their connection torn down cleanly —
never propagated.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Optional, Sequence

from .. import __version__
from ..errors import ReproError, ServiceError
from ..experiments.runner import RunScale
from .core import (
    SERVICE_SCHEMA_VERSION,
    PointSpec,
    SweepService,
    expand_points,
)

#: Largest accepted request line (a full-suite sweep spec is ~1 KB;
#: this bounds a malicious or corrupt client's memory cost).
MAX_REQUEST_BYTES = 1 << 20

#: Default hard bound on a drain-mode shutdown (seconds).
DEFAULT_DRAIN_TIMEOUT = 30.0


def parse_scale(payload: Optional[dict]) -> RunScale:
    """A :class:`RunScale` from its wire form (missing fields default)."""
    payload = payload or {}
    known = {"num_warps", "trace_scale", "memory_seed", "num_sms"}
    unknown = set(payload) - known
    if unknown:
        raise ServiceError(f"unknown scale field(s): {sorted(unknown)}")
    try:
        return RunScale(**payload)
    except TypeError as error:
        raise ServiceError(f"bad scale: {error}") from None


def parse_sweep_specs(request: dict) -> Sequence[PointSpec]:
    """The normalized point list one ``sweep`` request asks for."""
    scale = parse_scale(request.get("scale"))
    if "points" in request:
        points = request["points"]
        if not isinstance(points, list) or not points:
            raise ServiceError("points must be a non-empty list")
        specs = []
        seen = set()
        for item in points:
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise ServiceError(
                    "each point must be [benchmark, design, window]")
            benchmark, design, window = item
            spec = PointSpec.create(benchmark, design, int(window), scale)
            if spec in seen:
                continue
            seen.add(spec)
            specs.append(spec)
        return specs
    benchmarks = request.get("benchmarks") or []
    designs = request.get("designs") or []
    windows = request.get("windows") or [3]
    if not benchmarks or not designs:
        raise ServiceError("sweep needs benchmarks+designs or points")
    return expand_points(benchmarks, designs, windows, scale)


class SweepServer:
    """Serves a :class:`SweepService` over TCP (JSON lines).

    Start with :meth:`start` (binds; ``port=0`` picks an ephemeral
    port, exposed as :attr:`port`), then either :meth:`serve_until_shutdown`
    or your own wait; :meth:`close` tears down the listener and the
    underlying service.  ``drain_timeout`` bounds drain-mode shutdowns
    (wire-requested or SIGTERM-triggered) that do not name their own.
    """

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "SweepServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``{"op": "shutdown"}``."""
        await self._shutdown.wait()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain the service, then release :meth:`serve_until_shutdown`.

        Returns ``True`` when every accepted point finished within the
        budget (``timeout``, defaulting to the server's
        ``drain_timeout``).
        """
        budget = self.drain_timeout if timeout is None else timeout
        drained = await self.service.drain(budget)
        self._shutdown.set()
        return drained

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self._shutdown.set()

    async def __aenter__(self) -> "SweepServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "request too large"})
                    break
                if not line:
                    break
                response, stop = await self._respond(line)
                await self._send(writer, response)
                if stop:
                    self._shutdown.set()
                    break
        except asyncio.CancelledError:
            raise  # server teardown cancels handlers; do not swallow
        except ConnectionError:
            # The client vanished mid-request or mid-response
            # (BrokenPipeError / ConnectionResetError).  Any job it
            # submitted keeps running — its results warm the cache for
            # everyone else; the connection is just counted and closed.
            self.service.stats.disconnects += 1
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, line: bytes):
        """(response dict, stop?) for one raw request line."""
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return {"ok": False, "error": f"bad request: {error}"}, False
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be an object"}, False
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping",
                        "version": __version__,
                        "schema": SERVICE_SCHEMA_VERSION}, False
            if op == "stats":
                return {"ok": True, "op": "stats",
                        "stats": self.service.stats.as_dict(),
                        "warm_points": self.service.warm_points,
                        "inflight_points": self.service.inflight_points,
                        "queued_points": self.service.queued_points,
                        "active_jobs": self.service.active_jobs,
                        "draining": self.service.draining,
                        }, False
            if op == "sweep":
                return await self._handle_sweep(request), False
            if op == "shutdown":
                if request.get("mode") == "drain":
                    timeout = request.get("drain_timeout")
                    drained = await self.drain(
                        None if timeout is None else float(timeout))
                    return {"ok": True, "op": "shutdown",
                            "mode": "drain", "drained": drained}, True
                return {"ok": True, "op": "shutdown"}, True
        except ReproError as error:
            response = {"ok": False, "op": op, "error": str(error),
                        "error_type": type(error).__name__}
            retry_after = getattr(error, "retry_after_ms", None)
            if retry_after is not None:
                response["retry_after_ms"] = retry_after
            return response, False
        return {"ok": False,
                "error": f"unknown op {op!r} (ping/stats/sweep/shutdown)",
                }, False

    async def _handle_sweep(self, request: dict) -> dict:
        specs = parse_sweep_specs(request)
        priority = int(request.get("priority", 0))
        deadline_ms = request.get("deadline_ms")
        job = await self.service.submit(
            specs, priority=priority,
            deadline_ms=None if deadline_ms is None else float(deadline_ms))
        points = []
        for outcome in job.outcomes:
            entry = {
                "benchmark": outcome.spec.benchmark,
                "design": outcome.spec.design,
                "window": outcome.spec.window,
                "source": outcome.source,
                "seconds": outcome.seconds,
                "ok": outcome.ok,
            }
            if outcome.ok:
                entry["cycles"] = outcome.result.counters.cycles
                entry["instructions"] = outcome.result.counters.instructions
                entry["ipc"] = outcome.result.ipc
            else:
                entry["error_type"] = outcome.error_type
                entry["error"] = outcome.error
            points.append(entry)
        return {
            "ok": job.ok,
            "op": "sweep",
            "job": job.job_id,
            "seconds": job.seconds,
            "points": points,
            "sources": job.sources(),
            "failed": job.failed,
        }

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        """Write one response line (fault-injection seam)."""
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


async def serve(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    service: Optional[SweepService] = None,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ready: Optional["asyncio.Event"] = None,
    announce=None,
) -> None:
    """Run a sweep server until a client asks it to shut down.

    ``announce`` (a callable taking one line of text) is told the
    bound address once listening — the CLI prints it, tests capture
    it; ``ready`` is set at the same moment for in-process callers.

    On platforms that support it, SIGTERM triggers a graceful drain
    (stop accepting, finish in flight, flush journal/telemetry, exit)
    bounded by ``drain_timeout``.  When the service's journal shows
    scheduled-but-unresolved points from a previous incarnation,
    recovery runs in the background as soon as the listener is up —
    concurrent client requests for the same points coalesce with the
    recovery job instead of duplicating work.
    """
    server = SweepServer(service or SweepService(), host=host, port=port,
                         drain_timeout=drain_timeout)
    await server.start()
    if announce is not None:
        announce(f"repro service listening on {server.host}:{server.port}")
    if ready is not None:
        ready.set()

    loop = asyncio.get_running_loop()

    def _on_sigterm() -> None:
        if announce is not None:
            announce("SIGTERM: draining "
                     f"(timeout {server.drain_timeout:.0f}s)")
        asyncio.ensure_future(server.drain())

    try:
        loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    except (NotImplementedError, RuntimeError, ValueError):
        pass  # non-main thread or platform without signal support

    recovery_task = None
    state = server.service.journal_state
    if state is not None and state.needs_recovery:
        if announce is not None:
            announce(f"journal shows {len(state.unresolved_points)} "
                     f"unresolved point(s) from "
                     f"{len(state.unfinished_jobs)} job(s); recovering")

        async def _recover() -> None:
            try:
                report = await server.service.recover()
            except ServiceError as error:
                if announce is not None:
                    announce(f"recovery failed: {error}")
                return
            if announce is not None:
                announce(f"recovered {report.replayed} point(s) "
                         f"({report.failed} failed, "
                         f"{report.skipped} skipped)")

        recovery_task = asyncio.ensure_future(_recover())
    try:
        await server.serve_until_shutdown()
    finally:
        if recovery_task is not None and not recovery_task.done():
            recovery_task.cancel()
            try:
                await recovery_task
            except asyncio.CancelledError:
                pass
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        await server.close()
