"""The wire layer: a newline-delimited-JSON asyncio sweep server.

One TCP connection carries any number of requests, one JSON object per
line; every request gets exactly one JSON response line.  Operations:

* ``{"op": "ping"}`` — liveness probe; echoes the library version.
* ``{"op": "stats"}`` — the service's monotonic counters (loadgen
  computes per-pass deltas from two snapshots).
* ``{"op": "sweep", ...}`` — submit a job and block until it resolves.
  The sweep is either a cross-product (``benchmarks`` x ``designs`` x
  ``windows``) or an explicit ``points`` list of ``[benchmark, design,
  window]`` triples; ``scale`` carries ``num_warps`` / ``trace_scale``
  / ``memory_seed`` / ``num_sms`` and ``priority`` orders the queue
  (lower first).  The response has one entry per unique point with
  provenance (``warm`` / ``flight`` / ``memo`` / ``cache`` / ``sim``)
  so a client can verify single-flight behaviour end to end.
* ``{"op": "shutdown"}`` — acknowledge, then stop the server.

Responses always carry ``"ok"``; protocol failures (bad JSON, unknown
op, unknown benchmark/design) answer ``{"ok": false, "error": ...}``
on the same connection instead of dropping it, so one bad client
request cannot take a shared connection down.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Sequence

from .. import __version__
from ..errors import ReproError, ServiceError
from ..experiments.runner import RunScale
from .core import (
    SERVICE_SCHEMA_VERSION,
    PointSpec,
    SweepService,
    expand_points,
)

#: Largest accepted request line (a full-suite sweep spec is ~1 KB;
#: this bounds a malicious or corrupt client's memory cost).
MAX_REQUEST_BYTES = 1 << 20


def parse_scale(payload: Optional[dict]) -> RunScale:
    """A :class:`RunScale` from its wire form (missing fields default)."""
    payload = payload or {}
    known = {"num_warps", "trace_scale", "memory_seed", "num_sms"}
    unknown = set(payload) - known
    if unknown:
        raise ServiceError(f"unknown scale field(s): {sorted(unknown)}")
    try:
        return RunScale(**payload)
    except TypeError as error:
        raise ServiceError(f"bad scale: {error}") from None


def parse_sweep_specs(request: dict) -> Sequence[PointSpec]:
    """The normalized point list one ``sweep`` request asks for."""
    scale = parse_scale(request.get("scale"))
    if "points" in request:
        points = request["points"]
        if not isinstance(points, list) or not points:
            raise ServiceError("points must be a non-empty list")
        specs = []
        seen = set()
        for item in points:
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise ServiceError(
                    "each point must be [benchmark, design, window]")
            benchmark, design, window = item
            spec = PointSpec.create(benchmark, design, int(window), scale)
            if spec in seen:
                continue
            seen.add(spec)
            specs.append(spec)
        return specs
    benchmarks = request.get("benchmarks") or []
    designs = request.get("designs") or []
    windows = request.get("windows") or [3]
    if not benchmarks or not designs:
        raise ServiceError("sweep needs benchmarks+designs or points")
    return expand_points(benchmarks, designs, windows, scale)


class SweepServer:
    """Serves a :class:`SweepService` over TCP (JSON lines).

    Start with :meth:`start` (binds; ``port=0`` picks an ephemeral
    port, exposed as :attr:`port`), then either :meth:`serve_until_shutdown`
    or your own wait; :meth:`close` tears down the listener and the
    underlying service.
    """

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "SweepServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``{"op": "shutdown"}``."""
        await self._shutdown.wait()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self._shutdown.set()

    async def __aenter__(self) -> "SweepServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "request too large"})
                    break
                if not line:
                    break
                response, stop = await self._respond(line)
                await self._send(writer, response)
                if stop:
                    self._shutdown.set()
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, line: bytes):
        """(response dict, stop?) for one raw request line."""
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return {"ok": False, "error": f"bad request: {error}"}, False
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be an object"}, False
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping",
                        "version": __version__,
                        "schema": SERVICE_SCHEMA_VERSION}, False
            if op == "stats":
                return {"ok": True, "op": "stats",
                        "stats": self.service.stats.as_dict(),
                        "warm_points": self.service.warm_points,
                        "inflight_points": self.service.inflight_points,
                        }, False
            if op == "sweep":
                return await self._handle_sweep(request), False
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}, True
        except ReproError as error:
            return {"ok": False, "op": op, "error": str(error),
                    "error_type": type(error).__name__}, False
        return {"ok": False,
                "error": f"unknown op {op!r} (ping/stats/sweep/shutdown)",
                }, False

    async def _handle_sweep(self, request: dict) -> dict:
        specs = parse_sweep_specs(request)
        priority = int(request.get("priority", 0))
        job = await self.service.submit(specs, priority=priority)
        points = []
        for outcome in job.outcomes:
            entry = {
                "benchmark": outcome.spec.benchmark,
                "design": outcome.spec.design,
                "window": outcome.spec.window,
                "source": outcome.source,
                "seconds": outcome.seconds,
                "ok": outcome.ok,
            }
            if outcome.ok:
                entry["cycles"] = outcome.result.counters.cycles
                entry["instructions"] = outcome.result.counters.instructions
                entry["ipc"] = outcome.result.ipc
            else:
                entry["error_type"] = outcome.error_type
                entry["error"] = outcome.error
            points.append(entry)
        return {
            "ok": job.ok,
            "op": "sweep",
            "job": job.job_id,
            "seconds": job.seconds,
            "points": points,
            "sources": job.sources(),
            "failed": job.failed,
        }

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


async def serve(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    service: Optional[SweepService] = None,
    ready: Optional["asyncio.Event"] = None,
    announce=None,
) -> None:
    """Run a sweep server until a client asks it to shut down.

    ``announce`` (a callable taking one line of text) is told the
    bound address once listening — the CLI prints it, tests capture
    it; ``ready`` is set at the same moment for in-process callers.
    """
    server = SweepServer(service or SweepService(), host=host, port=port)
    await server.start()
    if announce is not None:
        announce(f"repro service listening on {server.host}:{server.port}")
    if ready is not None:
        ready.set()
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
