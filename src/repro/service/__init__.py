"""Simulation-as-a-service: the async single-flight sweep server.

The library's sweep machinery (``run_grid`` + ``RunCache``) wrapped in
a long-running job service:

* :mod:`repro.service.core` — :class:`SweepService`, the in-process
  engine: single-flight dedup of in-flight points, a warm dict cache
  over the on-disk :class:`~repro.experiments.cache.RunCache`, and a
  priority queue batching new points into reentrant ``run_grid`` calls;
* :mod:`repro.service.server` — the JSONL-over-TCP wire layer
  (``repro serve``);
* :mod:`repro.service.client` — :class:`ServiceClient` and the
  measured load generator (``repro loadgen``), which emits the
  ``BENCH_service.json`` throughput/latency report.

See DESIGN.md §10 for the architecture and failure semantics.
"""

from .client import ServiceClient, format_report, run_loadgen
from .core import (
    SERVICE_SCHEMA_VERSION,
    JobResult,
    PointOutcome,
    PointSpec,
    ServiceStats,
    SweepService,
    expand_points,
)
from .server import SweepServer, parse_scale, parse_sweep_specs, serve

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "JobResult",
    "PointOutcome",
    "PointSpec",
    "ServiceClient",
    "ServiceStats",
    "SweepServer",
    "SweepService",
    "expand_points",
    "format_report",
    "parse_scale",
    "parse_sweep_specs",
    "run_loadgen",
    "serve",
]
