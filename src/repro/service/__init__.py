"""Simulation-as-a-service: the async single-flight sweep server.

The library's sweep machinery (``run_grid`` + ``RunCache``) wrapped in
a long-running, production-hardened job service:

* :mod:`repro.service.core` — :class:`SweepService`, the in-process
  engine: single-flight dedup of in-flight points, a warm dict cache
  over the on-disk :class:`~repro.experiments.cache.RunCache`, a
  priority queue batching new points into reentrant ``run_grid``
  calls, admission control (``max_queued_points`` /
  ``max_inflight_jobs``), per-job deadlines, journal-backed crash
  recovery (:meth:`~repro.service.core.SweepService.recover`) and
  graceful drain;
* :mod:`repro.service.journal` — the crash-safe write-ahead job
  journal (:class:`Journal`) and its replay machinery;
* :mod:`repro.service.server` — the JSONL-over-TCP wire layer
  (``repro serve``), including SIGTERM-triggered drain and
  load-shedding ``overloaded`` responses;
* :mod:`repro.service.client` — :class:`ServiceClient` (optionally
  resilient: reconnect/retry with jittered backoff) and the measured
  load generator (``repro loadgen``), which emits the
  ``BENCH_service.json`` throughput/latency report.

See DESIGN.md §10 for the architecture and failure semantics.
"""

from .client import ServiceClient, format_report, run_loadgen
from .core import (
    SERVICE_SCHEMA_VERSION,
    JobResult,
    PointOutcome,
    PointSpec,
    RecoveryReport,
    ServiceStats,
    SweepService,
    expand_points,
)
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalDegradedWarning,
    JournalState,
    read_records,
    replay,
)
from .server import SweepServer, parse_scale, parse_sweep_specs, serve

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "SERVICE_SCHEMA_VERSION",
    "JobResult",
    "Journal",
    "JournalDegradedWarning",
    "JournalState",
    "PointOutcome",
    "PointSpec",
    "RecoveryReport",
    "ServiceClient",
    "ServiceStats",
    "SweepServer",
    "SweepService",
    "expand_points",
    "format_report",
    "parse_scale",
    "parse_sweep_specs",
    "read_records",
    "replay",
    "run_loadgen",
    "serve",
]
