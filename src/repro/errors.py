"""Exception hierarchy for the BOW reproduction library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class IsaError(ReproError):
    """Base class for ISA-level failures."""


class ParseError(IsaError):
    """The assembly parser rejected its input.

    Attributes:
        line_number: 1-based line of the offending source line, if known.
        line: the raw source text of that line, if known.
    """

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message}: {line!r}"
        super().__init__(message)


class EncodingError(IsaError):
    """An instruction could not be encoded or decoded."""


class KernelError(ReproError):
    """A malformed kernel CFG or trace."""


class CompilerError(ReproError):
    """A compiler pass failed or produced inconsistent results."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulator made no forward progress for too many cycles.

    Attributes:
        cycle: cycle at which the deadlock was declared.
    """

    def __init__(self, message: str, cycle: int):
        self._message = message
        self.cycle = cycle
        super().__init__(f"{message} (cycle {cycle})")

    def __reduce__(self):
        # Default exception pickling replays __init__ with the formatted
        # ``args``, which lacks ``cycle`` — sweep workers must be able to
        # send a deadlock across the process boundary intact.
        return (type(self), (self._message, self.cycle))


class ExperimentError(ReproError):
    """An experiment driver was asked for something it cannot produce."""


class SweepTimeoutError(ExperimentError, TimeoutError):
    """A grid point exceeded its per-point wall-clock budget.

    Also a :class:`TimeoutError`, so the failure taxonomy
    (:func:`~repro.experiments.resilience.classify_failure`) treats it
    as *transient* — a slow machine may well finish within budget on a
    retry.

    Attributes:
        label: the grid point's label.
        seconds: wall-clock seconds the point had been running.
        limit: the configured per-point timeout in seconds.
    """

    def __init__(self, label: str, seconds: float, limit: float):
        self.label = label
        self.seconds = seconds
        self.limit = limit
        super().__init__(
            f"{label} exceeded the per-point timeout "
            f"({seconds:.2f}s > {limit:.2f}s)"
        )

    def __reduce__(self):
        return (type(self), (self.label, self.seconds, self.limit))


class SweepPointError(ExperimentError):
    """A grid point failed after exhausting its retry policy.

    Raised by :meth:`repro.experiments.grid.GridResult.get` when the
    requested point is recorded on ``GridResult.failures``, and by
    ``run_grid`` itself after fan-in when ``strict`` is set.  It names
    the original failure so a sweep log is enough to diagnose the run.

    Attributes:
        label: the grid point's label (or a summary for multi-point
            strict failures).
        kind: ``"transient"`` or ``"permanent"``.
        attempts: execution attempts consumed before giving up.
        error_type: class name of the original exception.
        cause_message: message of the original exception.
        traceback_text: formatted traceback of the final attempt, when
            one was captured.
    """

    def __init__(self, label: str, kind: str, attempts: int,
                 error_type: str, cause_message: str,
                 traceback_text: str = ""):
        self.label = label
        self.kind = kind
        self.attempts = attempts
        self.error_type = error_type
        self.cause_message = cause_message
        self.traceback_text = traceback_text
        plural = "s" if attempts != 1 else ""
        super().__init__(
            f"{label} failed ({kind}, {attempts} attempt{plural}): "
            f"{error_type}: {cause_message}"
        )

    def __reduce__(self):
        return (type(self), (self.label, self.kind, self.attempts,
                             self.error_type, self.cause_message,
                             self.traceback_text))


class ServiceError(ReproError):
    """The sweep service was asked for something it cannot do.

    Covers protocol-level failures (a malformed request, an unknown
    operation) and client-side transport failures (the server went
    away mid-request).  Simulation failures inside a job are *not*
    ``ServiceError``\\ s — they surface as the original
    :class:`SweepPointError` per affected point.
    """


class ServiceOverloadedError(ServiceError):
    """The sweep service shed this request to protect itself.

    Raised at admission time when accepting the job would exceed the
    configured ``max_queued_points`` / ``max_inflight_jobs`` bounds, or
    when the service is draining and no longer accepts work.  Carries
    the server's backoff hint so clients can retry politely.

    Attributes:
        retry_after_ms: suggested client backoff in milliseconds.
    """

    def __init__(self, message: str, retry_after_ms: int = 1000):
        self.retry_after_ms = int(retry_after_ms)
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after_ms))


class ServiceTimeoutError(ServiceError):
    """A queued point outlived its job's ``deadline_ms`` before dispatch.

    Only queued-but-unstarted work expires: a point whose batch is
    already executing runs to completion (and lands in the warm cache),
    so an expired waiter never wastes a simulation that other clients
    could share.

    Attributes:
        label: the expired point's display label.
        deadline_ms: the job deadline that expired.
    """

    def __init__(self, label: str, deadline_ms: float):
        self.label = label
        self.deadline_ms = deadline_ms
        super().__init__(
            f"{label} expired before dispatch "
            f"(deadline {deadline_ms:.0f} ms)"
        )

    def __reduce__(self):
        return (type(self), (self.label, self.deadline_ms))


class SchemaError(ReproError):
    """An exported artifact does not match its checked-in schema.

    Raised by the validators in :mod:`repro.observe.schema`; carries the
    path into the offending document when the validator can name one.
    """

    def __init__(self, message: str, path: str = ""):
        self.path = path
        super().__init__(f"{message} (at {path})" if path else message)


class AnalysisError(ReproError):
    """The telemetry-to-figures pipeline cannot produce an artifact.

    Raised by :mod:`repro.analysis` when a loader is pointed at data it
    cannot interpret, a figure is asked to render without its required
    inputs, or an optional dependency (pandas) is missing for an
    explicitly requested conversion.
    """
