"""Exception hierarchy for the BOW reproduction library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class IsaError(ReproError):
    """Base class for ISA-level failures."""


class ParseError(IsaError):
    """The assembly parser rejected its input.

    Attributes:
        line_number: 1-based line of the offending source line, if known.
        line: the raw source text of that line, if known.
    """

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message}: {line!r}"
        super().__init__(message)


class EncodingError(IsaError):
    """An instruction could not be encoded or decoded."""


class KernelError(ReproError):
    """A malformed kernel CFG or trace."""


class CompilerError(ReproError):
    """A compiler pass failed or produced inconsistent results."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulator made no forward progress for too many cycles.

    Attributes:
        cycle: cycle at which the deadlock was declared.
    """

    def __init__(self, message: str, cycle: int):
        self.cycle = cycle
        super().__init__(f"{message} (cycle {cycle})")


class ExperimentError(ReproError):
    """An experiment driver was asked for something it cannot produce."""
