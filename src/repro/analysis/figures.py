"""The declarative figure registry: name -> generator over frames.

Each registered figure is a pure function from loaded frames
(:class:`FigureInputs`) to a ``(vega_lite_spec, backing_table)`` pair.
The renderer (:mod:`repro.analysis.render`) themes the spec, points its
``data.url`` at the backing CSV, validates it against
:data:`repro.observe.schema.FIGURE_SPEC_SCHEMA`, and writes both files;
the generators here only decide *what* is plotted.

Adding a figure is one function::

    @register_figure(
        "my_figure",
        title="...",
        requires=("points",),
        paper="Fig. 10",
    )
    def my_figure(inputs):
        table = ...  # a Frame
        spec = {"mark": "bar", "encoding": {...}, "description": "..."}
        return spec, table

and one per-figure test in ``tests/analysis/test_figures.py`` pinning
that it renders from the checked-in fixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import AnalysisError
from .frame import Frame
from .theme import design_color_scale

#: Input slot names a figure may require.
INPUT_KINDS = ("points", "failures", "trace", "bench")


@dataclass
class FigureInputs:
    """The loaded frames a ``repro figures`` invocation has available."""

    points: Optional[Frame] = None
    failures: Optional[Frame] = None
    trace: Optional[Frame] = None
    bench: Optional[Frame] = None

    def get(self, kind: str) -> Optional[Frame]:
        if kind not in INPUT_KINDS:
            raise AnalysisError(f"unknown figure input kind {kind!r}")
        return getattr(self, kind)

    def missing(self, kinds: Tuple[str, ...]) -> List[str]:
        """Which of the named input slots are not loaded."""
        return [kind for kind in kinds if self.get(kind) is None]


Builder = Callable[[FigureInputs], Tuple[Dict[str, Any], Frame]]


@dataclass(frozen=True)
class FigureSpec:
    """One registry entry: metadata plus the generator function."""

    name: str
    title: str
    requires: Tuple[str, ...]
    builder: Builder
    caption: str = ""
    paper: Optional[str] = None
    optional: Tuple[str, ...] = field(default=())

    def build(self, inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
        missing = inputs.missing(self.requires)
        if missing:
            raise AnalysisError(
                f"figure {self.name!r} needs {', '.join(missing)} input(s)"
            )
        spec, table = self.builder(inputs)
        if len(table) == 0:
            raise AnalysisError(
                f"figure {self.name!r}: no rows survived filtering — "
                f"the input data has nothing to plot"
            )
        return spec, table


#: The registry: figure name -> :class:`FigureSpec`, registration order.
FIGURES: Dict[str, FigureSpec] = {}


def register_figure(
    name: str,
    title: str,
    requires: Tuple[str, ...],
    caption: str = "",
    paper: Optional[str] = None,
    optional: Tuple[str, ...] = (),
) -> Callable[[Builder], Builder]:
    """Class the decorated function as the generator for ``name``."""

    def wrap(builder: Builder) -> Builder:
        if name in FIGURES:
            raise AnalysisError(f"duplicate figure name {name!r}")
        for kind in (*requires, *optional):
            if kind not in INPUT_KINDS:
                raise AnalysisError(
                    f"figure {name!r}: unknown input kind {kind!r}"
                )
        FIGURES[name] = FigureSpec(
            name=name,
            title=title,
            requires=tuple(requires),
            builder=builder,
            caption=caption,
            paper=paper,
            optional=tuple(optional),
        )
        return builder

    return wrap


def figure_names() -> List[str]:
    """Registered figure names, registration order."""
    return list(FIGURES)


def figure_spec(name: str) -> FigureSpec:
    try:
        return FIGURES[name]
    except KeyError:
        known = ", ".join(FIGURES) or "-"
        raise AnalysisError(f"unknown figure {name!r} (have: {known})") from None


def _mean(values: List[Any]) -> Optional[float]:
    numbers = [value for value in values if isinstance(value, (int, float))]
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def _single_sm(row: Dict[str, Any]) -> bool:
    return (row["num_sms"] or 1) == 1


# ---------------------------------------------------------------------------
# the registered figures
# ---------------------------------------------------------------------------


@register_figure(
    "ipc_iw_frontier",
    title="IPC vs. instruction window across designs",
    requires=("points",),
    caption=(
        "Per-benchmark IPC as the operand-window size grows, one line "
        "per registered design; windowless designs plot at IW=0."
    ),
    paper="Fig. 10a / Fig. 11",
)
def ipc_iw_frontier(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    points = inputs.points.filter(
        lambda row: row["ipc"] is not None and _single_sm(row)
    )
    rows = []
    for (benchmark, design, window), group in points.groupby(
        "benchmark", "design", "window"
    ):
        rows.append(
            {
                "benchmark": benchmark,
                "design": design,
                "window": window,
                "ipc": _mean(group["ipc"]),
            }
        )
    table = Frame.from_records(
        rows, columns=("benchmark", "design", "window", "ipc")
    ).sort("benchmark", "design", "window")
    spec = {
        "description": (
            "IPC-vs-IW frontier: per-benchmark IPC against the operand "
            "window size, one series per design."
        ),
        "mark": {"type": "line", "point": True},
        "encoding": {
            "x": {
                "field": "window",
                "type": "quantitative",
                "title": "instruction window (IW)",
                "axis": {"tickMinStep": 1},
            },
            "y": {
                "field": "ipc",
                "type": "quantitative",
                "title": "IPC",
            },
            "color": {
                "field": "design",
                "type": "nominal",
                "title": "design",
                "scale": design_color_scale(table.unique("design")),
            },
            "facet": {
                "field": "benchmark",
                "type": "nominal",
                "title": "benchmark",
            },
        },
        "columns": 3,
    }
    return spec, table


@register_figure(
    "device_ipc_scaling",
    title="Device IPC vs. SM count",
    requires=("points",),
    caption=(
        "Device-level IPC as the launch is partitioned across more "
        "SMs, one series per design (telemetry streams swept with "
        "different --sms settings)."
    ),
    paper="Fig. 10b (device extension)",
)
def device_ipc_scaling(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    points = inputs.points.filter(
        lambda row: row["ipc"] is not None and row["num_sms"] is not None
    )
    rows = []
    for (benchmark, design, num_sms), group in points.groupby(
        "benchmark", "design", "num_sms"
    ):
        rows.append(
            {
                "benchmark": benchmark,
                "design": design,
                "num_sms": num_sms,
                "ipc": _mean(group["ipc"]),
            }
        )
    table = Frame.from_records(
        rows, columns=("benchmark", "design", "num_sms", "ipc")
    ).sort("benchmark", "design", "num_sms")
    spec = {
        "description": (
            "Device-IPC scaling: device IPC against the SM count the "
            "launch was partitioned across."
        ),
        "mark": {"type": "line", "point": True},
        "encoding": {
            "x": {
                "field": "num_sms",
                "type": "quantitative",
                "title": "SMs",
                "axis": {"tickMinStep": 1},
            },
            "y": {
                "field": "ipc",
                "type": "quantitative",
                "title": "device IPC",
            },
            "color": {
                "field": "design",
                "type": "nominal",
                "title": "design",
                "scale": design_color_scale(table.unique("design")),
            },
            "facet": {
                "field": "benchmark",
                "type": "nominal",
                "title": "benchmark",
            },
        },
        "columns": 3,
    }
    return spec, table


@register_figure(
    "stall_breakdown",
    title="Issue/dispatch stall reasons",
    requires=("trace",),
    caption=(
        "Count-weighted stall events from a cycle-level trace, broken "
        "down by pipeline stage and recorded reason."
    ),
    paper="§ IV (stall taxonomy)",
)
def stall_breakdown(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    stalls = inputs.trace.filter(
        lambda row: row["kind"] in ("issue_stall", "dispatch_stall")
    )
    rows = []
    for (stage, kind, reason), group in stalls.groupby("stage", "kind", "reason"):
        rows.append(
            {
                "stage": stage,
                "kind": kind,
                "reason": reason or "unattributed",
                "events": sum(group["count"]),
            }
        )
    table = Frame.from_records(
        rows, columns=("stage", "kind", "reason", "events")
    ).sort("events", reverse=True)
    spec = {
        "description": (
            "Issue-stall breakdown: count-weighted stall events per "
            "recorded reason, colored by stall kind."
        ),
        "mark": "bar",
        "encoding": {
            "y": {
                "field": "reason",
                "type": "nominal",
                "title": "stall reason",
                "sort": "-x",
            },
            "x": {
                "field": "events",
                "type": "quantitative",
                "title": "stalled cycles (count-weighted events)",
            },
            "color": {
                "field": "kind",
                "type": "nominal",
                "title": "stall kind",
            },
            "tooltip": [
                {"field": "reason", "type": "nominal"},
                {"field": "kind", "type": "nominal"},
                {"field": "events", "type": "quantitative"},
            ],
        },
    }
    return spec, table


@register_figure(
    "boc_composition",
    title="BOC traffic composition",
    requires=("trace",),
    caption=(
        "Operand-store traffic from a cycle-level trace: hits "
        "(forwarded reads), inserts, and evictions, stacked by the "
        "recorded reason."
    ),
    paper="Fig. 8 / Fig. 9",
)
def boc_composition(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    events = inputs.trace.filter(
        lambda row: row["kind"] in ("boc_hit", "boc_insert", "boc_evict")
    )
    rows = []
    for (kind, reason), group in events.groupby("kind", "reason"):
        rows.append(
            {
                "kind": kind,
                "reason": reason or "direct",
                "events": sum(group["count"]),
            }
        )
    table = Frame.from_records(rows, columns=("kind", "reason", "events")).sort(
        "kind", "reason"
    )
    spec = {
        "description": (
            "BOC hit/insert/evict composition, stacked by recorded "
            "reason (slide vs. capacity vs. drain evictions)."
        ),
        "mark": "bar",
        "encoding": {
            "x": {
                "field": "kind",
                "type": "nominal",
                "title": "BOC event",
                "sort": ["boc_hit", "boc_insert", "boc_evict"],
            },
            "y": {
                "field": "events",
                "type": "quantitative",
                "title": "count-weighted events",
                "stack": "zero",
            },
            "color": {
                "field": "reason",
                "type": "nominal",
                "title": "reason",
            },
            "tooltip": [
                {"field": "kind", "type": "nominal"},
                {"field": "reason", "type": "nominal"},
                {"field": "events", "type": "quantitative"},
            ],
        },
    }
    return spec, table


@register_figure(
    "sweep_health",
    title="Sweep cache/retry health",
    requires=("points",),
    optional=("failures",),
    caption=(
        "Where every resolved grid point came from (memo / disk cache "
        "/ fresh simulation / failed), per benchmark — the dashboard "
        "view of sweep provenance and retry health."
    ),
)
def sweep_health(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    rows = []
    for (benchmark, source), group in inputs.points.groupby("benchmark", "source"):
        rows.append(
            {
                "benchmark": benchmark,
                "source": source,
                "points": len(group),
                "attempts": sum(
                    value for value in group["attempts"] if value is not None
                ),
            }
        )
    if inputs.failures is not None:
        for (benchmark,), group in inputs.failures.groupby("benchmark"):
            rows.append(
                {
                    "benchmark": benchmark,
                    "source": "failed",
                    "points": len(group),
                    "attempts": sum(
                        value for value in group["attempts"] if value is not None
                    ),
                }
            )
    table = Frame.from_records(
        rows, columns=("benchmark", "source", "points", "attempts")
    ).sort("benchmark", "source")
    spec = {
        "description": (
            "Sweep health: per-benchmark provenance composition of "
            "resolved grid points, including failures; attempts ride "
            "in the tooltip."
        ),
        "mark": "bar",
        "encoding": {
            "x": {
                "field": "benchmark",
                "type": "nominal",
                "title": "benchmark",
            },
            "y": {
                "field": "points",
                "type": "quantitative",
                "title": "grid points",
                "stack": "zero",
            },
            "color": {
                "field": "source",
                "type": "nominal",
                "title": "provenance",
                "scale": {
                    "domain": ["memo", "cache", "sim", "failed"],
                    "range": ["#009E73", "#0072B2", "#E69F00", "#D55E00"],
                },
            },
            "tooltip": [
                {"field": "benchmark", "type": "nominal"},
                {"field": "source", "type": "nominal"},
                {"field": "points", "type": "quantitative"},
                {"field": "attempts", "type": "quantitative"},
            ],
        },
    }
    return spec, table


@register_figure(
    "engine_throughput",
    title="Engine throughput and fast-forward share",
    requires=("bench",),
    caption=(
        "Committed engine-bench baseline: simulated cycles/sec per "
        "benchmark x design case (bars), with the share of cycles the "
        "event-horizon loop jumped overlaid (points, right axis)."
    ),
)
def engine_throughput(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    engine = inputs.bench.where(kind="engine")
    table = engine.select(
        "case", "benchmark", "design", "cycles_per_sec", "ff_share"
    ).sort("case")
    spec = {
        "description": (
            "Engine throughput: cycles/sec per bench case with the "
            "fast-forwarded cycle share overlaid on an independent "
            "axis."
        ),
        "encoding": {
            "x": {
                "field": "case",
                "type": "nominal",
                "title": "benchmark / design",
                "sort": None,
            },
        },
        "layer": [
            {
                "mark": "bar",
                "encoding": {
                    "y": {
                        "field": "cycles_per_sec",
                        "type": "quantitative",
                        "title": "cycles / second",
                    },
                    "color": {
                        "field": "design",
                        "type": "nominal",
                        "title": "design",
                        "scale": design_color_scale(table.unique("design")),
                    },
                },
            },
            {
                "mark": {"type": "point", "filled": True, "size": 70},
                "encoding": {
                    "y": {
                        "field": "ff_share",
                        "type": "quantitative",
                        "title": "fast-forwarded share",
                        "axis": {"format": ".0%"},
                    },
                    "color": {"value": "#000000"},
                },
            },
        ],
        "resolve": {"scale": {"y": "independent"}},
    }
    return spec, table


@register_figure(
    "service_throughput",
    title="Sweep-service throughput: cold vs. warm",
    requires=("bench",),
    caption=(
        "Load-generator report: points served per second on the cold "
        "pass (single-flight simulations) vs. the warm pass (pure "
        "cache hits); log scale because the gap is the whole point."
    ),
)
def service_throughput(inputs: FigureInputs) -> Tuple[Dict[str, Any], Frame]:
    service = inputs.bench.where(kind="service")
    table = service.select(
        "file",
        "bench_pass",
        "points_per_sec",
        "points_served",
        "simulated",
        "latency_p50",
        "latency_p95",
    ).sort("file", "bench_pass")
    spec = {
        "description": (
            "Service throughput: points/sec for the cold and warm "
            "load-generator passes, log-scaled."
        ),
        "mark": "bar",
        "encoding": {
            "x": {
                "field": "bench_pass",
                "type": "nominal",
                "title": "pass",
                "sort": ["cold", "warm"],
            },
            "y": {
                "field": "points_per_sec",
                "type": "quantitative",
                "title": "points / second",
                "scale": {"type": "log"},
            },
            "color": {
                "field": "file",
                "type": "nominal",
                "title": "report",
            },
            "tooltip": [
                {"field": "bench_pass", "type": "nominal"},
                {"field": "points_per_sec", "type": "quantitative"},
                {"field": "latency_p50", "type": "quantitative"},
                {"field": "latency_p95", "type": "quantitative"},
            ],
        },
    }
    return spec, table
