"""Schema-validated readers: telemetry / trace / bench files -> frames.

Every loader returns a :class:`~repro.analysis.frame.Frame` whose
``meta`` records what was *skipped* — torn tails from a crashed sweep,
injected corruption, records that no longer validate — so a dashboard
can distinguish "clean stream" from "salvaged stream" instead of
silently plotting the survivors.  The tolerance rules match the service
journal reader (:func:`repro.service.journal.read_records`): a line
that fails to parse or validate is counted and skipped, never fatal;
a missing *start* record downgrades the stream-level columns to
``None`` rather than rejecting the points.

Loaders:

* :func:`build_points_df`   — ``point`` records from one or more sweep
  telemetry streams (schema v1 and v2), stamped with each stream's
  scale so multi-stream frames can compare ``num_sms`` / warp counts;
* :func:`build_failures_df` — ``failure`` records, same stamping;
* :func:`build_trace_df`    — trace event exports (JSONL or CSV), with
  the per-kind pipeline ``stage`` joined on;
* :func:`build_bench_df`    — the committed ``benchmarks/BENCH_*.json``
  reports (engine throughput and service load-generator formats).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import AnalysisError, SchemaError
from ..observe.schema import validate_event, validate_telemetry_record
from ..stats.trace import STAGE_OF, EventKind
from .frame import Frame

PathLike = Union[str, "os.PathLike[str]"]

#: Column order of :func:`build_points_df` frames.
POINT_COLUMNS = (
    "benchmark",
    "design",
    "window",
    "source",
    "seconds",
    "attempts",
    "cycles",
    "instructions",
    "ipc",
    "fast_forwarded_cycles",
    "num_warps",
    "trace_scale",
    "num_sms",
    "schema",
    "stream",
)

#: Column order of :func:`build_failures_df` frames.
FAILURE_COLUMNS = (
    "benchmark",
    "design",
    "window",
    "label",
    "kind",
    "attempts",
    "seconds",
    "error_type",
    "message",
    "num_sms",
    "schema",
    "stream",
)

#: Column order of :func:`build_trace_df` frames.
TRACE_COLUMNS = (
    "cycle",
    "kind",
    "stage",
    "warp",
    "count",
    "reason",
    "register",
    "bank",
    "trace_index",
    "opcode",
)

#: Column order of :func:`build_bench_df` frames.
BENCH_COLUMNS = (
    "file",
    "kind",
    "case",
    "benchmark",
    "design",
    "cycles",
    "cycles_per_sec",
    "fast_forwarded_cycles",
    "ff_share",
    "bench_pass",
    "points_per_sec",
    "points_served",
    "simulated",
    "latency_p50",
    "latency_p95",
)


def _stream_name(path: PathLike) -> str:
    return os.path.basename(os.fspath(path))


def _iter_valid_records(
    path: PathLike, counts: Dict[str, int]
) -> Iterator[dict]:
    """Telemetry records from one JSONL stream, salvage-style.

    Unparseable lines (torn tails, corruption) bump
    ``counts["corrupt_lines"]``; parseable-but-invalid records bump
    ``counts["invalid_records"]``.  A missing file raises — pointing the
    CLI at a typo'd path should not read as an empty sweep.
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                counts["corrupt_lines"] += 1
                continue
            try:
                validate_telemetry_record(record)
            except SchemaError:
                counts["invalid_records"] += 1
                continue
            yield record


def _load_telemetry(
    paths: Tuple[PathLike, ...], record_type: str, columns: Tuple[str, ...]
) -> Frame:
    if not paths:
        raise AnalysisError("no telemetry files given")
    counts = {"corrupt_lines": 0, "invalid_records": 0}
    rows: List[Dict[str, Any]] = []
    streams = 0
    for path in paths:
        streams += 1
        stream = _stream_name(path)
        scale: Dict[str, Any] = {}
        schema_version: Optional[int] = None
        for record in _iter_valid_records(path, counts):
            if record["type"] == "start":
                scale = dict(record.get("scale", {}))
                schema_version = record.get("schema")
                continue
            if record["type"] != record_type:
                continue
            row = {name: record.get(name) for name in columns}
            row["num_warps"] = scale.get("num_warps")
            row["trace_scale"] = scale.get("trace_scale")
            row["num_sms"] = scale.get("num_sms")
            row["schema"] = schema_version
            row["stream"] = stream
            rows.append({name: row.get(name) for name in columns})
    meta = dict(counts)
    meta["streams"] = streams
    return Frame.from_records(rows, columns=columns, meta=meta)


def build_points_df(*paths: PathLike) -> Frame:
    """``point`` records from one or more sweep telemetry streams.

    Works on schema v1 and v2 streams alike — the v2-only
    ``fast_forwarded_cycles`` column is ``None`` where a stream (or a
    memo/cache-sourced point) omits it.  Each point is stamped with its
    stream's ``start`` scale (``num_warps`` / ``trace_scale`` /
    ``num_sms``), schema version, and file name, so frames built from
    several sweeps — e.g. one per ``--sms`` setting — stay separable.
    """
    return _load_telemetry(paths, "point", POINT_COLUMNS)


def build_failures_df(*paths: PathLike) -> Frame:
    """``failure`` records from one or more sweep telemetry streams."""
    return _load_telemetry(paths, "failure", FAILURE_COLUMNS)


_TRACE_INT_FIELDS = ("cycle", "warp", "count", "register", "bank", "trace_index")

#: Fields an event record may carry (the CSV column vocabulary).
POSSIBLE_EVENT_FIELDS = frozenset(
    ("cycle", "kind", "warp", "count", "reason", "register", "bank",
     "trace_index", "opcode")
)


def _trace_row(record: Dict[str, Any]) -> Dict[str, Any]:
    row = {name: record.get(name) for name in TRACE_COLUMNS}
    row["count"] = 1 if row["count"] is None else row["count"]
    row["stage"] = STAGE_OF[EventKind(record["kind"])]
    return row


def build_trace_df(path: PathLike, format: Optional[str] = None) -> Frame:
    """Trace events from a ``repro trace --out`` export.

    ``format`` is ``"jsonl"`` or ``"csv"``; by default it is inferred
    from the file extension (anything not ``.csv`` reads as JSONL, the
    tolerant format).  JSONL lines are validated against
    :data:`~repro.observe.schema.EVENT_SCHEMA` with the same
    skip-and-count salvage rules as the telemetry loaders; CSV rows with
    non-numeric required cells are counted as corrupt.
    """
    if format is None:
        format = "csv" if os.fspath(path).lower().endswith(".csv") else "jsonl"
    if format not in ("jsonl", "csv"):
        raise AnalysisError(f"unknown trace format {format!r} (jsonl or csv)")
    counts = {"corrupt_lines": 0, "invalid_records": 0}
    rows: List[Dict[str, Any]] = []
    if format == "jsonl":
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    counts["corrupt_lines"] += 1
                    continue
                try:
                    validate_event(record)
                except SchemaError:
                    counts["invalid_records"] += 1
                    continue
                rows.append(_trace_row(record))
    else:
        with open(path, newline="", encoding="utf-8") as handle:
            for record in csv.DictReader(handle):
                cleaned: Dict[str, Any] = {
                    name: value
                    for name, value in record.items()
                    if value not in ("", None)
                }
                try:
                    for name in _TRACE_INT_FIELDS:
                        if name in cleaned:
                            cleaned[name] = int(cleaned[name])
                    validate_event(
                        {
                            name: value
                            for name, value in cleaned.items()
                            if name in POSSIBLE_EVENT_FIELDS
                        }
                    )
                except (ValueError, SchemaError):
                    counts["invalid_records"] += 1
                    continue
                rows.append(_trace_row(cleaned))
    return Frame.from_records(rows, columns=TRACE_COLUMNS, meta=dict(counts))


def _engine_rows(path: PathLike, document: dict) -> List[Dict[str, Any]]:
    designs = document.get("designs")
    if not isinstance(designs, dict):
        raise AnalysisError(f"{path}: engine bench JSON without a designs map")
    rows = []
    for case in sorted(designs):
        entry = designs[case]
        if not isinstance(entry, dict) or "cycles_per_sec" not in entry:
            raise AnalysisError(f"{path}: malformed engine bench entry {case!r}")
        benchmark, _, design = case.partition("/")
        cycles = entry.get("cycles")
        forwarded = entry.get("fast_forwarded_cycles")
        share = None
        if isinstance(cycles, int) and cycles > 0 and isinstance(forwarded, int):
            share = forwarded / cycles
        rows.append(
            {
                "file": _stream_name(path),
                "kind": "engine",
                "case": case,
                "benchmark": benchmark,
                "design": design or None,
                "cycles": cycles,
                "cycles_per_sec": entry["cycles_per_sec"],
                "fast_forwarded_cycles": forwarded,
                "ff_share": share,
            }
        )
    return rows


def _service_rows(path: PathLike, document: dict) -> List[Dict[str, Any]]:
    passes = document.get("passes")
    if not isinstance(passes, dict):
        raise AnalysisError(f"{path}: service bench JSON without a passes map")
    rows = []
    for name in sorted(passes):
        entry = passes[name]
        if not isinstance(entry, dict) or "points_per_sec" not in entry:
            raise AnalysisError(f"{path}: malformed service bench pass {name!r}")
        latency = entry.get("latency", {})
        service = entry.get("service", {})
        rows.append(
            {
                "file": _stream_name(path),
                "kind": "service",
                "case": name,
                "bench_pass": name,
                "points_per_sec": entry["points_per_sec"],
                "points_served": entry.get("points_served"),
                "simulated": service.get("simulated"),
                "latency_p50": latency.get("p50"),
                "latency_p95": latency.get("p95"),
            }
        )
    return rows


def build_bench_df(*paths: PathLike) -> Frame:
    """Rows from committed ``BENCH_*.json`` reports.

    Both committed formats are understood and distinguished by the
    ``kind`` column: the engine throughput baseline (a ``designs`` map
    of ``benchmark/design`` cases; gains ``ff_share`` =
    ``fast_forwarded_cycles / cycles``) and the service load-generator
    report (a ``passes`` map with throughput and latency percentiles).
    A file that is neither raises :class:`~repro.errors.AnalysisError`.
    """
    if not paths:
        raise AnalysisError("no bench files given")
    rows: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as error:
                raise AnalysisError(f"{path}: not JSON ({error})") from error
        if not isinstance(document, dict):
            raise AnalysisError(f"{path}: expected a JSON object")
        # Order matters: the service report also carries a "designs"
        # key (the requested design *list*), so sniff "passes" first.
        if "passes" in document:
            rows.extend(_service_rows(path, document))
        elif "designs" in document:
            rows.extend(_engine_rows(path, document))
        else:
            raise AnalysisError(
                f"{path}: unrecognized bench format (no designs/passes map)"
            )
    return Frame.from_records(rows, columns=BENCH_COLUMNS, meta={"files": len(paths)})
