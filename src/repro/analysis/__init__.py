"""Telemetry-to-figures analysis: loaders, a figure registry, a theme.

The repo's sweeps, services, traces, and benches all emit
machine-readable streams; this package turns them into *figures* — the
IPC-vs-IW frontiers, stall breakdowns, and throughput charts the ASCII
reports cannot draw.  The shape follows the figure-registry pattern:

* :mod:`repro.analysis.frame`   — a tiny column-store table (the
  pandas stand-in; ``Frame.to_pandas()`` converts when pandas exists);
* :mod:`repro.analysis.loaders` — schema-validated, torn-tail-tolerant
  readers from telemetry JSONL / trace exports / bench JSONs to frames;
* :mod:`repro.analysis.figures` — the declarative name -> generator
  registry (``FIGURES``), each generator a pure frames -> (spec, table)
  function;
* :mod:`repro.analysis.theme`   — the one publication theme stamped on
  every spec;
* :mod:`repro.analysis.render`  — emits ``<name>.vl.json`` (Vega-Lite,
  validated against ``FIGURE_SPEC_SCHEMA``) plus the backing
  ``<name>.csv``.

Driven by ``python -m repro figures`` (see DESIGN.md §12).
"""

from .figures import (
    FIGURES,
    FigureInputs,
    FigureSpec,
    figure_names,
    figure_spec,
    register_figure,
)
from .frame import Frame
from .loaders import (
    build_bench_df,
    build_failures_df,
    build_points_df,
    build_trace_df,
)
from .render import (
    RenderedFigure,
    RenderReport,
    build_inputs,
    render_figure,
    render_figures,
)
from .theme import PALETTE, THEME_CONFIG, apply_theme

__all__ = [
    "FIGURES",
    "Frame",
    "FigureInputs",
    "FigureSpec",
    "PALETTE",
    "RenderReport",
    "RenderedFigure",
    "THEME_CONFIG",
    "apply_theme",
    "build_bench_df",
    "build_failures_df",
    "build_inputs",
    "build_points_df",
    "build_trace_df",
    "figure_names",
    "figure_spec",
    "register_figure",
    "render_figure",
    "render_figures",
]
