"""A tiny column-oriented data table — the pandas stand-in.

The analysis loaders (:mod:`repro.analysis.loaders`) and figure
generators (:mod:`repro.analysis.figures`) operate on :class:`Frame`, a
deliberately small subset of the pandas ``DataFrame`` surface: named
columns over aligned row lists, filtering, sorting, group-by, and CSV
serialization.  The subset is enough for every registered figure, keeps
the pipeline importable on a bare ``numpy``-only install (this repo's
baseline), and converts losslessly to a real ``DataFrame`` via
:meth:`Frame.to_pandas` when pandas happens to be importable.

Frames are immutable by convention: every transform returns a new
:class:`Frame` sharing nothing with its source, so a figure generator
cannot corrupt the loader output another generator is about to read.
"""

from __future__ import annotations

import csv
import io
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import AnalysisError


def _sort_token(value: Any) -> Tuple[int, Any]:
    """A totally-ordered proxy for a heterogeneous cell value.

    ``None`` sorts first, then booleans/numbers, then everything else by
    its string form — so a column mixing ``None`` with ints (an optional
    telemetry field) still sorts deterministically.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


class Frame:
    """An ordered mapping of column name -> equal-length value list."""

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any]],
        meta: Optional[Mapping[str, Any]] = None,
    ):
        self._columns: Dict[str, List[Any]] = {
            name: list(values) for name, values in columns.items()
        }
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise AnalysisError(
                f"ragged frame: column lengths {sorted(lengths)} differ"
            )
        self._length = lengths.pop() if lengths else 0
        #: Loader provenance (corrupt-line counts, stream counts, ...).
        self.meta: Dict[str, Any] = dict(meta or {})

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, Any]],
        columns: Optional[Sequence[str]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "Frame":
        """Build a frame from row dicts.

        ``columns`` fixes the column set and order; without it, the
        union of keys in first-seen order is used.  Missing cells are
        ``None``.
        """
        rows = [dict(record) for record in records]
        if columns is None:
            names: List[str] = []
            for row in rows:
                for key in row:
                    if key not in names:
                        names.append(key)
        else:
            names = list(columns)
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls(data, meta=meta)

    # -- introspection ----------------------------------------------------

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> List[Any]:
        return self.column(name)

    def column(self, name: str) -> List[Any]:
        """The values of one column (a copy; frames are immutable)."""
        try:
            return list(self._columns[name])
        except KeyError:
            raise AnalysisError(
                f"no column {name!r} (have: {', '.join(self._columns) or '-'})"
            ) from None

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Iterate rows as dicts (column order preserved)."""
        names = self.columns
        for index in range(self._length):
            yield {name: self._columns[name][index] for name in names}

    def to_records(self) -> List[Dict[str, Any]]:
        return list(self.rows())

    def __repr__(self) -> str:
        return f"Frame({self._length} rows x {len(self._columns)} columns)"

    # -- transforms -------------------------------------------------------

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Frame":
        """Rows for which ``predicate(row_dict)`` is true."""
        return Frame.from_records(
            [row for row in self.rows() if predicate(row)],
            columns=self.columns,
            meta=self.meta,
        )

    def where(self, **equals: Any) -> "Frame":
        """Rows whose named columns equal the given values."""
        return self.filter(
            lambda row: all(row.get(name) == value for name, value in equals.items())
        )

    def select(self, *names: str) -> "Frame":
        """A frame restricted to the named columns, in that order."""
        return Frame(
            {name: self.column(name) for name in names},
            meta=self.meta,
        )

    def assign(self, name: str, fn: Callable[[Dict[str, Any]], Any]) -> "Frame":
        """Add (or replace) a column computed per row."""
        data = {column: self.column(column) for column in self.columns}
        data[name] = [fn(row) for row in self.rows()]
        return Frame(data, meta=self.meta)

    def sort(self, *names: str, reverse: bool = False) -> "Frame":
        """Rows sorted by the named columns (stable, None-first)."""
        for name in names:
            self.column(name)  # raise on unknown columns up front
        rows = sorted(
            self.rows(),
            key=lambda row: tuple(_sort_token(row[name]) for name in names),
            reverse=reverse,
        )
        return Frame.from_records(rows, columns=self.columns, meta=self.meta)

    def unique(self, name: str) -> List[Any]:
        """Distinct values of one column, first-seen order."""
        seen: List[Any] = []
        for value in self.column(name):
            if value not in seen:
                seen.append(value)
        return seen

    def groupby(self, *names: str) -> Iterator[Tuple[Tuple[Any, ...], "Frame"]]:
        """Iterate ``(key_tuple, sub_frame)`` in first-seen key order."""
        for name in names:
            self.column(name)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for row in self.rows():
            key = tuple(row[name] for name in names)
            groups.setdefault(key, []).append(row)
        for key, rows in groups.items():
            yield key, Frame.from_records(rows, columns=self.columns)

    # -- serialization ----------------------------------------------------

    def to_csv(self, target: Any = None) -> Optional[str]:
        """Write the frame as CSV (header + rows).

        ``target`` is a filesystem path or an open text stream; with no
        target, the CSV text is returned.  ``None`` cells serialize as
        empty, matching the trace CSV exporter's convention.
        """
        if target is None:
            buffer = io.StringIO()
            self.to_csv(buffer)
            return buffer.getvalue()
        if hasattr(target, "write"):
            writer = csv.writer(target)
            writer.writerow(self.columns)
            for row in self.rows():
                writer.writerow(
                    ["" if row[name] is None else row[name] for name in self.columns]
                )
            return None
        with open(target, "w", newline="", encoding="utf-8") as handle:
            self.to_csv(handle)
        return None

    def to_pandas(self):
        """This frame as a ``pandas.DataFrame``.

        pandas is an *optional* dependency of the analysis layer; the
        import is deferred so the whole pipeline works without it, and
        an explicit request on a pandas-less install fails with a typed,
        actionable error instead of a bare ImportError.
        """
        try:
            import pandas
        except ImportError as error:
            raise AnalysisError(
                "pandas is not installed; Frame.to_pandas() needs it "
                "(the rest of repro.analysis does not)"
            ) from error
        return pandas.DataFrame({name: self.column(name) for name in self.columns})
