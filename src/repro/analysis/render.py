"""Render registered figures to ``<name>.vl.json`` + ``<name>.csv``.

The renderer is the only writer in the pipeline: it themes a
generator's spec, points ``data.url`` at the backing CSV it writes
next to the spec, stamps provenance into ``usermeta``, and validates
the result against
:data:`repro.observe.schema.FIGURE_SPEC_SCHEMA` *before* anything
touches disk — an invalid spec is a bug in a generator, and it fails
the render instead of shipping an artifact no consumer can trust.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .. import __version__
from ..errors import AnalysisError
from ..observe.schema import validate_figure_spec
from .figures import FIGURES, FigureInputs, figure_spec
from .frame import Frame
from .loaders import (
    build_bench_df,
    build_failures_df,
    build_points_df,
    build_trace_df,
)
from .theme import apply_theme

#: What one figure emits per format choice.
FORMATS = ("both", "spec", "csv")


@dataclass(frozen=True)
class RenderedFigure:
    """What one figure render produced."""

    name: str
    rows: int
    spec_path: Optional[str] = None
    csv_path: Optional[str] = None

    @property
    def paths(self) -> List[str]:
        return [path for path in (self.spec_path, self.csv_path) if path]


@dataclass
class RenderReport:
    """The outcome of a :func:`render_figures` invocation."""

    rendered: List[RenderedFigure] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)


def render_figure(
    name: str,
    inputs: FigureInputs,
    out_dir: str,
    format: str = "both",
) -> RenderedFigure:
    """Render one registered figure into ``out_dir``.

    Returns the written paths; raises
    :class:`~repro.errors.AnalysisError` when the figure is unknown,
    its required inputs are missing, or it has no data to plot.
    """
    if format not in FORMATS:
        raise AnalysisError(f"unknown render format {format!r} (use {FORMATS})")
    entry = figure_spec(name)
    spec, table = entry.build(inputs)
    spec = apply_theme(spec)
    spec["data"] = {"url": f"{name}.csv"}
    spec.setdefault("title", entry.title)
    spec["usermeta"] = {
        "figure": name,
        "paper": entry.paper or "",
        "generator": f"repro figures {__version__}",
        "rows": len(table),
    }
    validate_figure_spec(spec)
    os.makedirs(out_dir, exist_ok=True)
    spec_path = csv_path = None
    if format in ("both", "csv"):
        csv_path = os.path.join(out_dir, f"{name}.csv")
        table.to_csv(csv_path)
    if format in ("both", "spec"):
        spec_path = os.path.join(out_dir, f"{name}.vl.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(spec, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return RenderedFigure(
        name=name,
        rows=len(table),
        spec_path=spec_path,
        csv_path=csv_path,
    )


def render_figures(
    inputs: FigureInputs,
    out_dir: str,
    only: Optional[Sequence[str]] = None,
    format: str = "both",
    log: Optional[Callable[[str], None]] = None,
) -> RenderReport:
    """Render every registered figure the inputs can feed.

    Without ``only``, figures whose required inputs were not loaded are
    *skipped* (reported in the result) — pointing the CLI at telemetry
    alone should render the telemetry figures, not fail on the trace
    ones.  With ``only``, the named figures are mandatory: a missing
    input or empty table raises.
    """
    names = list(only) if only is not None else list(FIGURES)
    report = RenderReport()
    for name in names:
        entry = figure_spec(name)
        missing = inputs.missing(entry.requires)
        if missing and only is None:
            reason = f"missing {', '.join(missing)} input(s)"
            report.skipped.append((name, reason))
            if log is not None:
                log(f"skipped {name}: {reason}")
            continue
        rendered = render_figure(name, inputs, out_dir, format=format)
        report.rendered.append(rendered)
        if log is not None:
            log(
                f"wrote {name} ({rendered.rows} row(s)) -> "
                + ", ".join(os.path.basename(p) for p in rendered.paths)
            )
    return report


def build_inputs(
    telemetry: Sequence[str] = (),
    trace: Optional[str] = None,
    bench: Sequence[str] = (),
) -> FigureInputs:
    """Load CLI-style file arguments into :class:`FigureInputs`."""
    points: Optional[Frame] = None
    failures: Optional[Frame] = None
    trace_frame: Optional[Frame] = None
    bench_frame: Optional[Frame] = None
    if telemetry:
        points = build_points_df(*telemetry)
        failures = build_failures_df(*telemetry)
    if trace is not None:
        trace_frame = build_trace_df(trace)
    if bench:
        bench_frame = build_bench_df(*bench)
    return FigureInputs(
        points=points,
        failures=failures,
        trace=trace_frame,
        bench=bench_frame,
    )
