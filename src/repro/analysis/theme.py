"""The one publication theme every rendered figure spec carries.

A Vega-Lite spec is self-contained: the renderer does not get to
inject styling later, so the theme must ride inside every emitted
``.vl.json``.  :func:`apply_theme` stamps the schema URL, a default
view size, and the shared ``config`` block onto a bare spec; anything
the figure generator already set wins over the theme default, so a
figure can opt out of one knob without forking the theme.

The categorical palette is Okabe-Ito — colorblind-safe, print-safe,
and long enough for the design registry; design names get pinned
colors so BOW is the same orange in every figure of a report.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List

#: The Vega-Lite dialect every emitted spec declares.
VEGA_LITE_SCHEMA_URL = "https://vega.github.io/schema/vega-lite/v5.json"

#: Okabe-Ito categorical palette (colorblind-safe).
PALETTE: List[str] = [
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # bluish green
    "#D55E00",  # vermillion
    "#CC79A7",  # reddish purple
    "#56B4E9",  # sky blue
    "#F0E442",  # yellow
    "#000000",  # black
]

#: Pinned series colors for the design registry, in frontier order.
DESIGN_COLORS: Dict[str, str] = {
    "baseline": "#0072B2",
    "bow": "#E69F00",
    "bow-wr": "#D55E00",
    "rfc": "#009E73",
    "infinite-oc": "#CC79A7",
    "reference": "#56B4E9",
}

#: Default single-view size (per facet for faceted specs).
DEFAULT_WIDTH = 360
DEFAULT_HEIGHT = 240

#: The shared ``config`` block (font stack, axis/legend styling).
THEME_CONFIG: Dict[str, Any] = {
    "font": "Helvetica, Arial, sans-serif",
    "axis": {
        "labelFontSize": 11,
        "titleFontSize": 12,
        "grid": True,
        "gridColor": "#e0e0e0",
        "domainColor": "#444444",
        "tickColor": "#444444",
    },
    "legend": {
        "labelFontSize": 11,
        "titleFontSize": 12,
        "orient": "right",
    },
    "title": {
        "fontSize": 14,
        "anchor": "start",
        "fontWeight": "bold",
    },
    "view": {
        "stroke": "transparent",
    },
    "range": {
        "category": PALETTE,
    },
    "bar": {
        "opacity": 0.9,
    },
    "line": {
        "strokeWidth": 2,
    },
    "point": {
        "filled": True,
        "size": 55,
    },
}


def design_color_scale(designs: List[str]) -> Dict[str, List[str]]:
    """A Vega-Lite color ``scale`` pinning each design's series color.

    Designs without a pinned entry fall back to palette order, so a
    future registry addition renders without a theme edit.
    """
    spare = [color for color in PALETTE if color not in DESIGN_COLORS.values()]
    colors = []
    for index, design in enumerate(designs):
        fallback = spare[index % len(spare)] if spare else PALETTE[index % len(PALETTE)]
        colors.append(DESIGN_COLORS.get(design, fallback))
    return {"domain": list(designs), "range": colors}


def _merge_defaults(target: Dict[str, Any], defaults: Dict[str, Any]) -> None:
    """Recursively fill ``defaults`` into ``target`` without overriding."""
    for key, value in defaults.items():
        if key not in target:
            target[key] = copy.deepcopy(value)
        elif isinstance(target[key], dict) and isinstance(value, dict):
            _merge_defaults(target[key], value)


def apply_theme(spec: Dict[str, Any]) -> Dict[str, Any]:
    """A themed deep copy of ``spec`` (the input is left untouched).

    Stamps ``$schema``, the default view size (single-view and layered
    specs only — faceted specs size per facet via their generator), and
    the publication ``config``; spec-provided values win on conflict.
    """
    themed = copy.deepcopy(spec)
    themed.setdefault("$schema", VEGA_LITE_SCHEMA_URL)
    faceted = "facet" in themed or (
        isinstance(themed.get("encoding"), dict) and "facet" in themed["encoding"]
    )
    if not faceted:
        themed.setdefault("width", DEFAULT_WIDTH)
        themed.setdefault("height", DEFAULT_HEIGHT)
    config = themed.setdefault("config", {})
    _merge_defaults(config, THEME_CONFIG)
    return themed
