"""Machine and BOW configuration.

:class:`GPUConfig` encodes the NVIDIA TITAN X (Pascal) configuration the
paper simulates (its Table II), plus the structural parameters of the
register-file / operand-collector subsystem that the timing model needs.
:class:`BOWConfig` describes one BOW design point (window size, writeback
policy, buffer capacity).

Both are frozen dataclasses: a configuration is a value, shared freely
between the compiler, the timing model, and the energy model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from .errors import ConfigError

#: Bytes of one warp-register: 32 threads x 32 bits (paper SS II).
WARP_REGISTER_BYTES = 128

#: Source-operand entries in a conventional operand collector (SASS has
#: at most 3 register sources).
BASELINE_OC_ENTRIES = 3


class SchedulerPolicy(enum.Enum):
    """Warp scheduling policy used by the issue stage."""

    GTO = "gto"  # greedy-then-oldest (Table II default)
    LRR = "lrr"  # loose round-robin
    # Two-level scheduling (Gebhart et al., the RFC paper's companion):
    # a small active set issues; stalled warps swap out for pending ones.
    TWO_LEVEL = "two-level"


class EvictionPolicy(enum.Enum):
    """Replacement policy of a capacity-limited BOC (SS IV-C ablation).

    The paper uses FIFO; LRU is provided for the design-choice ablation
    (every access refreshes recency, which tracks the extended window
    more closely at the cost of bookkeeping).
    """

    FIFO = "fifo"
    LRU = "lru"


class WritebackPolicy(enum.Enum):
    """How computed results reach the BOC and the register file.

    WRITE_THROUGH  -- baseline BOW: every result goes to both the BOC and
                      the RF (SS IV-A).
    WRITE_BACK     -- BOW-WB: results go to the BOC; values sliding out of
                      the window are written to the RF unless overwritten
                      inside the window (SS IV-B).
    COMPILER       -- BOW-WR: per-instruction 2-bit compiler hints select
                      RF-only / OC-only / both (SS IV-B).
    """

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"
    COMPILER = "compiler"


@dataclass(frozen=True)
class GPUConfig:
    """Structural parameters of one streaming multiprocessor.

    Defaults reproduce the paper's Table II (TITAN X, Pascal) plus the
    Figure 2 register-file organization.
    """

    num_sms: int = 56
    cores_per_sm: int = 128
    max_warps_per_sm: int = 32
    max_threads_per_sm: int = 1024
    threads_per_warp: int = 32

    # Register file (Figure 2): 256 KB per SM across 32 single-ported banks.
    register_file_bytes: int = 256 * 1024
    num_banks: int = 32
    entries_per_bank: int = 64

    # Issue stage: 4 schedulers, each dual-issue.
    num_schedulers: int = 4
    issue_width_per_scheduler: int = 2
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.GTO
    # Active-set size for the two-level policy (ignored by GTO/LRR).
    two_level_active_warps: int = 4

    # Operand collection.
    num_operand_collectors: int = 32  # one per in-flight warp on Pascal
    oc_read_ports: int = 1
    # Cycles from a granted bank read to the operand landing in the
    # collector (arbitration + bank access + crossbar transfer).
    rf_read_latency: int = 3
    # Operands the bank->collector crossbar can deliver per cycle
    # (Figure 2's 1024-bit-link crossbar).  0 means unconstrained (the
    # default: with 32 banks granting at most one read each, the
    # crossbar is rarely the bottleneck; tighten it for ablations).
    crossbar_width: int = 0

    # Execution latencies (cycles), a latency model in the spirit of
    # GPGPU-Sim's Pascal configuration.
    alu_latency: int = 4
    sfu_latency: int = 16
    mem_l1_hit_latency: int = 28
    mem_l2_hit_latency: int = 120
    mem_global_latency: int = 350
    shared_mem_latency: int = 24
    # Where global accesses land (fractions; the remainder goes to
    # DRAM).  The defaults model a cache-friendly mix; streaming
    # kernels can be pinned DRAM-bound by zeroing the hit rates.
    mem_l1_hit_rate: float = 0.55
    mem_l2_hit_rate: float = 0.30
    num_alu_units: int = 4
    num_sfu_units: int = 1
    num_mem_units: int = 1

    def __post_init__(self) -> None:
        positive_fields = (
            "num_sms",
            "cores_per_sm",
            "max_warps_per_sm",
            "threads_per_warp",
            "register_file_bytes",
            "num_banks",
            "entries_per_bank",
            "num_schedulers",
            "issue_width_per_scheduler",
            "num_operand_collectors",
            "oc_read_ports",
            "rf_read_latency",
            "alu_latency",
            "num_alu_units",
            "num_sfu_units",
            "num_mem_units",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        if (self.mem_l1_hit_rate < 0 or self.mem_l2_hit_rate < 0
                or self.mem_l1_hit_rate + self.mem_l2_hit_rate > 1.0):
            raise ConfigError(
                "cache hit rates must be non-negative and sum to <= 1, got "
                f"l1={self.mem_l1_hit_rate} l2={self.mem_l2_hit_rate}"
            )
        if self.crossbar_width < 0:
            raise ConfigError(
                f"crossbar_width must be >= 0, got {self.crossbar_width}"
            )
        if self.max_threads_per_sm != self.max_warps_per_sm * self.threads_per_warp:
            raise ConfigError(
                "max_threads_per_sm must equal max_warps_per_sm * threads_per_warp "
                f"({self.max_warps_per_sm} * {self.threads_per_warp})"
            )
        bank_bytes = self.entries_per_bank * self.warp_register_bytes
        if bank_bytes * self.num_banks != self.register_file_bytes:
            raise ConfigError(
                "register file geometry inconsistent: "
                f"{self.num_banks} banks x {self.entries_per_bank} entries x "
                f"{self.warp_register_bytes} B != {self.register_file_bytes} B"
            )

    @property
    def warp_register_bytes(self) -> int:
        """Bytes of one warp-register (32 threads x 4 bytes)."""
        return self.threads_per_warp * 4

    @property
    def registers_per_warp(self) -> int:
        """Architectural warp-registers that fit in the RF per warp slot."""
        total_entries = self.num_banks * self.entries_per_bank
        return total_entries // self.max_warps_per_sm

    @property
    def bank_bytes(self) -> int:
        """Storage of one register bank."""
        return self.entries_per_bank * self.warp_register_bytes

    def bank_of(self, warp_id: int, reg_id: int) -> int:
        """Bank holding register ``reg_id`` of warp ``warp_id``.

        Registers of a warp are striped across banks; interleaving by the
        warp id spreads the same-numbered registers of different warps
        (the standard GPGPU-Sim mapping).
        """
        return (reg_id + warp_id) % self.num_banks

    def issue_width_total(self) -> int:
        """Maximum instructions issued per SM per cycle."""
        return self.num_schedulers * self.issue_width_per_scheduler


@dataclass(frozen=True)
class BOWConfig:
    """One BOW design point.

    Attributes:
        window_size: nominal instruction window ``IW`` (paper sweeps 2..7,
            default 3).
        writeback: writeback policy (see :class:`WritebackPolicy`).
        entries_per_instruction: BOC entries reserved per windowed
            instruction; 4 is the conservative sizing (3 sources + 1
            destination, SS IV-C).
        capacity_entries: total BOC operand entries per warp.  ``None``
            means the conservative ``window_size * entries_per_instruction``;
            the half-size design point of SS IV-C passes an explicit 6
            for IW=3.
        eviction: replacement policy when capacity is exceeded (the
            paper uses FIFO; LRU is the ablation alternative).
        enabled: ``False`` turns every bypass off, yielding the baseline
            GPU with conventional operand collectors.
    """

    window_size: int = 3
    writeback: WritebackPolicy = WritebackPolicy.WRITE_THROUGH
    entries_per_instruction: int = 4
    capacity_entries: int | None = None
    eviction: EvictionPolicy = EvictionPolicy.FIFO
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigError(f"window_size must be >= 1, got {self.window_size}")
        if self.entries_per_instruction < 1:
            raise ConfigError(
                "entries_per_instruction must be >= 1, "
                f"got {self.entries_per_instruction}"
            )
        if self.capacity_entries is not None and self.capacity_entries < 1:
            raise ConfigError(
                f"capacity_entries must be >= 1, got {self.capacity_entries}"
            )

    @property
    def effective_capacity(self) -> int:
        """BOC operand entries actually provisioned per warp."""
        if self.capacity_entries is not None:
            return self.capacity_entries
        return self.window_size * self.entries_per_instruction

    @property
    def conservative_capacity(self) -> int:
        """The worst-case sizing (4 registers per windowed instruction)."""
        return self.window_size * self.entries_per_instruction

    def half_size(self) -> "BOWConfig":
        """The reduced-storage design point of SS IV-C (half the entries)."""
        return replace(self, capacity_entries=max(1, self.conservative_capacity // 2))

    def boc_bytes(self, gpu: GPUConfig = GPUConfig()) -> int:
        """Storage of a single BOC in bytes."""
        return self.effective_capacity * gpu.warp_register_bytes

    def total_boc_bytes(self, gpu: GPUConfig = GPUConfig()) -> int:
        """Storage added across all BOCs of one SM."""
        return self.boc_bytes(gpu) * gpu.max_warps_per_sm

    def storage_overhead_fraction(self, gpu: GPUConfig = GPUConfig()) -> float:
        """Added BOC storage relative to the RF size (paper: 14% full, 4% half).

        The paper reports the *additional* storage relative to the
        conventional operand collectors (3 entries each).
        """
        baseline = BASELINE_OC_ENTRIES * gpu.warp_register_bytes * gpu.max_warps_per_sm
        added = self.total_boc_bytes(gpu) - baseline
        return max(0.0, added) / gpu.register_file_bytes


def baseline_config() -> BOWConfig:
    """The unmodified GPU: bypassing disabled."""
    return BOWConfig(enabled=False, writeback=WritebackPolicy.WRITE_THROUGH)


def bow_config(window_size: int = 3) -> BOWConfig:
    """Baseline BOW (read bypassing, write-through) at ``window_size``."""
    return BOWConfig(window_size=window_size, writeback=WritebackPolicy.WRITE_THROUGH)


def bow_wb_config(window_size: int = 3) -> BOWConfig:
    """BOW with write-back (no compiler hints)."""
    return BOWConfig(window_size=window_size, writeback=WritebackPolicy.WRITE_BACK)


def bow_wr_config(window_size: int = 3, half_size: bool = False) -> BOWConfig:
    """BOW-WR: compiler-guided writeback, optionally half-size buffers."""
    cfg = BOWConfig(window_size=window_size, writeback=WritebackPolicy.COMPILER)
    return cfg.half_size() if half_size else cfg
