"""Plain-text table rendering for the experiment drivers.

The paper's figures are bar charts over benchmarks; without a plotting
dependency we render the same series as aligned ASCII tables, which is
what the benchmark harness prints and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (0.553 -> '55.3%')."""
    return f"{value * 100:.{digits}f}%"


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned text table.

    Args:
        headers: column headers.
        rows: row cells; floats are rendered with three decimals, other
            values with ``str``.
        title: optional title line printed above the table.
    """
    rendered: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_barchart(
    series: Sequence[tuple],
    title: str = "",
    width: int = 40,
    max_value: float = 0.0,
    render_value=None,
) -> str:
    """Render labeled values as a horizontal text bar chart.

    The paper's figures are bar charts over benchmarks; this gives the
    text reports the same at-a-glance shape.

    Args:
        series: ``(label, value)`` pairs; values must be non-negative.
        title: optional heading.
        width: characters of the longest bar.
        max_value: bar-scale maximum; defaults to the series maximum.
        render_value: value formatter (default: percentage).
    """
    render_value = render_value or format_percent
    pairs = [(str(label), float(value)) for label, value in series]
    if any(value < 0 for _, value in pairs):
        raise ValueError("bar chart values must be non-negative")
    scale = max_value or max((value for _, value in pairs), default=0.0)
    label_width = max((len(label) for label, _ in pairs), default=0)

    lines: List[str] = [title] if title else []
    for label, value in pairs:
        length = round(value / scale * width) if scale else 0
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)} "
            f"{render_value(value)}"
        )
    return "\n".join(lines)
