"""Event counters collected during simulation and analysis.

:class:`Counters` is a thin, explicit record of every event class the
energy model and the metrics layer care about.  Using named integer
fields (rather than a free-form dict) makes the contract between the
timing model and the energy model checkable: a counter the energy model
bills must exist here.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Raw event counts from one simulation run.

    Register-file events:
        rf_reads: physical reads served by the register-file banks.
        rf_writes: physical writes into the register-file banks.
        bank_conflicts: accesses delayed by a busy bank port.

    Bypass events:
        bypassed_reads: source operands forwarded from a BOC (no RF read).
        bypassed_writes: result values whose RF write was eliminated.
        boc_reads: operand deliveries out of BOC storage.
        boc_writes: result values deposited into BOC storage.
        boc_evictions: values evicted from a BOC by capacity pressure.
        eviction_writebacks: dirty evictions forced to write the RF early.

    Pipeline events:
        cycles: simulated cycles.
        instructions: dynamic instructions completed (all warps).
        issued: instructions issued to collectors.
        issue_stalls_scoreboard: issue attempts blocked by RAW/WAW hazards.
        issue_stalls_collector: issue attempts blocked by a full collector.
        oc_wait_cycles: cycles instructions spent in the operand-collection
            stage (the paper's Figure 4/12 quantity).
        oc_wait_cycles_memory: the portion for memory instructions.
        lifetime_cycles: issue-to-completion cycles summed over all
            instructions (the denominator of the paper's Figure 4).
        lifetime_cycles_memory: the portion for memory instructions.
        mem_instructions: dynamic memory instructions completed.
        exec_busy_stalls: dispatches delayed by a busy functional unit.
        fast_forwarded_cycles: cycles the event-horizon loop skipped
            instead of ticking (a subset of ``cycles``; all of them
            were provably idle and their stalls are charged in bulk).
            Zero on the reference per-cycle path — and thus the one
            counter that legitimately differs between a fast-forward
            and a ``--no-fast-forward`` run of the same workload.
    """

    rf_reads: int = 0
    rf_writes: int = 0
    bank_conflicts: int = 0

    bypassed_reads: int = 0
    bypassed_writes: int = 0
    boc_reads: int = 0
    boc_writes: int = 0
    boc_evictions: int = 0
    eviction_writebacks: int = 0

    cycles: int = 0
    instructions: int = 0
    issued: int = 0
    issue_stalls_scoreboard: int = 0
    issue_stalls_collector: int = 0
    oc_wait_cycles: int = 0
    oc_wait_cycles_memory: int = 0
    lifetime_cycles: int = 0
    lifetime_cycles_memory: int = 0
    mem_instructions: int = 0
    exec_busy_stalls: int = 0
    fast_forwarded_cycles: int = 0

    def __add__(self, other: "Counters") -> "Counters":
        if not isinstance(other, Counters):
            return NotImplemented
        merged = Counters()
        for item in fields(Counters):
            setattr(merged, item.name,
                    getattr(self, item.name) + getattr(other, item.name))
        return merged

    @property
    def total_reads(self) -> int:
        """All source-operand deliveries (RF + forwarded)."""
        return self.rf_reads + self.bypassed_reads

    @property
    def total_writes(self) -> int:
        """All result values produced (written or bypassed)."""
        return self.rf_writes + self.bypassed_writes

    @property
    def read_bypass_rate(self) -> float:
        """Fraction of operand reads that never touched the RF."""
        total = self.total_reads
        return self.bypassed_reads / total if total else 0.0

    @property
    def write_bypass_rate(self) -> float:
        """Fraction of result writes that never touched the RF."""
        total = self.total_writes
        return self.bypassed_writes / total if total else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle across the simulated SM."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict:
        return {item.name: getattr(self, item.name) for item in fields(Counters)}
