"""Cycle-level event tracing.

Aggregate :class:`~repro.stats.counters.Counters` say *how many* stalls,
evictions, or bypasses a run had; they cannot say *when* or *why*.  A
:class:`TraceRecorder` captures typed, per-cycle events emitted by the
engine (:mod:`repro.gpu.sm`) and the collector providers
(:mod:`repro.core.boc`, :mod:`repro.core.rfc`) into a bounded ring
buffer, with running per-kind / per-reason / per-warp aggregation that
covers *every* emitted event even after the ring starts dropping old
ones.

The recorder is strictly optional: an engine constructed without one
performs no tracing work at all (each emit site is guarded by a single
``is not None`` check), so the untraced hot path is unchanged.

Event taxonomy (``EventKind``), with the counter each reconciles to:

========================  =====================================  =========
kind                      meaning                                counter
========================  =====================================  =========
``issue``                 instruction entered the collectors     ``issued``
``issue_stall``           issue blocked (reason: ``scoreboard``  ``issue_stalls_*``
                          or ``collector``)
``dispatch``              operands complete, sent to a unit      —
``dispatch_stall``        dispatch blocked (reason:              ``exec_busy_stalls``
                          ``exec_busy``)
``bank_conflict``         RF accesses serialized by a busy bank  ``bank_conflicts``
``boc_hit``               source operand forwarded (no RF read)  ``bypassed_reads``
``boc_insert``            value deposited into collector store   ``boc_writes``
``boc_evict``             value left the store (reason:          ``boc_evictions``
                          ``capacity`` or ``slide``)             (capacity only)
``eviction_writeback``    dirty evictee forced to write the RF   ``eviction_writebacks``
``write_eliminated``      RF write removed (reason:              ``bypassed_writes``
                          ``consolidated`` or ``transient``)
``writeback``             physical RF write performed (reason:   ``rf_writes``
                          ``granted`` or ``drain``)
``commit``                instruction retired                    ``instructions``
========================  =====================================  =========

Every kind maps to a pipeline stage (``STAGE_OF``) for the per-stage
rollup: ``issue``, ``collect``, ``dispatch``, or ``writeback``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError


class EventKind(str, enum.Enum):
    """The typed event vocabulary (values are the wire names)."""

    ISSUE = "issue"
    ISSUE_STALL = "issue_stall"
    DISPATCH = "dispatch"
    DISPATCH_STALL = "dispatch_stall"
    BANK_CONFLICT = "bank_conflict"
    BOC_HIT = "boc_hit"
    BOC_INSERT = "boc_insert"
    BOC_EVICT = "boc_evict"
    EVICTION_WRITEBACK = "eviction_writeback"
    WRITE_ELIMINATED = "write_eliminated"
    WRITEBACK = "writeback"
    COMMIT = "commit"


#: Pipeline stage of each event kind (the per-stage rollup axis).
STAGE_OF: Dict[EventKind, str] = {
    EventKind.ISSUE: "issue",
    EventKind.ISSUE_STALL: "issue",
    EventKind.DISPATCH: "dispatch",
    EventKind.DISPATCH_STALL: "dispatch",
    EventKind.BANK_CONFLICT: "collect",
    EventKind.BOC_HIT: "collect",
    EventKind.BOC_INSERT: "collect",
    EventKind.BOC_EVICT: "collect",
    EventKind.EVICTION_WRITEBACK: "writeback",
    EventKind.WRITE_ELIMINATED: "writeback",
    EventKind.WRITEBACK: "writeback",
    EventKind.COMMIT: "writeback",
}

#: Rollup order for reports.
STAGES: Tuple[str, ...] = ("issue", "collect", "dispatch", "writeback")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``warp`` is ``-1`` for events not owned by a warp (bank conflicts
    are attributed to the arbitration cycle, not a requester).  Optional
    fields are populated per kind: ``reason`` for stalls / evictions /
    writebacks, ``register`` for operand-store and RF traffic, ``bank``
    for bank conflicts, ``trace_index`` / ``opcode`` for instruction
    lifecycle events.  ``count`` lets one record stand for several
    identical simultaneous events (e.g. all conflicts of one
    arbitration round); aggregation honours it.
    """

    cycle: int
    kind: EventKind
    warp: int = -1
    reason: Optional[str] = None
    register: Optional[int] = None
    bank: Optional[int] = None
    trace_index: Optional[int] = None
    opcode: Optional[str] = None
    count: int = 1

    def as_dict(self) -> dict:
        """A JSON-ready dict with ``None`` fields omitted."""
        record = {"cycle": self.cycle, "kind": self.kind.value,
                  "warp": self.warp, "count": self.count}
        for name in ("reason", "register", "bank", "trace_index", "opcode"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record


class TraceRecorder:
    """A bounded ring buffer of :class:`TraceEvent` with live rollups.

    Args:
        capacity: maximum retained events; older events are dropped
            (``dropped`` counts them) while the aggregates keep covering
            everything ever emitted.
        kinds: optional subset of :class:`EventKind` to record; events
            of other kinds are ignored entirely (not emitted, not
            aggregated, not counted as dropped).

    The aggregates — ``counts``, per-reason, per-warp, per-stage — are
    maintained on emit, so they are exact over the whole run regardless
    of ring evictions; the ring itself retains the *last* ``capacity``
    events for inspection and export.
    """

    def __init__(self, capacity: int = 65536,
                 kinds: Optional[Iterable[EventKind]] = None):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.kinds = None if kinds is None else frozenset(EventKind(k) for k in kinds)
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self.emitted = 0  # events accepted (recorded or later dropped)
        #: total per kind, including count-weighted records.
        self.counts: Dict[EventKind, int] = {}
        #: total per (kind, reason); reason ``None`` for reasonless kinds.
        self.reason_counts: Dict[Tuple[EventKind, Optional[str]], int] = {}
        #: total per (kind, warp).
        self.warp_counts: Dict[Tuple[EventKind, int], int] = {}

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        cycle: int,
        kind: EventKind,
        warp: int = -1,
        reason: Optional[str] = None,
        register: Optional[int] = None,
        bank: Optional[int] = None,
        trace_index: Optional[int] = None,
        opcode: Optional[str] = None,
        count: int = 1,
    ) -> None:
        """Record one event (or ``count`` identical simultaneous ones)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + count
        key = (kind, reason)
        self.reason_counts[key] = self.reason_counts.get(key, 0) + count
        wkey = (kind, warp)
        self.warp_counts[wkey] = self.warp_counts.get(wkey, 0) + count
        self.events.append(TraceEvent(
            cycle=cycle, kind=kind, warp=warp, reason=reason,
            register=register, bank=bank, trace_index=trace_index,
            opcode=opcode, count=count,
        ))

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (aggregates still include them)."""
        return self.emitted - len(self.events)

    # -- aggregation -------------------------------------------------------

    def count(self, kind: EventKind, reason: Optional[str] = ...,
              ) -> int:
        """Total occurrences of ``kind`` (optionally of one ``reason``)."""
        kind = EventKind(kind)
        if reason is ...:
            return self.counts.get(kind, 0)
        return self.reason_counts.get((kind, reason), 0)

    def stage_counts(self) -> Dict[str, int]:
        """Event totals rolled up by pipeline stage."""
        rollup = {stage: 0 for stage in STAGES}
        for kind, total in self.counts.items():
            rollup[STAGE_OF[kind]] += total
        return rollup

    def warp_summary(self) -> Dict[int, Dict[str, int]]:
        """Per-warp event totals: ``{warp: {kind_value: count}}``."""
        summary: Dict[int, Dict[str, int]] = {}
        for (kind, warp), total in self.warp_counts.items():
            summary.setdefault(warp, {})[kind.value] = total
        return summary

    def commits(self, warp: Optional[int] = None) -> List[TraceEvent]:
        """Retained ``commit`` events, optionally for one warp.

        Only meaningful while the ring has not dropped events (check
        ``dropped``); the differential-oracle harness sizes the ring to
        the whole run before relying on this.
        """
        return [event for event in self.events
                if event.kind is EventKind.COMMIT
                and (warp is None or event.warp == warp)]

    def format(self) -> str:
        """A human-readable rollup (the ``repro trace`` summary)."""
        lines = [f"{self.emitted} events recorded "
                 f"({self.dropped} dropped from the ring, "
                 f"capacity {self.capacity})"]
        for stage in STAGES:
            kinds = [k for k in EventKind if STAGE_OF[k] is not None
                     and STAGE_OF[k] == stage and k in self.counts]
            if not kinds:
                continue
            lines.append(f"  {stage}:")
            for kind in kinds:
                reasons = {
                    reason: total
                    for (k, reason), total in sorted(
                        self.reason_counts.items(),
                        key=lambda item: (item[0][1] or ""),
                    )
                    if k is kind and reason is not None
                }
                detail = ""
                if reasons:
                    detail = " (" + ", ".join(
                        f"{reason}: {total}" for reason, total in reasons.items()
                    ) + ")"
                lines.append(f"    {kind.value:20s} {self.counts[kind]:10d}"
                             f"{detail}")
        return "\n".join(lines)
