"""Statistics: event counters, derived metrics, and table rendering."""

from .cache import CacheStats
from .counters import Counters
from .metrics import RunMetrics, bypass_rates, ipc_improvement
from .report import format_barchart, format_percent, format_table
from .timeline import Timeline, TimelineSample
from .trace import STAGE_OF, STAGES, EventKind, TraceEvent, TraceRecorder

__all__ = [
    "CacheStats",
    "Counters",
    "EventKind",
    "RunMetrics",
    "STAGE_OF",
    "STAGES",
    "TraceEvent",
    "TraceRecorder",
    "bypass_rates",
    "ipc_improvement",
    "format_table",
    "format_percent",
    "format_barchart",
    "Timeline",
    "TimelineSample",
]
