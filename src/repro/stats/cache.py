"""Counters for the persistent run cache.

:class:`CacheStats` is the cache-side analogue of
:class:`~repro.stats.counters.Counters`: a plain record of every event
class the sweep harness reports — hits, misses, stores, traffic in
bytes, and unreadable entries.  The on-disk cache
(:class:`repro.experiments.cache.RunCache`) owns one instance per cache,
and :func:`repro.experiments.runner.cache_stats` aggregates the
process-wide view the acceptance checks read (a warm sweep must show
zero misses and zero simulator invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass
class CacheStats:
    """Raw event counts from one run cache.

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that found no usable entry.
        stores: results written into the cache.
        bytes_read: payload bytes deserialized on hits.
        bytes_written: payload bytes serialized on stores.
        errors: entries that existed but could not be read or decoded
            (these also count as misses; decode failures drop the
            entry so it is re-stored).
        io_errors: OS-level failures (ENOSPC, EACCES, ...) swallowed
            by the cache instead of propagating into the sweep.
        disables: times the cache self-disabled after crossing its
            I/O-error threshold (0 or 1 per cache per process).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    errors: int = 0
    io_errors: int = 0
    disables: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        merged = CacheStats()
        for item in fields(CacheStats):
            setattr(merged, item.name,
                    getattr(self, item.name) + getattr(other, item.name))
        return merged

    @property
    def lookups(self) -> int:
        """All lookups, hit or miss."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counts."""
        return replace(self)

    def reset(self) -> None:
        """Zero every counter in place."""
        for item in fields(CacheStats):
            setattr(self, item.name, 0)

    def as_dict(self) -> dict:
        return {item.name: getattr(self, item.name)
                for item in fields(CacheStats)}

    def format(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.hits} hit{'s' if self.hits != 1 else ''} / "
            f"{self.misses} miss{'es' if self.misses != 1 else ''} "
            f"({self.hit_rate:.0%}), {self.stores} stored, "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
            + (f", {self.errors} unreadable" if self.errors else "")
            + (f", {self.io_errors} I/O errors" if self.io_errors else "")
            + (", cache disabled" if self.disables else "")
        )
