"""Time-series sampling of a simulation run.

Aggregate counters hide phase behaviour — warm-up, steady state, the
drain tail.  A :class:`Timeline` records a snapshot every ``interval``
cycles so IPC and bypass activity can be plotted (or tabulated) over
time.  Attach one to the engine via ``SMEngine(..., timeline=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import SimulationError


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of cumulative counters.

    Attributes:
        cycle: sample time.
        instructions: cumulative completed instructions.
        rf_accesses: cumulative physical RF reads + writes.
        bypassed: cumulative forwarded operands + eliminated writes.
    """

    cycle: int
    instructions: int
    rf_accesses: int
    bypassed: int


@dataclass
class Timeline:
    """Collects samples every ``interval`` cycles during a run."""

    interval: int = 100
    samples: List[TimelineSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise SimulationError(
                f"interval must be >= 1, got {self.interval}"
            )

    def maybe_sample(self, cycle: int, counters, rf_reads: int,
                     rf_writes: int) -> None:
        """Record a snapshot when ``cycle`` hits the sampling grid."""
        if cycle % self.interval != 0:
            return
        self.samples.append(TimelineSample(
            cycle=cycle,
            instructions=counters.instructions,
            rf_accesses=rf_reads + rf_writes,
            bypassed=counters.bypassed_reads + counters.bypassed_writes,
        ))

    def advance(self, from_cycle: int, to_cycle: int, counters,
                rf_reads: int, rf_writes: int) -> None:
        """Emit the samples owed for a jumped span ``(from_cycle, to_cycle]``.

        The engine's fast-forward loop moves the clock over spans in
        which no counter can change, so every sampling-grid point
        inside the span carries the same (current) cumulative payload —
        but the grid itself must not develop holes: downstream series
        difference consecutive samples by cycle.  This replays the
        ``maybe_sample`` calls the skipped cycles would have made.
        """
        first = from_cycle - from_cycle % self.interval + self.interval
        for cycle in range(first, to_cycle + 1, self.interval):
            self.samples.append(TimelineSample(
                cycle=cycle,
                instructions=counters.instructions,
                rf_accesses=rf_reads + rf_writes,
                bypassed=counters.bypassed_reads + counters.bypassed_writes,
            ))

    def finalize(self, cycle: int, counters, rf_reads: int,
                 rf_writes: int) -> None:
        """Record the end-of-run sample if the grid missed it.

        A run whose length is not a multiple of ``interval`` would
        otherwise silently drop its drain tail — the final
        ``cycles % interval`` cycles (plus any residual write-queue
        flush) would appear in no sample.  The engine calls this once
        after the drain; it is a no-op when the last grid-aligned
        sample already covers ``cycle``.
        """
        if self.samples and self.samples[-1].cycle >= cycle:
            return
        self.samples.append(TimelineSample(
            cycle=cycle,
            instructions=counters.instructions,
            rf_accesses=rf_reads + rf_writes,
            bypassed=counters.bypassed_reads + counters.bypassed_writes,
        ))

    # -- derived series -----------------------------------------------------

    def ipc_series(self) -> List[float]:
        """Per-interval IPC (not cumulative)."""
        series = []
        previous = TimelineSample(0, 0, 0, 0)
        for sample in self.samples:
            cycles = sample.cycle - previous.cycle
            if cycles > 0:
                series.append(
                    (sample.instructions - previous.instructions) / cycles
                )
            previous = sample
        return series

    def bypass_series(self) -> List[float]:
        """Per-interval fraction of operand traffic served by bypassing."""
        series = []
        previous = TimelineSample(0, 0, 0, 0)
        for sample in self.samples:
            accesses = sample.rf_accesses - previous.rf_accesses
            bypassed = sample.bypassed - previous.bypassed
            total = accesses + bypassed
            series.append(bypassed / total if total else 0.0)
            previous = sample
        return series

    def format(self, width: int = 50) -> str:
        """A text sparkline of per-interval IPC."""
        series = self.ipc_series()
        if not series:
            return "(no samples)"
        peak = max(series) or 1.0
        glyphs = " .:-=+*#%@"
        line = "".join(
            glyphs[min(len(glyphs) - 1,
                       int(value / peak * (len(glyphs) - 1)))]
            for value in series[:width]
        )
        return f"IPC/interval (peak {peak:.2f}): [{line}]"
