"""Derived metrics over raw counters."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .counters import Counters


@dataclass(frozen=True)
class RunMetrics:
    """Headline metrics of one simulation run.

    Built from :class:`~repro.stats.counters.Counters` by
    :meth:`RunMetrics.from_counters`; a baseline run can be attached to
    compute the paper's normalized quantities (IPC improvement,
    normalized OC residency).
    """

    ipc: float
    read_bypass_rate: float
    write_bypass_rate: float
    rf_reads: int
    rf_writes: int
    oc_wait_cycles: int
    cycles: int
    instructions: int

    @classmethod
    def from_counters(cls, counters: Counters) -> "RunMetrics":
        return cls(
            ipc=counters.ipc,
            read_bypass_rate=counters.read_bypass_rate,
            write_bypass_rate=counters.write_bypass_rate,
            rf_reads=counters.rf_reads,
            rf_writes=counters.rf_writes,
            oc_wait_cycles=counters.oc_wait_cycles,
            cycles=counters.cycles,
            instructions=counters.instructions,
        )

    def ipc_improvement_over(self, baseline: "RunMetrics") -> float:
        """Relative IPC gain over a baseline run (paper Figures 10/11)."""
        if baseline.ipc <= 0:
            raise SimulationError("baseline IPC is zero; cannot normalize")
        return self.ipc / baseline.ipc - 1.0

    def oc_residency_vs(self, baseline: "RunMetrics") -> float:
        """OC-stage cycles normalized to a baseline run (paper Figure 12).

        Residency is normalized per completed instruction so runs of
        slightly different lengths compare fairly.  A baseline with no
        OC waits at all (tiny traces can retire every instruction the
        cycle it dispatches) is a valid comparison point, not an error:
        the denominator is guarded the same way ``instructions`` is, so
        a zero-residency run measured against it yields 0.0.
        """
        own = self.oc_wait_cycles / max(1, self.instructions)
        base = baseline.oc_wait_cycles / max(1, baseline.instructions)
        return own / max(base, 1e-12)


def bypass_rates(counters: Counters) -> tuple:
    """(read, write) bypass rates of a run."""
    return counters.read_bypass_rate, counters.write_bypass_rate


def ipc_improvement(run: Counters, baseline: Counters) -> float:
    """Relative IPC gain of ``run`` over ``baseline``."""
    return RunMetrics.from_counters(run).ipc_improvement_over(
        RunMetrics.from_counters(baseline)
    )
