"""Exporters for recorded trace events.

Three formats, all covered by the schemas in
:mod:`repro.observe.schema`:

* **Chrome trace-event JSON** — the ``chrome://tracing`` / Perfetto
  "JSON Array Format".  Each simulator event becomes an *instant* event
  (``"ph": "i"``) at ``ts = cycle`` (microsecond units stand in for
  cycles); warps map to thread lanes so per-warp activity lines up
  visually, and metadata records name the process and threads.
* **CSV** — one row per retained event, fixed column order, empty cells
  for absent fields.
* **JSONL** — one JSON object per retained event, ``None`` fields
  omitted (the format the accounting tests reconcile against).

Only the events still in the ring are exported; the recorder's
aggregates cover the dropped remainder and are included in the Chrome
export's metadata for context.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from ..stats.trace import STAGE_OF, TraceRecorder

#: CSV column order (also the JSONL field vocabulary).
CSV_COLUMNS = ("cycle", "kind", "warp", "reason", "register", "bank",
               "trace_index", "opcode", "count")


def chrome_trace(recorder: TraceRecorder, process_name: str = "SM0") -> dict:
    """The recorder's retained events as a Chrome trace-event document."""
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    warps = sorted({event.warp for event in recorder.events})
    for warp in warps:
        label = f"warp {warp}" if warp >= 0 else "sm-wide"
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": warp + 1, "args": {"name": label}})
    for event in recorder.events:
        args: Dict[str, object] = {"stage": STAGE_OF[event.kind],
                                   "count": event.count}
        for name in ("reason", "register", "bank", "trace_index", "opcode"):
            value = getattr(event, name)
            if value is not None:
                args[name] = value
        events.append({
            "name": event.kind.value,
            "cat": STAGE_OF[event.kind],
            "ph": "i",
            "ts": event.cycle,
            "pid": 0,
            "tid": event.warp + 1,  # tid must be >= 0; -1 is the SM lane
            "s": "t",
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": recorder.emitted,
            "dropped": recorder.dropped,
            "capacity": recorder.capacity,
            "counts": {kind.value: total
                       for kind, total in sorted(recorder.counts.items(),
                                                 key=lambda kv: kv[0].value)},
        },
    }


def write_chrome_trace(recorder: TraceRecorder, path: str,
                       process_name: str = "SM0") -> None:
    """Write the Chrome trace-event JSON document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(recorder, process_name=process_name), handle)
        handle.write("\n")


def write_events_csv(recorder: TraceRecorder, path: str) -> None:
    """Write the retained events as CSV (header + one row per event)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for event in recorder.events:
            record = event.as_dict()
            writer.writerow([record.get(column, "") for column in CSV_COLUMNS])


def write_events_jsonl(recorder: TraceRecorder, path: str) -> None:
    """Write the retained events as JSONL (one object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in recorder.events:
            handle.write(json.dumps(event.as_dict(), sort_keys=True))
            handle.write("\n")
