"""Observability: trace export, schemas, and sweep telemetry.

The recording machinery lives next to the other statistics
(:mod:`repro.stats.trace`); this package holds everything that turns
recorded events into artifacts downstream tooling can consume:

* :mod:`repro.observe.export` — Chrome trace-event JSON (load it in
  ``chrome://tracing`` / Perfetto), CSV, and JSONL event dumps;
* :mod:`repro.observe.telemetry` — the JSONL sweep-telemetry stream
  ``run_grid(..., telemetry=...)`` produces (per-point wall time,
  attempts, cache provenance, failure records, and a final summary);
* :mod:`repro.observe.schema` — the checked-in JSON schemas those
  exporters promise to honour, plus validators the schema tests (and
  any downstream consumer) can call.
"""

from ..stats.trace import (
    STAGE_OF,
    STAGES,
    EventKind,
    TraceEvent,
    TraceRecorder,
)
from .export import (
    chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)
from .schema import (
    CHROME_TRACE_SCHEMA,
    EVENT_SCHEMA,
    FIGURE_SPEC_SCHEMA,
    TELEMETRY_SCHEMA,
    TRACE_CASE_SCHEMA,
    validate_chrome_trace,
    validate_event,
    validate_figure_spec,
    validate_telemetry_record,
    validate_trace_case_record,
)
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    StampedTelemetry,
    TelemetryTee,
    TelemetryWriter,
)

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "EVENT_SCHEMA",
    "EventKind",
    "FIGURE_SPEC_SCHEMA",
    "STAGE_OF",
    "STAGES",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_CASE_SCHEMA",
    "StampedTelemetry",
    "TelemetryTee",
    "TelemetryWriter",
    "TraceEvent",
    "TraceRecorder",
    "chrome_trace",
    "validate_chrome_trace",
    "validate_event",
    "validate_figure_spec",
    "validate_telemetry_record",
    "validate_trace_case_record",
    "write_chrome_trace",
    "write_events_csv",
    "write_events_jsonl",
]
