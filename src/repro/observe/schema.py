"""Checked-in JSON schemas for every exported observability artifact.

Downstream tooling (trace viewers, telemetry dashboards, the CI
artifact consumers) parses what the exporters in
:mod:`repro.observe.export` and :mod:`repro.observe.telemetry` emit;
these schemas are the contract.  The schema tests validate real
exporter output against them, so a format change that would break a
consumer fails the suite instead of shipping silently.

The documents are standard JSON Schema (draft 2020-12).  Validation
uses the ``jsonschema`` package when it is importable and otherwise
falls back to a built-in interpreter of the keyword subset these
schemas use (``type``, ``properties``, ``required``, ``enum``,
``const``, ``items``, ``minimum``, ``additionalProperties``,
``oneOf``) — so the validators work, and agree, in both environments.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import SchemaError
from ..stats.trace import STAGES, EventKind

#: Wire names of every event kind (the ``kind`` enum in the schemas).
EVENT_KINDS: List[str] = [kind.value for kind in EventKind]

#: One line of an events JSONL dump (``write_events_jsonl``), and the
#: ``args``-free core of every CSV row.
EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "repro/observe/event.schema.json",
    "title": "repro trace event",
    "type": "object",
    "properties": {
        "cycle": {"type": "integer", "minimum": 0},
        "kind": {"enum": EVENT_KINDS},
        "warp": {"type": "integer", "minimum": -1},
        "count": {"type": "integer", "minimum": 1},
        "reason": {"type": "string"},
        "register": {"type": "integer", "minimum": 0},
        "bank": {"type": "integer", "minimum": 0},
        "trace_index": {"type": "integer", "minimum": 0},
        "opcode": {"type": "string"},
    },
    "required": ["cycle", "kind", "warp", "count"],
    "additionalProperties": False,
}

#: A Chrome trace-event document (``chrome_trace`` /
#: ``write_chrome_trace``): the "JSON Array Format" subset we emit —
#: metadata records plus instant events.
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "repro/observe/chrome-trace.schema.json",
    "title": "repro Chrome trace export",
    "type": "object",
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "oneOf": [
                    {  # metadata record (process/thread naming)
                        "type": "object",
                        "properties": {
                            "name": {"enum": ["process_name", "thread_name"]},
                            "ph": {"const": "M"},
                            "pid": {"type": "integer", "minimum": 0},
                            "tid": {"type": "integer", "minimum": 0},
                            "args": {"type": "object"},
                        },
                        "required": ["name", "ph", "pid", "args"],
                        "additionalProperties": False,
                    },
                    {  # instant event (one simulator trace event)
                        "type": "object",
                        "properties": {
                            "name": {"enum": EVENT_KINDS},
                            "cat": {"enum": list(STAGES)},
                            "ph": {"const": "i"},
                            "ts": {"type": "integer", "minimum": 0},
                            "pid": {"type": "integer", "minimum": 0},
                            "tid": {"type": "integer", "minimum": 0},
                            "s": {"enum": ["t", "p", "g"]},
                            "args": {"type": "object"},
                        },
                        "required": ["name", "cat", "ph", "ts", "pid", "tid",
                                     "s"],
                        "additionalProperties": False,
                    },
                ],
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {
            "type": "object",
            "properties": {
                "emitted": {"type": "integer", "minimum": 0},
                "dropped": {"type": "integer", "minimum": 0},
                "capacity": {"type": "integer", "minimum": 1},
                "counts": {"type": "object"},
            },
            "required": ["emitted", "dropped", "capacity", "counts"],
            "additionalProperties": False,
        },
    },
    "required": ["traceEvents"],
    "additionalProperties": False,
}

_SCALE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "num_warps": {"type": "integer", "minimum": 1},
        "trace_scale": {"type": "number"},
        "memory_seed": {"type": "integer"},
        "num_sms": {"type": "integer", "minimum": 1},
    },
    "required": ["num_warps", "trace_scale", "memory_seed", "num_sms"],
    "additionalProperties": False,
}

#: One line of a sweep-telemetry JSONL stream (``TelemetryWriter``):
#: a ``start`` header, one ``point`` or ``failure`` per grid point,
#: and a closing ``summary``.
TELEMETRY_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "repro/observe/telemetry.schema.json",
    "title": "repro sweep telemetry record",
    "oneOf": [
        {
            "type": "object",
            "properties": {
                "type": {"const": "start"},
                "schema": {"type": "integer", "minimum": 1},
                "points": {"type": "integer", "minimum": 1},
                "jobs": {"type": "integer", "minimum": 1},
                "benchmarks": {"type": "array", "items": {"type": "string"}},
                "designs": {"type": "array", "items": {"type": "string"}},
                "windows": {"type": "array", "items": {"type": "integer"}},
                "scale": _SCALE_SCHEMA,
            },
            "required": ["type", "schema", "points", "jobs", "scale"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "point"},
                "benchmark": {"type": "string"},
                "design": {"type": "string"},
                "window": {"type": "integer", "minimum": 0},
                "source": {"enum": ["memo", "cache", "sim"]},
                "seconds": {"type": "number"},
                "attempts": {"type": "integer", "minimum": 0},
                "cycles": {"type": "integer", "minimum": 0},
                "instructions": {"type": "integer", "minimum": 0},
                "ipc": {"type": "number"},
                # Schema v2: how many of the point's cycles the engine
                # jumped rather than ticked.  Optional — memo/cache
                # sourced points (and v1 streams) omit it.
                "fast_forwarded_cycles": {"type": "integer", "minimum": 0},
            },
            "required": ["type", "benchmark", "design", "window", "source",
                         "seconds", "attempts"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "failure"},
                "benchmark": {"type": "string"},
                "design": {"type": "string"},
                "window": {"type": "integer", "minimum": 0},
                "label": {"type": "string"},
                "kind": {"enum": ["transient", "permanent"]},
                "attempts": {"type": "integer", "minimum": 1},
                "seconds": {"type": "number"},
                "error_type": {"type": "string"},
                "message": {"type": "string"},
            },
            "required": ["type", "benchmark", "design", "window", "label",
                         "kind", "attempts", "seconds", "error_type",
                         "message"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "summary"},
                "wall_seconds": {"type": "number"},
                "points": {"type": "integer", "minimum": 0},
                "ok": {"type": "boolean"},
                "simulated": {"type": "integer", "minimum": 0},
                "from_cache": {"type": "integer", "minimum": 0},
                "from_memo": {"type": "integer", "minimum": 0},
                "failed": {"type": "integer", "minimum": 0},
                "cache": {"type": "object"},
            },
            "required": ["type", "wall_seconds", "points", "ok", "simulated",
                         "from_cache", "from_memo", "failed", "cache"],
            "additionalProperties": False,
        },
    ],
}


#: One line of an external trace-case JSONL file
#: (:mod:`repro.kernels.external`): a ``header`` with the launch
#: parameters, one ``warp`` record per warp, and one ``inst`` record
#: per dynamic instruction.  This is the interchange contract for both
#: the fuzz corpus (``tests/corpus/``) and third-party trace ingestion
#: (``repro trace-import``).
TRACE_CASE_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "repro/observe/trace-case.schema.json",
    "title": "repro external trace-case record",
    "oneOf": [
        {
            "type": "object",
            "properties": {
                "type": {"const": "header"},
                "schema": {"type": "integer", "minimum": 1},
                "name": {"type": "string"},
                "window": {"type": "integer", "minimum": 0},
                "memory_seed": {"type": "integer"},
                "num_sms": {"type": "integer", "minimum": 1},
                "num_warps": {"type": "integer", "minimum": 0},
                "designs": {"type": "array", "items": {"type": "string"}},
                "meta": {"type": "object"},
            },
            "required": ["type", "schema", "name", "window",
                         "memory_seed", "num_sms", "num_warps"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "warp"},
                "warp_id": {"type": "integer", "minimum": 0},
                "instructions": {"type": "integer", "minimum": 0},
            },
            "required": ["type", "warp_id", "instructions"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "inst"},
                "warp": {"type": "integer", "minimum": 0},
                "op": {"type": "string"},
                "dest": {"type": "integer", "minimum": 0},
                "src": {"type": "array", "items": {"type": "integer"}},
                "imm": {"type": "integer"},
                # [predicate id, negated] — mixed element types, so the
                # pair's shape is checked by the instruction decoder.
                "guard": {"type": "array"},
                "pdest": {"type": "integer", "minimum": 0},
                "hint": {"enum": ["BOTH", "OC_ONLY", "RF_ONLY"]},
            },
            "required": ["type", "warp", "op"],
            "additionalProperties": False,
        },
    ],
}


#: One encoding channel of a figure spec (``x`` / ``y`` / ``color`` /
#: ``facet`` / one tooltip entry).  ``sort`` and ``value`` are
#: unconstrained on purpose: Vega-Lite accepts strings, arrays, nulls,
#: and objects there, and the figure generators use several of them.
_FIGURE_CHANNEL_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "field": {"type": "string"},
        "type": {"enum": ["quantitative", "nominal", "ordinal", "temporal"]},
        "title": {"type": ["string", "null"]},
        "axis": {"type": ["object", "null"]},
        "legend": {"type": ["object", "null"]},
        "scale": {"type": ["object", "null"]},
        "sort": {},
        "stack": {},
        "value": {},
        "aggregate": {"type": "string"},
        "format": {"type": "string"},
        "header": {"type": "object"},
        "columns": {"type": "integer", "minimum": 1},
    },
    "additionalProperties": False,
}

#: The encoding block: a map of known channel names to channel defs
#: (``tooltip`` may be a list of channel defs).
_FIGURE_ENCODING_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "x": _FIGURE_CHANNEL_SCHEMA,
        "y": _FIGURE_CHANNEL_SCHEMA,
        "x2": _FIGURE_CHANNEL_SCHEMA,
        "y2": _FIGURE_CHANNEL_SCHEMA,
        "color": _FIGURE_CHANNEL_SCHEMA,
        "opacity": _FIGURE_CHANNEL_SCHEMA,
        "size": _FIGURE_CHANNEL_SCHEMA,
        "shape": _FIGURE_CHANNEL_SCHEMA,
        "strokeDash": _FIGURE_CHANNEL_SCHEMA,
        "detail": _FIGURE_CHANNEL_SCHEMA,
        "order": _FIGURE_CHANNEL_SCHEMA,
        "text": _FIGURE_CHANNEL_SCHEMA,
        "row": _FIGURE_CHANNEL_SCHEMA,
        "column": _FIGURE_CHANNEL_SCHEMA,
        "facet": _FIGURE_CHANNEL_SCHEMA,
        "tooltip": {
            "type": ["object", "array"],
            "items": _FIGURE_CHANNEL_SCHEMA,
        },
    },
    "additionalProperties": False,
}

#: A mark: either a shorthand string or a mark-definition object.
_FIGURE_MARK_SCHEMA: Dict[str, Any] = {
    "oneOf": [
        {
            "enum": ["area", "bar", "circle", "line", "point", "rect",
                     "rule", "text", "tick"],
        },
        {
            "type": "object",
            "properties": {
                "type": {"enum": ["area", "bar", "circle", "line", "point",
                                  "rect", "rule", "text", "tick"]},
                "point": {},
                "filled": {"type": "boolean"},
                "size": {"type": "number"},
                "opacity": {"type": "number", "minimum": 0},
                "interpolate": {"type": "string"},
                "tooltip": {},
                "strokeWidth": {"type": "number"},
            },
            "required": ["type"],
            "additionalProperties": False,
        },
    ],
}

#: One layer of a layered figure (a unit view).
_FIGURE_LAYER_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "mark": _FIGURE_MARK_SCHEMA,
        "encoding": _FIGURE_ENCODING_SCHEMA,
        "transform": {"type": "array", "items": {"type": "object"}},
        "name": {"type": "string"},
    },
    "required": ["mark"],
    "additionalProperties": False,
}

#: A rendered figure spec (``<name>.vl.json``): the Vega-Lite v5 subset
#: ``repro figures`` emits.  This is a *contract*, not a full Vega-Lite
#: grammar — a figure generator that reaches for a construct outside it
#: extends the schema (and the schema tests) first, so every spec a CI
#: artifact consumer sees is known-renderable.  A spec is either a
#: single view (``mark`` + ``encoding``) or a layered view (``layer``,
#: with an optional shared ``encoding``).
FIGURE_SPEC_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "repro/observe/figure-spec.schema.json",
    "title": "repro analysis figure spec (Vega-Lite v5 subset)",
    "type": "object",
    "properties": {
        "$schema": {
            "const": "https://vega.github.io/schema/vega-lite/v5.json",
        },
        "description": {"type": "string"},
        "title": {"type": ["string", "object"]},
        "data": {
            "type": "object",
            "properties": {
                "url": {"type": "string"},
                "values": {"type": "array", "items": {"type": "object"}},
                "name": {"type": "string"},
                "format": {"type": "object"},
            },
            "additionalProperties": False,
        },
        "mark": _FIGURE_MARK_SCHEMA,
        "encoding": _FIGURE_ENCODING_SCHEMA,
        "layer": {"type": "array", "items": _FIGURE_LAYER_SCHEMA},
        "resolve": {"type": "object"},
        "transform": {"type": "array", "items": {"type": "object"}},
        "config": {"type": "object"},
        "width": {"type": ["integer", "string"]},
        "height": {"type": ["integer", "string"]},
        "columns": {"type": "integer", "minimum": 1},
        "usermeta": {"type": "object"},
    },
    "required": ["$schema", "description", "data"],
    "additionalProperties": False,
    "oneOf": [
        {"required": ["mark", "encoding"]},
        {"required": ["layer"]},
    ],
}


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int)
    and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def _check(instance: Any, schema: Dict[str, Any], path: str) -> None:
    """Interpret the keyword subset our schemas use; raise SchemaError."""
    if "oneOf" in schema:
        errors = []
        matches = 0
        for index, option in enumerate(schema["oneOf"]):
            try:
                _check(instance, option, path)
                matches += 1
            except SchemaError as error:
                errors.append(f"[{index}] {error}")
        if matches != 1:
            raise SchemaError(
                f"matched {matches} of {len(schema['oneOf'])} oneOf "
                f"alternatives: {'; '.join(errors)}", path)
        # No early return: JSON Schema applies sibling keywords (type,
        # properties, required, ...) in addition to oneOf, and the
        # figure-spec schema relies on that.
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(f"expected {schema['const']!r}, got {instance!r}",
                          path)
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{instance!r} not in enum {schema['enum']!r}", path)
    if "type" in schema:
        expected = schema["type"]
        names = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](instance) for name in names):
            raise SchemaError(
                f"expected type {expected}, got {type(instance).__name__}",
                path)
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaError(
                f"{instance} below minimum {schema['minimum']}", path)
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"missing required property {name!r}", path)
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                _check(value, properties[name], f"{path}/{name}")
            elif schema.get("additionalProperties", True) is False:
                raise SchemaError(f"unexpected property {name!r}", path)
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            _check(item, schema["items"], f"{path}[{index}]")


def _validate(instance: Any, schema: Dict[str, Any], label: str) -> None:
    try:
        import jsonschema
    except ImportError:
        _check(instance, schema, label)
        return
    try:
        jsonschema.validate(instance, schema)
    except jsonschema.ValidationError as error:
        path = "/".join(str(part) for part in error.absolute_path)
        raise SchemaError(f"{label}: {error.message}",
                          path or label) from error


def validate_event(record: Any) -> None:
    """Validate one events-JSONL record against :data:`EVENT_SCHEMA`."""
    _validate(record, EVENT_SCHEMA, "event")


def validate_chrome_trace(document: Any) -> None:
    """Validate a Chrome trace document against
    :data:`CHROME_TRACE_SCHEMA`."""
    _validate(document, CHROME_TRACE_SCHEMA, "chrome-trace")


def validate_telemetry_record(record: Any) -> None:
    """Validate one telemetry-JSONL record against
    :data:`TELEMETRY_SCHEMA`."""
    _validate(record, TELEMETRY_SCHEMA, "telemetry")


def validate_trace_case_record(record: Any) -> None:
    """Validate one trace-case JSONL record against
    :data:`TRACE_CASE_SCHEMA`."""
    _validate(record, TRACE_CASE_SCHEMA, "trace-case")


def validate_figure_spec(document: Any) -> None:
    """Validate one rendered figure spec against
    :data:`FIGURE_SPEC_SCHEMA`."""
    _validate(document, FIGURE_SPEC_SCHEMA, "figure-spec")
