"""Sweep telemetry: a JSONL stream of everything a ``run_grid`` did.

``run_grid(..., telemetry=TelemetryWriter(path))`` streams one record
per resolved grid point *as it lands* (so a watcher — or a post-mortem
after a crashed sweep — sees partial progress), plus a ``start`` header
and a closing ``summary``:

* ``start``   — grid shape, worker count, scale, schema version;
* ``point``   — provenance (``memo`` / ``cache`` / ``sim``), wall time,
  execution attempts, and headline result stats;
* ``failure`` — one per point that exhausted its retry policy (the
  same fields :class:`~repro.experiments.resilience.PointFailure`
  records);
* ``summary`` — totals plus a cache-counter snapshot (hits, misses,
  stores, I/O errors).

Every record validates against
:data:`repro.observe.schema.TELEMETRY_SCHEMA`; bump
:data:`TELEMETRY_SCHEMA_VERSION` on any breaking format change.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

#: Format version stamped into the ``start`` record.
#:
#: v2: ``point`` records gained the optional ``fast_forwarded_cycles``
#: field (cycles the event-horizon engine jumped rather than ticked).
#: Purely additive — v1 consumers that ignore unknown fields keep
#: working, and v1 streams validate against the v2 schema.
TELEMETRY_SCHEMA_VERSION = 2


class TelemetryTee:
    """Fans :meth:`emit` out to several telemetry sinks.

    The sweep service uses this to stream one job's records both to
    the job's own per-job file and to the service-wide stream.  Sinks
    are anything with an ``emit(dict)`` method; ``None`` entries are
    skipped so callers can pass optional sinks directly.  The tee does
    not own its sinks — closing them is the caller's job.
    """

    def __init__(self, *sinks) -> None:
        self._sinks = [sink for sink in sinks if sink is not None]

    def emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.emit(record)


class StampedTelemetry:
    """A telemetry sink that merges fixed fields into every record.

    ``StampedTelemetry(writer, job=3).emit({"type": "job-point"})``
    writes ``{"job": 3, "type": "job-point"}`` — how the service-wide
    stream tags which job each record belongs to.  Record fields win
    over stamped fields on collision.
    """

    def __init__(self, sink, **fields) -> None:
        self._sink = sink
        self._fields = dict(fields)

    def emit(self, record: dict) -> None:
        self._sink.emit({**self._fields, **record})


class TelemetryWriter:
    """Appends JSONL telemetry records to a file or stream.

    Args:
        target: a filesystem path (opened for writing, truncating any
            previous stream) or an open text stream with a ``write``
            method (left open on :meth:`close`).
        append: open a path target for appending instead of
            truncating — how a restarted sweep server keeps its
            service-wide stream continuous across incarnations.
        fsync: fsync after every record, for streams that must
            survive a SIGKILL (costs a syscall per record).

    Each :meth:`emit` writes one line and flushes, so a concurrently
    tailing consumer — and a post-mortem after a killed sweep — sees
    every record that was produced.  Writers are also context
    managers: ``with TelemetryWriter(path) as telemetry: ...``.
    """

    def __init__(self, target: Union[str, IO[str]],
                 append: bool = False, fsync: bool = False):
        if hasattr(target, "write"):
            self._stream: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(target, "a" if append else "w",
                                encoding="utf-8")
            self._owns_stream = True
        self._fsync = fsync
        self.records = 0

    def emit(self, record: dict) -> None:
        """Write one telemetry record as a JSON line and flush."""
        if self._stream is None:
            raise ValueError("telemetry writer is closed")
        # ensure_ascii=False keeps non-ASCII benchmark/design names
        # readable in the stream; file targets are opened as UTF-8 so
        # the bytes are well-defined on every platform.
        self._stream.write(json.dumps(record, sort_keys=True,
                                      ensure_ascii=False))
        self._stream.write("\n")
        self._stream.flush()
        if self._fsync:
            import os

            try:
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):
                pass  # non-file streams (StringIO) have no fileno
        self.records += 1

    def close(self) -> None:
        """Close the underlying file (no-op for caller-owned streams)."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
