"""Dead-code elimination.

A standard liveness-based cleanup pass: instructions whose destination
is never read (inside the block or along any path out of it) and which
have no other effect — no memory access, no control transfer, no
predicate write — are removed, iterating until no more fall.

Two uses here:

* as a normal compiler pass users can run before
  :func:`repro.compiler.compile_kernel`;
* as an analysis instrument: the synthetic workloads (like real unoptimized
  code) contain dead writes, which inflate the write-bypass opportunity
  (a dead write is trivially eliminable).  Running DCE first separates
  "bypassed because transient" from "bypassed because dead" — see
  ``dead_write_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from ..isa import Instruction
from ..isa.registers import SINK_REGISTER
from ..kernels.cfg import KernelCFG
from .liveness import compute_liveness


def _has_side_effect(inst: Instruction) -> bool:
    return (inst.is_memory or inst.is_control
            or inst.pred_dest is not None)


def eliminate_dead_code_block(
    instructions: Sequence[Instruction],
    live_out: FrozenSet[int] = frozenset(),
) -> List[Instruction]:
    """Remove dead instructions from one linear block.

    An instruction dies when its destination is not read before the next
    write to it (or block end with the register not in ``live_out``) and
    it has no side effect.  Iterates to a fixed point, since removing a
    dead consumer can kill its producers.
    """
    current = list(instructions)
    while True:
        removed = _sweep_once(current, live_out)
        if removed is None:
            return current
        current = removed


def _sweep_once(
    instructions: List[Instruction],
    live_out: FrozenSet[int],
) -> Optional[List[Instruction]]:
    live: Set[int] = set(live_out)
    keep_flags: List[bool] = [True] * len(instructions)
    for index in range(len(instructions) - 1, -1, -1):
        inst = instructions[index]
        dest_live = (
            inst.dest is not None
            and inst.dest != SINK_REGISTER
            and inst.dest.id in live
        )
        if (inst.dest is not None and inst.dest != SINK_REGISTER
                and not dest_live and not _has_side_effect(inst)):
            keep_flags[index] = False
            continue
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            if inst.predicate is None:
                live.discard(inst.dest.id)
            else:
                # A predicated write is a conditional merge: when the
                # guard is false the old value survives, so the older
                # producer must stay live.
                live.add(inst.dest.id)
        for src in inst.sources:
            live.add(src.id)
    if all(keep_flags):
        return None
    return [inst for inst, keep in zip(instructions, keep_flags) if keep]


@dataclass(frozen=True)
class DceResult:
    """Outcome of DCE over a kernel."""

    removed: int
    total: int

    @property
    def dead_fraction(self) -> float:
        return self.removed / self.total if self.total else 0.0


def eliminate_dead_code(cfg: KernelCFG) -> DceResult:
    """Run DCE over every block of a kernel, in place.

    Cross-block liveness keeps values consumed by successor blocks; only
    provably dead writes fall.
    """
    total = sum(len(block.instructions) for block in cfg)
    removed = 0
    # Removing code changes liveness; iterate whole-kernel to fixpoint.
    while True:
        liveness = compute_liveness(cfg)
        changed = False
        for block in cfg:
            cleaned = eliminate_dead_code_block(
                block.instructions, liveness.live_out[block.label]
            )
            if len(cleaned) != len(block.instructions):
                removed += len(block.instructions) - len(cleaned)
                block.instructions = cleaned
                changed = True
        if not changed:
            return DceResult(removed=removed, total=total)


def dead_write_fraction(
    instructions: Sequence[Instruction],
    live_out: FrozenSet[int] = frozenset(),
) -> float:
    """Fraction of destination writes DCE would remove from a sequence.

    The analysis companion: how much of a workload's write-bypass
    opportunity is mere dead code rather than genuine transience.
    """
    writes = sum(
        1 for inst in instructions
        if inst.dest is not None and inst.dest != SINK_REGISTER
    )
    if writes == 0:
        return 0.0
    cleaned = eliminate_dead_code_block(instructions, live_out)
    cleaned_writes = sum(
        1 for inst in cleaned
        if inst.dest is not None and inst.dest != SINK_REGISTER
    )
    return (writes - cleaned_writes) / writes
