"""Writeback-target classification (the BOW-WR compiler pass).

For every instruction that produces a register value, decide where the
value must go when the instruction executes (paper SS IV-B):

* ``RF_ONLY``   -- the first reuse is beyond the instruction window, so
  depositing it in the BOC would be a wasted write;
* ``OC_ONLY``   -- the value is *transient*: every reuse happens while it
  still resides in the (extended) window and it is dead afterwards, so
  the RF write is eliminated and no RF register need be allocated;
* ``BOTH``      -- the value is reused inside the window *and* stays live
  beyond it, so it is forwarded now and written back on eviction.

The decision rule follows the paper's wording: a value can stay
collector-resident as long as the gap between consecutive accesses to it
stays below the window size (the extended instruction window); the first
access gap at or above the window size means the reader must find the
value in the RF.  Predicated redefinitions do not end a value's read
chain — the guard may be false at runtime, leaving the older value
visible to readers beyond it — so chains extend to the next
*unpredicated* write.

Two variants are provided:

* :func:`classify_linear_writes` — over a linear instruction sequence
  with an explicit live-out set (used for the Table I snippet and for
  dynamic-trace accounting);
* :func:`classify_cfg` — the real compiler pass: per basic block, with
  cross-block liveness making boundary values conservatively RF-bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import CompilerError
from ..isa import Instruction, WritebackHint
from ..isa.registers import SINK_REGISTER
from ..kernels.cfg import KernelCFG
from .liveness import LivenessResult, compute_liveness


class WritebackClass(enum.Enum):
    """The three destinations of Figure 7, plus dead writes.

    ``DEAD`` covers values never read at all (and not live-out); they
    carry the OC-only hint bits but are excluded from Figure 7's
    three-way split, mirroring the paper's accounting of *used* operands.
    """

    RF_ONLY = "rf-only"
    OC_ONLY = "oc-only"
    BOTH = "both"
    DEAD = "dead"

    @property
    def hint(self) -> WritebackHint:
        if self is WritebackClass.RF_ONLY:
            return WritebackHint.RF_ONLY
        if self is WritebackClass.BOTH:
            return WritebackHint.BOTH
        return WritebackHint.OC_ONLY


@dataclass(frozen=True)
class WriteClassification:
    """Classification of one destination write.

    Attributes:
        index: instruction index within the analyzed sequence/block.
        register_id: destination register.
        writeback: assigned class.
        reads_in_window: number of reads satisfied by forwarding.
        needs_rf: whether the value must eventually reach the RF.
    """

    index: int
    register_id: int
    writeback: WritebackClass
    reads_in_window: int
    needs_rf: bool


def _classify_chain(
    write_index: int,
    read_indices: Sequence[int],
    live_after_chain: bool,
    window_size: int,
) -> Tuple[WritebackClass, int, bool]:
    """Classify one value given the indices of its reads.

    Args:
        write_index: where the value is produced.
        read_indices: strictly increasing read positions before the next
            redefinition (or scope end).
        live_after_chain: value may still be read after the analyzed
            scope (no redefinition seen and register is live-out).
        window_size: the nominal instruction window ``IW``.
    """
    forwarded = 0
    needs_rf = live_after_chain
    previous = write_index
    resident = True
    for read_index in read_indices:
        gap = read_index - previous
        if resident and gap < window_size:
            forwarded += 1
        else:
            resident = False
            needs_rf = True
        previous = read_index

    if not read_indices and not live_after_chain:
        return WritebackClass.DEAD, 0, False
    if needs_rf and forwarded:
        return WritebackClass.BOTH, forwarded, True
    if needs_rf:
        return WritebackClass.RF_ONLY, 0, True
    return WritebackClass.OC_ONLY, forwarded, False


def classify_linear_writes(
    instructions: Sequence[Instruction],
    window_size: int,
    live_out: FrozenSet[int] = frozenset(),
) -> List[WriteClassification]:
    """Classify every destination write of a linear instruction sequence.

    Args:
        instructions: the sequence (a block body or a trace).
        window_size: nominal window ``IW``.
        live_out: registers that may be read after the sequence ends.
    """
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")

    # Index reads and writes per register.  A predicated write is only a
    # *conditional* redefinition (``rd = p ? v : rd``): it cannot end the
    # previous value's read chain, because a runtime-false guard leaves
    # the old value architecturally visible to every later reader.  Only
    # the next unpredicated write is a definite kill.
    reads: Dict[int, List[int]] = {}
    writes: Dict[int, List[Tuple[int, bool]]] = {}
    for index, inst in enumerate(instructions):
        for src in inst.sources:
            reads.setdefault(src.id, []).append(index)
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            writes.setdefault(inst.dest.id, []).append(
                (index, inst.predicate is not None)
            )

    results: List[WriteClassification] = []
    for reg_id, write_list in sorted(writes.items()):
        reg_reads = reads.get(reg_id, [])
        for position, (write_index, _) in enumerate(write_list):
            next_kill = next(
                (later for later, predicated in write_list[position + 1:]
                 if not predicated),
                None,
            )
            chain = [
                r for r in reg_reads
                if r > write_index and (next_kill is None or r <= next_kill)
            ]
            # A read at the redefinition index itself (e.g. ``add r, r, x``)
            # consumes the old value; reads beyond it consume the new one.
            live_after = next_kill is None and reg_id in live_out
            writeback, forwarded, needs_rf = _classify_chain(
                write_index, chain, live_after, window_size
            )
            results.append(
                WriteClassification(
                    index=write_index,
                    register_id=reg_id,
                    writeback=writeback,
                    reads_in_window=forwarded,
                    needs_rf=needs_rf,
                )
            )
    results.sort(key=lambda item: item.index)
    return results


def classify_cfg(
    cfg: KernelCFG,
    window_size: int,
    liveness: Optional[LivenessResult] = None,
) -> Dict[str, List[WriteClassification]]:
    """Run the writeback pass over every block of a kernel CFG.

    Values living across a block boundary are conservatively RF-bound:
    the compiler cannot know which block executes next, so it never tags
    a boundary-crossing value OC-only (paper SS IV-C's simplifying rule).
    """
    liveness = liveness or compute_liveness(cfg)
    classified: Dict[str, List[WriteClassification]] = {}
    for block in cfg:
        classified[block.label] = classify_linear_writes(
            block.instructions,
            window_size,
            live_out=liveness.live_out[block.label],
        )
    return classified


def annotate_cfg(
    cfg: KernelCFG,
    window_size: int,
    liveness: Optional[LivenessResult] = None,
) -> Dict[int, WritebackHint]:
    """Produce the per-instruction hint map and rewrite block bodies.

    Every destination-producing instruction is replaced (in place, inside
    the CFG's blocks) by a copy carrying its 2-bit writeback hint; the
    returned map is keyed by instruction ``uid`` so traces expanded from
    the CFG observe the same hints.
    """
    classified = classify_cfg(cfg, window_size, liveness)
    hints: Dict[int, WritebackHint] = {}
    for block in cfg:
        decisions = {item.index: item.writeback.hint
                     for item in classified[block.label]}
        for index, inst in enumerate(block.instructions):
            hint = decisions.get(index)
            if hint is not None and inst.hint != hint:
                block.instructions[index] = inst.with_hint(hint)
            if inst.dest is not None:
                hints[block.instructions[index].uid] = (
                    hint if hint is not None else inst.hint
                )
    return hints


def hint_distribution(
    classifications: Iterable[WriteClassification],
    weights: Optional[Dict[int, int]] = None,
) -> Dict[WritebackClass, float]:
    """Figure 7's three-way split over classified writes.

    Dead writes are folded into ``OC_ONLY`` (they never reach the RF),
    matching the paper's transient-operand share.

    Args:
        classifications: write classifications to aggregate.
        weights: optional dynamic execution count per *instruction
            index* (for weighting static decisions by trace frequency).
    """
    counts: Dict[WritebackClass, float] = {
        WritebackClass.RF_ONLY: 0.0,
        WritebackClass.OC_ONLY: 0.0,
        WritebackClass.BOTH: 0.0,
    }
    total = 0.0
    for item in classifications:
        weight = 1.0 if weights is None else float(weights.get(item.index, 0))
        if weight == 0.0:
            continue
        bucket = (
            WritebackClass.OC_ONLY
            if item.writeback is WritebackClass.DEAD
            else item.writeback
        )
        counts[bucket] += weight
        total += weight
    if total == 0.0:
        return {bucket: 0.0 for bucket in counts}
    return {bucket: value / total for bucket, value in counts.items()}
