"""Compiler substrate: the analyses BOW-WR relies on.

The paper tasks the compiler with liveness analysis and reuse-distance
checks to classify every destination register into one of three
writeback targets (RF-only, OC-only, or both) and to elide RF
allocation for transient values.  This package implements those passes
over kernel CFGs, plus the dynamic (trace-level) variants used by the
motivation figures.
"""

from .allocation import AllocationResult, effective_register_demand
from .dataflow import BackwardDataflow
from .dce import (
    DceResult,
    dead_write_fraction,
    eliminate_dead_code,
    eliminate_dead_code_block,
)
from .liveness import LivenessResult, compute_liveness
from .pipeline import CompiledKernel, compile_kernel
from .reuse import ReuseEvent, read_bypass_fraction, reuse_distances
from .scheduling import (
    ScheduleResult,
    build_dependence_dag,
    schedule_block,
    schedule_kernel,
)
from .writeback import (
    WritebackClass,
    WriteClassification,
    annotate_cfg,
    classify_cfg,
    classify_linear_writes,
    hint_distribution,
)

__all__ = [
    "DceResult",
    "dead_write_fraction",
    "eliminate_dead_code",
    "eliminate_dead_code_block",
    "ScheduleResult",
    "build_dependence_dag",
    "schedule_block",
    "schedule_kernel",
    "BackwardDataflow",
    "LivenessResult",
    "compute_liveness",
    "ReuseEvent",
    "reuse_distances",
    "read_bypass_fraction",
    "WritebackClass",
    "WriteClassification",
    "classify_linear_writes",
    "classify_cfg",
    "annotate_cfg",
    "hint_distribution",
    "AllocationResult",
    "effective_register_demand",
    "CompiledKernel",
    "compile_kernel",
]
