"""Compiler substrate: the analyses BOW-WR relies on.

The paper tasks the compiler with liveness analysis and reuse-distance
checks to classify every destination register into one of three
writeback targets (RF-only, OC-only, or both) and to elide RF
allocation for transient values.  This package implements those passes
over kernel CFGs, plus the dynamic (trace-level) variants used by the
motivation figures.
"""

from .dataflow import BackwardDataflow
from .liveness import LivenessResult, compute_liveness
from .reuse import ReuseEvent, reuse_distances, read_bypass_fraction
from .writeback import (
    WritebackClass,
    WriteClassification,
    classify_linear_writes,
    classify_cfg,
    annotate_cfg,
    hint_distribution,
)
from .allocation import AllocationResult, effective_register_demand
from .pipeline import CompiledKernel, compile_kernel
from .scheduling import (
    ScheduleResult,
    build_dependence_dag,
    schedule_block,
    schedule_kernel,
)
from .dce import (
    DceResult,
    dead_write_fraction,
    eliminate_dead_code,
    eliminate_dead_code_block,
)

__all__ = [
    "DceResult",
    "dead_write_fraction",
    "eliminate_dead_code",
    "eliminate_dead_code_block",
    "ScheduleResult",
    "build_dependence_dag",
    "schedule_block",
    "schedule_kernel",
    "BackwardDataflow",
    "LivenessResult",
    "compute_liveness",
    "ReuseEvent",
    "reuse_distances",
    "read_bypass_fraction",
    "WritebackClass",
    "WriteClassification",
    "classify_linear_writes",
    "classify_cfg",
    "annotate_cfg",
    "hint_distribution",
    "AllocationResult",
    "effective_register_demand",
    "CompiledKernel",
    "compile_kernel",
]
