"""Register reuse-distance analysis.

The paper's motivation (its Figure 3) counts, for a sliding window of
``IW`` consecutive instructions, how many register reads and writes
could be eliminated.  This module implements that counting over dynamic
traces: reuse distances here are measured in *instructions*, matching
the paper's window definition (two accesses are in the same window when
their instruction indices differ by less than ``IW``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence

from ..errors import CompilerError
from ..isa import Instruction
from ..isa.registers import SINK_REGISTER


@dataclass(frozen=True)
class ReuseEvent:
    """One register access annotated with its backward reuse distance.

    Attributes:
        index: dynamic instruction index of this access.
        register_id: the register accessed.
        is_write: write (destination) or read (source).
        distance: instructions since the previous access to the same
            register (read or write), or ``None`` for the first access.
    """

    index: int
    register_id: int
    is_write: bool
    distance: int | None


def reuse_distances(trace: Sequence[Instruction]) -> Iterator[ReuseEvent]:
    """Yield every register access with its backward reuse distance.

    Sink-register writes (predicate-only results) are skipped: they
    allocate no RF storage and generate no bank traffic.
    """
    last_access: Dict[int, int] = {}
    for index, inst in enumerate(trace):
        for src in inst.sources:
            previous = last_access.get(src.id)
            distance = index - previous if previous is not None else None
            yield ReuseEvent(index, src.id, is_write=False, distance=distance)
            last_access[src.id] = index
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            previous = last_access.get(inst.dest.id)
            distance = index - previous if previous is not None else None
            yield ReuseEvent(index, inst.dest.id, is_write=True, distance=distance)
            last_access[inst.dest.id] = index


def read_bypass_fraction(trace: Sequence[Instruction], window_size: int) -> float:
    """Fraction of source reads a window of ``window_size`` can bypass.

    A read hits the bypass buffer when the same register was accessed
    (read or written) by one of the previous ``window_size - 1``
    instructions: a prior write deposited the value in the collector, a
    prior read fetched it there.  This is exactly the paper's sliding
    (extended) window — every access refreshes residency.
    """
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")
    total = 0
    bypassed = 0
    for event in reuse_distances(trace):
        if event.is_write:
            continue
        total += 1
        if event.distance is not None and event.distance < window_size:
            bypassed += 1
    return bypassed / total if total else 0.0


def distance_histogram(trace: Sequence[Instruction],
                       max_distance: int = 16) -> Dict[int, int]:
    """Histogram of read reuse distances, clamped at ``max_distance``.

    Key ``-1`` counts first accesses (no prior access to the register).
    """
    histogram: Dict[int, int] = {}
    for event in reuse_distances(trace):
        if event.is_write:
            continue
        key = -1 if event.distance is None else min(event.distance, max_distance)
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
