"""A small worklist dataflow framework over kernel CFGs.

Only backward problems are needed (liveness), but the framework is
written generically over a transfer function and a set-union meet so
additional analyses (e.g. anticipated uses) can reuse it.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Set

from ..errors import CompilerError
from ..kernels.cfg import KernelCFG

#: Dataflow facts are sets of register ids.
Fact = FrozenSet[int]

#: A block-level transfer function: out-fact -> in-fact for backward
#: problems.
Transfer = Callable[[str, Fact], Fact]


class BackwardDataflow:
    """Backward may-analysis with set-union meet.

    The classic liveness shape: ``in[B] = transfer(B, out[B])`` and
    ``out[B] = union(in[S] for S in successors(B))``, iterated to a fixed
    point with a worklist.
    """

    def __init__(self, cfg: KernelCFG, transfer: Transfer,
                 boundary: Fact = frozenset()):
        self.cfg = cfg
        self.transfer = transfer
        self.boundary = boundary

    def solve(self, max_iterations: int = 100_000) -> Dict[str, Dict[str, Fact]]:
        """Run to a fixed point.

        Returns:
            ``{label: {"in": fact, "out": fact}}`` for every block.

        Raises:
            CompilerError: if the fixed point is not reached within
                ``max_iterations`` worklist pops (an instability guard;
                union meets over finite sets always converge).
        """
        in_facts: Dict[str, Fact] = {label: frozenset() for label in self.cfg.blocks}
        out_facts: Dict[str, Fact] = {label: frozenset() for label in self.cfg.blocks}

        predecessors: Dict[str, list] = {label: [] for label in self.cfg.blocks}
        for block in self.cfg:
            for succ in self.cfg.successors(block.label):
                predecessors[succ].append(block.label)

        worklist: Set[str] = set(self.cfg.blocks)
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > max_iterations:
                raise CompilerError(
                    f"dataflow did not converge in {max_iterations} iterations"
                )
            label = worklist.pop()
            successors = self.cfg.successors(label)
            if successors:
                out_fact: Fact = frozenset().union(
                    *(in_facts[s] for s in successors)
                )
            else:
                out_fact = self.boundary
            in_fact = self.transfer(label, out_fact)
            out_facts[label] = out_fact
            if in_fact != in_facts[label]:
                in_facts[label] = in_fact
                worklist.update(predecessors[label])

        return {
            label: {"in": in_facts[label], "out": out_facts[label]}
            for label in self.cfg.blocks
        }
