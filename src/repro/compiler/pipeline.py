"""The compile() driver: run every pass and package the results.

``compile_kernel`` is the one-call entry point used by examples and the
experiment harness: given a kernel CFG and a window size, it computes
liveness, classifies writebacks, rewrites instructions with their hint
bits, and reports allocation savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..isa import WritebackHint
from ..kernels.cfg import KernelCFG
from .allocation import AllocationResult, effective_register_demand
from .liveness import LivenessResult, compute_liveness
from .writeback import (
    WritebackClass,
    WriteClassification,
    annotate_cfg,
    classify_cfg,
    hint_distribution,
)


@dataclass(frozen=True)
class CompiledKernel:
    """Result of compiling one kernel for BOW-WR.

    Attributes:
        cfg: the kernel CFG with hint-annotated instructions.
        window_size: the window the hints were computed for.
        liveness: the liveness facts used.
        classifications: per-block write classifications.
        hints: hint per instruction ``uid``.
        allocation: transient-register savings.
    """

    cfg: KernelCFG
    window_size: int
    liveness: LivenessResult
    classifications: Dict[str, List[WriteClassification]]
    hints: Dict[int, WritebackHint]
    allocation: AllocationResult

    def hint_distribution(self) -> Dict[WritebackClass, float]:
        """Static Figure 7 split for this kernel."""
        flattened = [
            item for items in self.classifications.values() for item in items
        ]
        return hint_distribution(flattened)


def compile_kernel(cfg: KernelCFG, window_size: int) -> CompiledKernel:
    """Run the full BOW-WR compiler pipeline on ``cfg``.

    The CFG's block bodies are rewritten in place so traces expanded
    afterwards carry the hint bits.
    """
    liveness = compute_liveness(cfg)
    classifications = classify_cfg(cfg, window_size, liveness)
    hints = annotate_cfg(cfg, window_size, liveness)
    allocation = effective_register_demand(cfg, window_size)
    return CompiledKernel(
        cfg=cfg,
        window_size=window_size,
        liveness=liveness,
        classifications=classifications,
        hints=hints,
        allocation=allocation,
    )
