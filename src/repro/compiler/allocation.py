"""Transient-register allocation elision (paper SS IV-B.2a).

Values classified OC-only never leave the bypassing operand collector,
so no register-file storage need be allocated for them.  This module
quantifies how much of a kernel's register demand is transient: the
paper finds ~52% of computed operands are transient at IW=3, letting the
GPU provision a smaller RF for the same performance (or run more thread
blocks for the same RF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence

from ..errors import CompilerError
from ..isa import Instruction
from ..kernels.cfg import KernelCFG
from .writeback import classify_cfg, classify_linear_writes


@dataclass(frozen=True)
class AllocationResult:
    """RF allocation demand before and after transient elision.

    Attributes:
        total_registers: distinct architectural registers the kernel names.
        rf_resident_registers: registers that still need an RF slot (at
            least one of their defining writes must reach the RF).
        transient_registers: registers *all* of whose values die inside
            the window — they need no RF slot at all.
        transient_write_fraction: fraction of dynamic/static writes that
            never reach the RF (the paper's 52% figure at IW=3).
    """

    total_registers: int
    rf_resident_registers: int
    transient_registers: int
    transient_write_fraction: float

    @property
    def register_savings(self) -> float:
        """Fraction of RF slots the kernel no longer needs."""
        if self.total_registers == 0:
            return 0.0
        return self.transient_registers / self.total_registers


def _aggregate(classifications, registers) -> AllocationResult:
    needs_rf_regs = set()
    seen_regs = set()
    transient_writes = 0
    total_writes = 0
    for item in classifications:
        seen_regs.add(item.register_id)
        total_writes += 1
        if item.needs_rf:
            needs_rf_regs.add(item.register_id)
        else:
            transient_writes += 1
    all_regs = set(registers) | seen_regs
    transient_regs = {
        reg for reg in seen_regs if reg not in needs_rf_regs
    }
    return AllocationResult(
        total_registers=len(all_regs),
        rf_resident_registers=len(all_regs) - len(transient_regs),
        transient_registers=len(transient_regs),
        transient_write_fraction=(
            transient_writes / total_writes if total_writes else 0.0
        ),
    )


def effective_register_demand(
    cfg: KernelCFG,
    window_size: int,
) -> AllocationResult:
    """Measure transient-register savings for a kernel CFG."""
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")
    classified = classify_cfg(cfg, window_size)
    flattened = [item for items in classified.values() for item in items]
    registers = set()
    for block in cfg:
        for inst in block.instructions:
            for src in inst.sources:
                registers.add(src.id)
            if inst.dest is not None:
                registers.add(inst.dest.id)
    return _aggregate(flattened, registers)


def linear_register_demand(
    instructions: Sequence[Instruction],
    window_size: int,
    live_out: FrozenSet[int] = frozenset(),
) -> AllocationResult:
    """Measure transient-register savings for a linear sequence."""
    classified = classify_linear_writes(instructions, window_size, live_out)
    registers = set()
    for inst in instructions:
        for src in inst.sources:
            registers.add(src.id)
        if inst.dest is not None:
            registers.add(inst.dest.id)
    return _aggregate(classified, registers)
