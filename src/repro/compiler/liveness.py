"""Backward liveness analysis over kernel CFGs.

BOW-WR's writeback classifier needs, for every program point, the set of
registers that may be read again before being overwritten.  This module
runs the classic liveness dataflow and exposes per-instruction live-out
sets inside each block.

Predicated writes are *conditional merges*, not kills: ``@p op rd, ...``
behaves as ``rd = p ? op(...) : rd``, so the incoming value of ``rd``
may survive the instruction (and is in fact read by it).  Treating such
a write as a definite kill would let the classifier mark the older
producer transient (OC-only) even though a runtime-false guard leaves
its value architecturally visible — exactly the miscompile the
differential fuzzer catches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..isa.registers import SINK_REGISTER
from ..kernels.cfg import KernelCFG
from .dataflow import BackwardDataflow, Fact


def _block_use_def(instructions) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Upward-exposed uses and definitions of a block body.

    Only unpredicated writes count as definitions; a predicated write is
    a conditional merge whose destination is also an upward-exposed use
    (the old value flows through when the guard is false).
    """
    uses: set = set()
    defs: set = set()
    for inst in instructions:
        for src in inst.sources:
            if src.id not in defs:
                uses.add(src.id)
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            if inst.predicate is None:
                defs.add(inst.dest.id)
            elif inst.dest.id not in defs:
                uses.add(inst.dest.id)
    return frozenset(uses), frozenset(defs)


@dataclass(frozen=True)
class LivenessResult:
    """Liveness facts for one kernel CFG.

    Attributes:
        live_in: registers live on entry to each block.
        live_out: registers live on exit of each block.
        per_instruction_live_out: for each block, the live-out set after
            each instruction (parallel to the block body).
    """

    live_in: Dict[str, FrozenSet[int]]
    live_out: Dict[str, FrozenSet[int]]
    per_instruction_live_out: Dict[str, List[FrozenSet[int]]]

    def is_live_after(self, block_label: str, index: int, reg_id: int) -> bool:
        """Is ``reg_id`` live immediately after instruction ``index``?"""
        return reg_id in self.per_instruction_live_out[block_label][index]


def compute_liveness(cfg: KernelCFG,
                     boundary: FrozenSet[int] = frozenset()) -> LivenessResult:
    """Solve liveness for ``cfg``.

    Args:
        cfg: the kernel control-flow graph.
        boundary: registers considered live at kernel exit (values the
            caller observes; empty for a complete kernel).
    """
    use_def = {
        block.label: _block_use_def(block.instructions) for block in cfg
    }

    def transfer(label: str, out_fact: Fact) -> Fact:
        uses, defs = use_def[label]
        return uses | (out_fact - defs)

    solution = BackwardDataflow(cfg, transfer, boundary=boundary).solve()

    live_in = {label: facts["in"] for label, facts in solution.items()}
    live_out = {label: facts["out"] for label, facts in solution.items()}

    per_instruction: Dict[str, List[FrozenSet[int]]] = {}
    for block in cfg:
        facts: List[FrozenSet[int]] = [frozenset()] * len(block.instructions)
        live = set(live_out[block.label])
        for index in range(len(block.instructions) - 1, -1, -1):
            inst = block.instructions[index]
            facts[index] = frozenset(live)
            if inst.dest is not None and inst.dest != SINK_REGISTER:
                if inst.predicate is None:
                    live.discard(inst.dest.id)
                else:
                    # Conditional merge: the old value may survive.
                    live.add(inst.dest.id)
            for src in inst.sources:
                live.add(src.id)
        per_instruction[block.label] = facts

    return LivenessResult(
        live_in=live_in,
        live_out=live_out,
        per_instruction_live_out=per_instruction,
    )
