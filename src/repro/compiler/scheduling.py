"""Bypass-aware instruction scheduling (the paper's footnote-1 future work).

BOW forwards a value only while it stays inside the instruction window,
so *reuse distance* is the quantity that decides whether an access
bypasses the RF.  The paper notes that "further compiler optimizations
to reorder instructions to increase bypassing opportunities are
possible" but does not pursue them; this pass does.

It is a local list scheduler: per basic block, build the dependence DAG
(register RAW/WAW/WAR; memory operations stay in program order; a
trailing control instruction stays last) and repeatedly emit the ready
instruction with the best *locality score* — how many of its register
accesses touch registers accessed within the last ``window_size - 1``
emitted instructions.  Ties fall back to program order, so a block with
no profitable move is emitted unchanged.

Correctness: only dependence-respecting permutations are produced, so
the scheduled block computes exactly the same values (tested against
the reference executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CompilerError
from ..isa import Instruction
from ..isa.registers import SINK_REGISTER
from ..kernels.cfg import KernelCFG


def _register_reads(inst: Instruction) -> Set[int]:
    return {src.id for src in inst.sources}


def _register_writes(inst: Instruction) -> Set[int]:
    if inst.dest is not None and inst.dest != SINK_REGISTER:
        return {inst.dest.id}
    return set()


def build_dependence_dag(
    instructions: Sequence[Instruction],
) -> List[Set[int]]:
    """Predecessor sets: ``dag[i]`` = indices that must precede ``i``.

    Edges:

    * RAW — a read of a register after a write to it;
    * WAW — two writes to the same register;
    * WAR — a write after a read (the new value must not be visible to
      the earlier reader);
    * memory order — loads and stores stay in program order relative to
      each other (the timing model applies memory effects in dispatch
      order, and we do not disambiguate addresses);
    * control — branches/barriers order against everything around them.
    """
    predecessors: List[Set[int]] = [set() for _ in instructions]
    last_write: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = {}
    last_memory: Optional[int] = None
    last_control: Optional[int] = None

    for index, inst in enumerate(instructions):
        if last_control is not None:
            predecessors[index].add(last_control)
        for reg in _register_reads(inst):
            if reg in last_write:
                predecessors[index].add(last_write[reg])  # RAW
            readers_since_write.setdefault(reg, []).append(index)
        for reg in _register_writes(inst):
            if reg in last_write:
                predecessors[index].add(last_write[reg])  # WAW
            for reader in readers_since_write.get(reg, []):
                if reader != index:
                    predecessors[index].add(reader)  # WAR
            last_write[reg] = index
            readers_since_write[reg] = []
        if inst.is_memory:
            if last_memory is not None:
                predecessors[index].add(last_memory)
            last_memory = index
        if inst.is_control:
            # Everything before the control op must precede it.
            for earlier in range(index):
                predecessors[index].add(earlier)
            last_control = index
    return predecessors


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one block."""

    instructions: Tuple[Instruction, ...]
    permutation: Tuple[int, ...]  # new position -> original index
    moved: int  # instructions not at their original position


def schedule_block(
    instructions: Sequence[Instruction],
    window_size: int,
) -> ScheduleResult:
    """Reorder one block to shrink register reuse distances.

    Greedy list scheduling with a locality score; deterministic, and the
    identity permutation whenever no move scores better.
    """
    if window_size < 1:
        raise CompilerError(f"window_size must be >= 1, got {window_size}")
    count = len(instructions)
    predecessors = build_dependence_dag(instructions)
    remaining_preds = [set(p) for p in predecessors]
    scheduled: List[int] = []
    emitted: List[Instruction] = []
    ready = {i for i in range(count) if not remaining_preds[i]}
    # Recent register accesses, most recent last.
    recent: List[Set[int]] = []

    def locality_score(index: int) -> int:
        accessed = _register_reads(instructions[index]) | _register_writes(
            instructions[index]
        )
        window = recent[-(window_size - 1):] if window_size > 1 else []
        score = 0
        # Recency-weighted: consuming the just-produced value scores
        # highest, keeping chains tight instead of merely adjacent.
        for age, regs in enumerate(reversed(window)):
            score += (window_size - 1 - age) * len(accessed & regs)
        return score

    successors: List[Set[int]] = [set() for _ in range(count)]
    for index, preds in enumerate(predecessors):
        for pred in preds:
            successors[pred].add(index)

    while ready:
        best = min(ready, key=lambda i: (-locality_score(i), i))
        ready.discard(best)
        scheduled.append(best)
        inst = instructions[best]
        emitted.append(inst)
        recent.append(_register_reads(inst) | _register_writes(inst))
        for succ in successors[best]:
            remaining_preds[succ].discard(best)
            if not remaining_preds[succ]:
                ready.add(succ)

    if len(scheduled) != count:
        raise CompilerError("dependence cycle in block scheduling")

    # Greedy local search can regress: keep the schedule only when it
    # strictly improves the block's window locality, else emit the
    # block unchanged (the pass is then a guaranteed non-loss).
    if _block_locality(emitted, window_size) <= _block_locality(
            list(instructions), window_size):
        return ScheduleResult(
            instructions=tuple(instructions),
            permutation=tuple(range(count)),
            moved=0,
        )
    moved = sum(1 for pos, original in enumerate(scheduled)
                if pos != original)
    return ScheduleResult(
        instructions=tuple(emitted),
        permutation=tuple(scheduled),
        moved=moved,
    )


def _block_locality(instructions: List[Instruction], window_size: int) -> int:
    """Bypassable accesses of a block: in-window reads + transient writes."""
    from .reuse import read_bypass_fraction
    from .writeback import classify_linear_writes

    reads = sum(len(inst.sources) for inst in instructions)
    read_hits = round(read_bypass_fraction(instructions, window_size) * reads)
    write_hits = sum(
        1 for item in classify_linear_writes(instructions, window_size)
        if not item.needs_rf
    )
    return read_hits + write_hits


def schedule_kernel(cfg: KernelCFG, window_size: int) -> int:
    """Schedule every block of a kernel in place.

    Returns:
        Total instructions moved across all blocks.

    Run *before* :func:`repro.compiler.pipeline.compile_kernel`: the
    writeback hints depend on the final instruction order.
    """
    moved_total = 0
    for block in cfg:
        result = schedule_block(block.instructions, window_size)
        block.instructions = list(result.instructions)
        moved_total += result.moved
    return moved_total
