"""BOW: Breathing Operand Windows to Exploit Bypassing in GPUs.

A from-scratch reproduction of the MICRO 2020 paper: a cycle-level GPU
SM model with banked register file and operand collectors, the BOW /
BOW-WB / BOW-WR bypassing designs, the compiler liveness substrate that
drives BOW-WR's writeback hints, calibrated synthetic versions of the
paper's 15-benchmark suite, and an energy/area model — plus one
experiment driver per table and figure of the paper's evaluation.

Quickstart::

    from repro import build_benchmark_trace, simulate_design

    trace = build_benchmark_trace("BTREE", num_warps=8)
    base = simulate_design("baseline", trace)
    bow = simulate_design("bow-wr", trace, window_size=3)
    print(bow.ipc / base.ipc - 1.0)  # IPC improvement
"""

from .compiler import compile_kernel
from .config import (
    BOWConfig,
    GPUConfig,
    SchedulerPolicy,
    WritebackPolicy,
    baseline_config,
    bow_config,
    bow_wb_config,
    bow_wr_config,
)
from .core import simulate_bow, simulate_design, simulate_rfc
from .energy import EnergyModel
from .errors import (
    CompilerError,
    ConfigError,
    DeadlockError,
    EncodingError,
    ExperimentError,
    IsaError,
    KernelError,
    ParseError,
    ReproError,
    SimulationError,
)
from .gpu import SimulationResult, simulate_baseline
from .isa import Instruction, Register, WritebackHint, parse_program
from .kernels import (
    BENCHMARKS,
    BenchmarkProfile,
    KernelTrace,
    WarpTrace,
    benchmark_names,
    btree_snippet,
    build_benchmark_trace,
    get_profile,
)
from .stats import Counters, RunMetrics

__version__ = "1.0.0"

__all__ = [
    "BOWConfig",
    "GPUConfig",
    "SchedulerPolicy",
    "WritebackPolicy",
    "baseline_config",
    "bow_config",
    "bow_wb_config",
    "bow_wr_config",
    "ReproError",
    "ConfigError",
    "IsaError",
    "ParseError",
    "EncodingError",
    "KernelError",
    "CompilerError",
    "SimulationError",
    "DeadlockError",
    "ExperimentError",
    "Instruction",
    "Register",
    "WritebackHint",
    "parse_program",
    "BenchmarkProfile",
    "BENCHMARKS",
    "KernelTrace",
    "WarpTrace",
    "benchmark_names",
    "btree_snippet",
    "build_benchmark_trace",
    "get_profile",
    "compile_kernel",
    "simulate_bow",
    "simulate_design",
    "simulate_rfc",
    "simulate_baseline",
    "SimulationResult",
    "EnergyModel",
    "Counters",
    "RunMetrics",
    "__version__",
]
