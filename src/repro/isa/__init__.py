"""A small SASS-like instruction set.

The paper studies NVIDIA SASS, whose instructions carry at most three
register source operands and one destination (plus predicates and
immediates).  This package provides a typed, minimal ISA with the same
operand shape, an assembler for a human-readable text syntax, and a
binary encoder that carries the two writeback-hint bits BOW-WR adds.
"""

from .opcodes import Opcode, OpClass, OPCODE_TABLE, opcode_by_name
from .registers import Register, Predicate, SINK_REGISTER
from .instruction import Instruction, WritebackHint, MemSpace
from .parser import parse_program, parse_instruction
from .encoder import encode_instruction, decode_instruction

__all__ = [
    "Opcode",
    "OpClass",
    "OPCODE_TABLE",
    "opcode_by_name",
    "Register",
    "Predicate",
    "SINK_REGISTER",
    "Instruction",
    "WritebackHint",
    "MemSpace",
    "parse_program",
    "parse_instruction",
    "encode_instruction",
    "decode_instruction",
]
