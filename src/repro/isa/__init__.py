"""A small SASS-like instruction set.

The paper studies NVIDIA SASS, whose instructions carry at most three
register source operands and one destination (plus predicates and
immediates).  This package provides a typed, minimal ISA with the same
operand shape, an assembler for a human-readable text syntax, and a
binary encoder that carries the two writeback-hint bits BOW-WR adds.
"""

from .encoder import decode_instruction, encode_instruction
from .instruction import Instruction, MemSpace, WritebackHint
from .opcodes import OPCODE_TABLE, OpClass, Opcode, opcode_by_name
from .parser import parse_instruction, parse_program
from .registers import SINK_REGISTER, Predicate, Register

__all__ = [
    "Opcode",
    "OpClass",
    "OPCODE_TABLE",
    "opcode_by_name",
    "Register",
    "Predicate",
    "SINK_REGISTER",
    "Instruction",
    "WritebackHint",
    "MemSpace",
    "parse_program",
    "parse_instruction",
    "encode_instruction",
    "decode_instruction",
]
